#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
# Mirrors what CI runs; every step must pass before merging.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> chaos suite (rm-serve with fault injection compiled in)"
cargo test -q -p rm-serve --features testing

echo "==> observability: trace + metrics exposition tests"
cargo test -q -p rm-util trace
cargo test -q -p rm-serve --test trace_tests
cargo test -q -p rm-serve --features testing --test trace_tests
cargo test -q -p rm-serve metrics

echo "==> kernel equivalence suite (unrolled vecops vs scalar reference)"
# The lane-unrolled kernels must stay within 1e-5 relative of dot_ref and
# bit-identical across block widths; these proptests are the contract.
cargo test -q -p rm-sparse vecops
cargo test -q -p rm-sparse dense

echo "==> kernel benches (smoke mode: exercises every kernel, timings noisy)"
cargo run --release -q -p rm-bench --bin kernel-bench -- --smoke --out /tmp/kernel-bench-smoke.json

echo "==> no ad-hoc dot products outside rm-sparse::vecops"
# Every dot product must go through the lane-unrolled kernels so the
# reduction-order contract holds repo-wide. The scalar reference chain
# (dot_ref) and non-reduction uses live in the allowlist.
if grep -rn --include='*.rs' -E '\.zip\(.*\)\s*\.map\(.*\)\s*\.sum\(\)' crates \
    | grep -vFf scripts/dot_gate_allowlist.txt; then
  echo "error: hand-rolled dot-product reduction outside rm-sparse::vecops" >&2
  echo "       call rm_sparse::vecops::{dot, dot_block} (or dot_ref in tests/benches)" >&2
  echo "       or add the exact line to scripts/dot_gate_allowlist.txt with a reason" >&2
  exit 1
fi

echo "==> serve crate: no Instant::now() outside the Clock abstraction"
# All serving-path timing flows through EngineConfig::clock so it is
# testable under FakeClock. Deliberate exceptions (the cross-process
# registry lock wait) live in the allowlist.
if grep -rn 'Instant::now()' crates/serve/src crates/serve/tests \
    | grep -vFf scripts/serve_instant_allowlist.txt; then
  echo "error: unallowlisted Instant::now() in crates/serve" >&2
  echo "       read the engine clock (EngineConfig::clock / rm_util::clock::Clock)" >&2
  echo "       or add the exact line to scripts/serve_instant_allowlist.txt with a reason" >&2
  exit 1
fi

echo "==> serve crate: no unwrap/expect on lock()/join()"
# The serving path must degrade, never abort: poisoned mutexes are
# recovered with PoisonError::into_inner and worker join errors turn into
# empty answers. Deliberate exceptions live in the allowlist.
if grep -rn -E '\.(lock|join)\(\)\s*\.\s*(unwrap|expect)\(' crates/serve/src crates/serve/tests \
    | grep -vFf scripts/serve_expect_allowlist.txt; then
  echo "error: unallowlisted unwrap/expect on a lock()/join() result in crates/serve" >&2
  echo "       recover it (PoisonError::into_inner / graceful join handling) or add the" >&2
  echo "       exact line to scripts/serve_expect_allowlist.txt with a justification" >&2
  exit 1
fi

echo "All checks passed."
