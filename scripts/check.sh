#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
# Mirrors what CI runs; every step must pass before merging.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rm-lint (token rules + call-graph reachability, structured allowlist)"
# Replaces the old grep gates: dot products outside rm_sparse::vecops,
# Instant::now() outside the Clock abstraction, unwrap/expect on
# lock()/join(), HashMap/HashSet iteration in model-affecting crates,
# panics in serving library code, manual f32 accumulation — plus the
# workspace call graph (DESIGN.md §19): allocation, panic, and
# determinism-taint reachability from the declared serve roots, failing
# closed on unresolved calls inside the closure. Allowlist:
# scripts/lint_allowlist.toml (mandatory reasons, stale entries fail).
cargo run --release -q -p rm-lint -- \
    --report LINT_report.json --callgraph-report CALLGRAPH_report.json

echo "==> rm-lint report byte-stability (two consecutive runs identical)"
# Both committed reports must be deterministic artifacts: a second run
# into a scratch dir has to reproduce them byte-for-byte, so a diff in
# review always means a code change, never scheduler noise.
cargo run --release -q -p rm-lint -- \
    --report /tmp/rm_lint_stability_L.json \
    --callgraph-report /tmp/rm_lint_stability_C.json
cmp LINT_report.json /tmp/rm_lint_stability_L.json
cmp CALLGRAPH_report.json /tmp/rm_lint_stability_C.json

echo "==> rm-lint --explain (exit codes: 0 known rule, 2 unknown)"
cargo run --release -q -p rm-lint -- --explain panic-reachable-from-serve-path > /dev/null
if cargo run --release -q -p rm-lint -- --explain no-such-rule > /dev/null 2>&1; then
    echo "expected --explain no-such-rule to fail" >&2
    exit 1
fi

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> chaos suite (rm-serve with fault injection compiled in)"
cargo test -q -p rm-serve --features testing

echo "==> observability: trace + metrics exposition tests"
cargo test -q -p rm-util trace
cargo test -q -p rm-serve --test trace_tests
cargo test -q -p rm-serve --features testing --test trace_tests
cargo test -q -p rm-serve metrics

echo "==> kernel equivalence suite (unrolled vecops vs scalar reference)"
# The lane-unrolled kernels must stay within 1e-5 relative of dot_ref and
# bit-identical across block widths; these proptests are the contract.
cargo test -q -p rm-sparse vecops
cargo test -q -p rm-sparse dense

echo "==> kernel benches (smoke mode: exercises every kernel, timings noisy)"
cargo run --release -q -p rm-bench --bin kernel-bench -- --smoke --out /tmp/kernel-bench-smoke.json

echo "==> overload SLO gate (deterministic loadgen smoke vs committed BENCH_serve.json)"
# A 10x open-loop burst on simulated time: the report must match the
# committed file byte-for-byte and meet its SLO (availability >= 0.999,
# bounded p99) via shedding + brownout, never unbounded queueing.
cargo run --release -q -p reading-machine -- serve-bench --loadgen smoke --gate BENCH_serve.json

echo "==> ANN retrieval gate (deterministic smoke recall vs committed BENCH_ann.json)"
# IVF recall numbers are timing-free and deterministic: the recomputed
# smoke section must match the committed report byte-for-byte, the
# committed 1M-item full run must hold recall@10 >= 0.95 at >= 10x
# speedup, and probing every list must reproduce the exact scan.
cargo run --release -q -p rm-bench --bin ann-bench -- --smoke --gate BENCH_ann.json

echo "==> quantized-artifact gate (deterministic KPI drift vs committed BENCH_quant.json)"
# Table-1 URR/NRR through the quantized scorer are timing-free and
# deterministic: the recomputed smoke section must match the committed
# report byte-for-byte, i8/f16 KPI drift vs f32 must stay within 5e-3,
# and the committed serving-scale full run must hold >= 3.5x memory
# reduction at >= 1.2x matvec throughput.
cargo run --release -q -p rm-bench --bin quant-bench -- --smoke --gate BENCH_quant.json

echo "All checks passed."
