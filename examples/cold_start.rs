//! The Fig. 4 analysis as a library call: how recommendation quality
//! depends on how much history a user has — and where the content-based
//! approach overtakes collaborative filtering.
//!
//! Run with: `cargo run --release --example cold_start`

use reading_machine::eval::experiments::fig4;
use reading_machine::prelude::*;

fn main() {
    let harness = Harness::generate(42, Preset::Tiny);
    let suite = TrainedSuite::train(&harness, BprConfig::default(), SummaryFields::BEST, 42);

    let result = fig4::run(&harness, &suite, 10, 3);
    println!("NRR @10 by number of training-set books per user:\n");
    println!("{}", result.table().render());

    let closest = result.series_of("Closest Items").unwrap();
    let bpr = result.series_of("BPR").unwrap();
    let gain = |s: &fig4::Series| {
        let first = s.binned.first().unwrap().kpis.nrr.max(1e-9);
        s.binned.last().unwrap().kpis.nrr / first
    };
    println!(
        "history gain (top bin / bottom bin): Closest {:.1}x, BPR {:.1}x",
        gain(closest),
        gain(bpr)
    );
}
