//! The paper's future work, implemented: sequential recommendation, the
//! CB+CF hybrid, and beyond-accuracy evaluation (diversity, novelty,
//! serendipity) alongside the classic KPIs.
//!
//! Run with: `cargo run --release --example beyond_accuracy`

use reading_machine::eval::experiments::extensions;
use reading_machine::prelude::*;

fn main() {
    let harness = Harness::generate(42, Preset::Tiny);
    let suite = TrainedSuite::train(&harness, BprConfig::default(), SummaryFields::BEST, 42);

    let result = extensions::run(&harness, &suite, 10, 0.5);
    println!("{}", result.table().render());

    let most_read = result.row("Most Read Items").unwrap();
    let random = result.row("Random Items").unwrap();
    println!(
        "note how the popularity baseline collapses on the beyond-accuracy axes:\n\
         novelty {:.1} vs {:.1} bits, coverage {:.2} vs {:.2} (vs random)",
        most_read.beyond.novelty,
        random.beyond.novelty,
        most_read.beyond.genre_coverage,
        random.beyond.genre_coverage,
    );
}
