//! The deployment scenario the Reading&Machine project targets: a reader
//! walks up to the library kiosk. If they were in last night's training
//! run, serve from the trained factors; if they are brand new, fold them
//! into the factor space from their borrowing history alone (BPR) or use
//! the training-free content centroid (Closest Items).
//!
//! Run with: `cargo run --release --example kiosk_serving`

use reading_machine::prelude::*;

fn main() {
    let harness = Harness::generate(42, Preset::Tiny);
    let corpus = &harness.corpus;

    // Nightly training.
    let mut bpr = Bpr::new(BprConfig::default());
    harness.fit_timed(&mut bpr);
    let closest = ClosestItems::from_corpus(corpus, SummaryFields::BEST, EncoderConfig::default());

    // A brand-new reader who borrowed three books this week.
    let known_user = harness.test_cases()[0].user;
    let history: Vec<u32> = harness
        .split
        .train
        .seen(known_user)
        .iter()
        .take(3)
        .copied()
        .collect();
    println!("new reader's history:");
    for &b in &history {
        println!("  - {}", corpus.books[b as usize].title);
    }

    let t0 = std::time::Instant::now();
    let cf_recs = bpr.recommend_for_history(&history, 5);
    let cf_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let cb_recs = closest.recommend_for_history(&history, 5);
    let cb_time = t1.elapsed();

    println!("\ncollaborative fold-in ({cf_time:.1?}):");
    for (i, b) in cf_recs.iter().enumerate() {
        println!("  {}. {}", i + 1, corpus.books[*b as usize].title);
    }
    println!("\ncontent centroid ({cb_time:.1?}):");
    for (i, b) in cb_recs.iter().enumerate() {
        println!("  {}. {}", i + 1, corpus.books[*b as usize].title);
    }

    // Neither pathway retrains anything — both are live-request latencies.
    assert!(cf_time.as_millis() < 100 && cb_time.as_millis() < 100);
}
