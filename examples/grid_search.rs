//! Hyper-parameter search as a library call: sweep latent factors ×
//! learning rate, selecting by validation URR — the paper's §6 procedure.
//!
//! Run with: `cargo run --release --example grid_search`

use reading_machine::core::grid::GridSearch;
use reading_machine::eval::experiments::grid;
use reading_machine::prelude::*;

fn main() {
    let harness = Harness::generate(42, Preset::Tiny);
    let sweep = GridSearch {
        factors: vec![5, 10, 20],
        learning_rates: vec![0.05, 0.1, 0.2],
    };
    let base = BprConfig {
        epochs: 8,
        ..BprConfig::default()
    };

    let result = grid::run(&harness, &sweep, &base, 10);
    println!("{}", result.table().render());
    println!(
        "selected: L = {}, learning rate = {}",
        result.outcome.best.factors, result.outcome.best.learning_rate
    );
}
