//! The Fig. 5 ablation as a library call: which metadata fields make the
//! content-based recommender work?
//!
//! Run with: `cargo run --release --example metadata_ablation`

use reading_machine::eval::experiments::fig5;
use reading_machine::prelude::*;

fn main() {
    let harness = Harness::generate(42, Preset::Tiny);
    println!(
        "catalogue: {} books; evaluating Closest Items at k = 10\n",
        harness.corpus.n_books()
    );

    let result = fig5::run(&harness, &fig5::paper_variants(), 10);
    println!("{}", result.table().render());

    let best = result
        .rows
        .iter()
        .max_by(|a, b| a.kpis.nrr.partial_cmp(&b.kpis.nrr).unwrap())
        .unwrap();
    println!("best metadata summary by NRR: {}", best.fields.label());
}
