//! Quickstart: generate a small synthetic library corpus, train the BPR
//! recommender, and print recommendations for one reader.
//!
//! Run with: `cargo run --release --example quickstart`

use reading_machine::prelude::*;

fn main() {
    // 1. Generate a corpus (tiny preset: a few hundred users) and split it
    //    the way the paper does (per-user 20% test for library users).
    let harness = Harness::generate(42, Preset::Tiny);
    let corpus = &harness.corpus;
    println!(
        "corpus: {} books, {} users, {} readings",
        corpus.n_books(),
        corpus.n_users(),
        corpus.n_readings()
    );

    // 2. Train the collaborative-filtering recommender.
    let mut bpr = Bpr::new(BprConfig::default());
    let train_time = harness.fit_timed(&mut bpr);
    println!("trained BPR in {train_time:.2?}");

    // 3. Recommend k = 10 books for the first library user with a test set.
    let cases = harness.test_cases();
    let user = cases[0].user;
    println!("\ntop-10 for user {user}:");
    for (rank, book) in bpr.recommend(user, 10).into_iter().enumerate() {
        let b = &corpus.books[book as usize];
        println!("  {:>2}. {} — {}", rank + 1, b.title, b.authors.join(", "));
    }

    // 4. Evaluate the paper's KPIs over all test users.
    let kpis = evaluate(&bpr, &cases, 10);
    println!(
        "\nKPIs @10 over {} users: URR {:.2}, NRR {:.2}, P {:.3}, R {:.3}, FR {:.0}",
        kpis.n_users, kpis.urr, kpis.nrr, kpis.precision, kpis.recall, kpis.first_rank
    );
}
