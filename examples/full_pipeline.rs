//! The full heterogeneous-data pipeline, stage by stage: raw BCT + Anobii
//! tables → filtering → genre post-processing → catalogue merge → activity
//! pruning → split → recommender comparison.
//!
//! Run with: `cargo run --release --example full_pipeline [medium|tiny]`

use reading_machine::dataset::merge::build_corpus;
use reading_machine::dataset::stats::{genre_shares, summarize};
use reading_machine::prelude::*;

fn main() {
    let preset = match std::env::args().nth(1).as_deref() {
        Some("medium") => Preset::Medium,
        _ => Preset::Tiny,
    };
    let seed = 42;

    // --- Stage 1: raw tables, as the source systems would export them. ---
    let config = preset.generator_config();
    let tables = reading_machine::datagen::generate(seed, &config);
    println!(
        "raw BCT books table:     {:>8} rows",
        tables.bct_books.len()
    );
    println!("raw BCT loans table:     {:>8} rows", tables.loans.len());
    println!(
        "raw Anobii items table:  {:>8} rows",
        tables.anobii_items.len()
    );
    println!("raw Anobii ratings:      {:>8} rows", tables.ratings.len());

    // --- Stage 2: the Section 3 preparation pipeline. ---
    let corpus = build_corpus(
        &tables.bct_books,
        &tables.loans,
        &tables.anobii_items,
        &tables.ratings,
        &preset.merge_config(),
    );
    let s = summarize(&corpus);
    println!("\nmerged corpus: {s:#?}");
    println!("top genres:");
    for (label, share) in genre_shares(&corpus).into_iter().take(5) {
        println!("  {label:<20} {:.1}%", share * 100.0);
    }

    // --- Stage 3: split and train the full suite. ---
    let harness = Harness::from_corpus(corpus, &SplitConfig::default());
    let suite = TrainedSuite::train(&harness, BprConfig::default(), SummaryFields::BEST, seed);
    let cases = harness.test_cases();

    // --- Stage 4: compare the recommenders at k = 20. ---
    println!("\nKPIs @20:");
    for rec in [
        &suite.random as &dyn Recommender,
        &suite.most_read,
        &suite.closest,
        &suite.bpr,
    ] {
        let k = evaluate(rec, &cases, 20);
        println!(
            "  {:<16} URR {:.2}  NRR {:.2}  P {:.3}  R {:.3}  FR {:.0}",
            rec.name(),
            k.urr,
            k.nrr,
            k.precision,
            k.recall,
            k.first_rank
        );
    }
}
