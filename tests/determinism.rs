//! End-to-end determinism: everything downstream of a seed is
//! byte-identical across runs, and different seeds genuinely differ.

use reading_machine::prelude::*;

const SEED: u64 = 20_230_628;

#[test]
fn corpus_generation_is_deterministic() {
    let a = reading_machine::datagen::generate_corpus(SEED, Preset::Tiny);
    let b = reading_machine::datagen::generate_corpus(SEED, Preset::Tiny);
    assert_eq!(a.n_books(), b.n_books());
    assert_eq!(a.n_users(), b.n_users());
    assert_eq!(a.readings, b.readings);
    for (x, y) in a.books.iter().zip(&b.books) {
        assert_eq!(x, y);
    }
    assert_eq!(a.users, b.users);
}

#[test]
fn different_seeds_differ() {
    let a = reading_machine::datagen::generate_corpus(SEED, Preset::Tiny);
    let b = reading_machine::datagen::generate_corpus(SEED + 1, Preset::Tiny);
    // Counts may coincide; the actual readings must not.
    assert_ne!(a.readings, b.readings);
}

#[test]
fn split_and_training_are_deterministic() {
    let run = || {
        let harness = Harness::generate(SEED, Preset::Tiny);
        let mut bpr = Bpr::new(BprConfig {
            factors: 6,
            epochs: 4,
            ..BprConfig::default()
        });
        harness.fit_timed(&mut bpr);
        let cases = harness.test_cases();
        let recs: Vec<Vec<u32>> = cases
            .iter()
            .take(20)
            .map(|c| bpr.recommend(c.user, 10))
            .collect();
        let kpis = evaluate(&bpr, &cases, 10);
        (recs, kpis)
    };
    let (recs_a, kpis_a) = run();
    let (recs_b, kpis_b) = run();
    assert_eq!(recs_a, recs_b);
    assert_eq!(kpis_a, kpis_b);
}

#[test]
fn random_recommender_is_seed_stable() {
    let harness = Harness::generate(SEED, Preset::Tiny);
    let mut r1 = RandomItems::new(5);
    let mut r2 = RandomItems::new(5);
    harness.fit_timed(&mut r1);
    harness.fit_timed(&mut r2);
    let u = harness.test_cases()[0].user;
    assert_eq!(r1.recommend(u, 20), r2.recommend(u, 20));
}

#[test]
fn closest_items_is_deterministic() {
    let harness = Harness::generate(SEED, Preset::Tiny);
    let build = || {
        let mut ci = ClosestItems::from_corpus(
            &harness.corpus,
            SummaryFields::BEST,
            EncoderConfig::default(),
        );
        harness.fit_timed(&mut ci);
        ci
    };
    let a = build();
    let b = build();
    let u = harness.test_cases()[0].user;
    assert_eq!(a.recommend(u, 15), b.recommend(u, 15));
}
