//! Calibration guardrails: the Medium-preset corpus must keep the paper's
//! Section 3 statistical shape (scaled). These tolerances are loose enough
//! to survive routine generator changes but catch structural regressions
//! (broken join, broken pruning, collapsed genre mix).

use reading_machine::datagen::{generate, Preset};
use reading_machine::dataset::merge::build_corpus;
use reading_machine::dataset::stats::{
    dominant_genre_share, genre_shares, reading_cdfs, summarize,
};

#[test]
fn medium_corpus_matches_scaled_paper_statistics() {
    let corpus = reading_machine::datagen::generate_corpus(42, Preset::Medium);
    let s = summarize(&corpus);

    // Medium targets ~1/10 of the paper's users over ~1/4 of its books.
    assert!((300..=900).contains(&s.n_books), "books {}", s.n_books);
    assert!((2_500..=7_000).contains(&s.n_users), "users {}", s.n_users);
    assert!(
        s.n_bct_users * 3 < s.n_anobii_users,
        "BCT users should be the minority: {} vs {}",
        s.n_bct_users,
        s.n_anobii_users
    );
    assert!(s.n_bct_users > 200, "bct users {}", s.n_bct_users);
    assert!(
        (40_000..=200_000).contains(&s.n_readings),
        "readings {}",
        s.n_readings
    );

    // Per-user readings: threshold 10, median in the paper's vicinity.
    assert!(
        (11..=25).contains(&s.median_readings_per_user),
        "median {}",
        s.median_readings_per_user
    );
    assert!(
        s.max_readings_per_user > 60,
        "max/user {}",
        s.max_readings_per_user
    );
}

#[test]
fn medium_genre_mix_is_comics_led() {
    let corpus = reading_machine::datagen::generate_corpus(42, Preset::Medium);
    let shares = genre_shares(&corpus);
    assert_eq!(shares[0].0, "Comics", "top genre should be Comics");
    assert!(shares[0].1 > 0.25, "comics share {}", shares[0].1);
    // Thriller and Fantasy in the next ranks with meaningful shares.
    let find = |name: &str| {
        shares
            .iter()
            .find(|(l, _)| l == name)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    };
    assert!(find("Thriller") > 0.08);
    assert!(find("Fantasy") > 0.06);
    // Comics clearly dominates the runner-up.
    assert!(shares[0].1 > 1.8 * shares[1].1);
}

#[test]
fn medium_users_have_two_dominant_genres() {
    let corpus = reading_machine::datagen::generate_corpus(42, Preset::Medium);
    let share = dominant_genre_share(&corpus, 10.0, 10);
    assert!(share > 0.85, "dominant-genre share {share}");
}

#[test]
fn reading_distributions_are_heavy_tailed() {
    let corpus = reading_machine::datagen::generate_corpus(42, Preset::Medium);
    let (per_user, per_book) = reading_cdfs(&corpus);
    // Right-skew: mean above median for books.
    let book_median = per_book.quantile(0.5);
    let book_p95 = per_book.quantile(0.95);
    assert!(
        book_p95 > 2 * book_median,
        "book tail p95 {book_p95} vs median {book_median}"
    );
    let user_median = per_user.quantile(0.5);
    let user_p95 = per_user.quantile(0.95);
    assert!(
        user_p95 > 2 * user_median,
        "user tail p95 {user_p95} vs median {user_median}"
    );
}

#[test]
fn filters_do_real_work_on_raw_tables() {
    let preset = Preset::Tiny;
    let config = preset.generator_config();
    let tables = generate(42, &config);
    let corpus = build_corpus(
        &tables.bct_books,
        &tables.loans,
        &tables.anobii_items,
        &tables.ratings,
        &preset.merge_config(),
    );
    // Noise rows exist and are excluded: the merged catalogue is smaller
    // than either raw table and no larger than the overlap.
    assert!(corpus.n_books() <= config.world.n_overlap_books);
    assert!(tables.bct_books.len() > config.world.n_overlap_books);
    // Some loans reference non-merged books and were dropped, and users
    // below the threshold disappeared.
    assert!(corpus.n_readings() < tables.loans.len() + tables.ratings.len());
    assert!(corpus.n_users() < config.bct.n_users + config.anobii.n_users);
}
