//! Cross-crate integration: the full generate → prepare → split → train →
//! recommend → evaluate flow, with structural invariants at each joint.

use reading_machine::dataset::corpus::Source as CorpusSource;
use reading_machine::prelude::*;

fn harness() -> Harness {
    Harness::generate(7, Preset::Tiny)
}

#[test]
fn split_partitions_every_users_readings() {
    let h = harness();
    let by_user = h.corpus.readings_by_user();
    for (u, user_readings) in by_user.iter().enumerate() {
        let user = UserIdx(u as u32);
        let train = h.split.train.seen(user).len();
        let val = h.split.validation[u].len();
        let test = h.split.test[u].len();
        assert_eq!(train + val + test, user_readings.len(), "user {u}");
        // Only BCT users have test books.
        if h.corpus.users[u].source == CorpusSource::Anobii {
            assert_eq!(test, 0, "anobii user {u} must have no test split");
        }
    }
}

#[test]
fn every_recommender_respects_the_contract() {
    let h = harness();
    let suite = TrainedSuite::train(
        &h,
        BprConfig {
            factors: 6,
            epochs: 4,
            ..BprConfig::default()
        },
        SummaryFields::BEST,
        7,
    );
    let n_books = h.corpus.n_books() as u32;
    let cases = h.test_cases();
    for rec in [
        &suite.random as &dyn Recommender,
        &suite.most_read,
        &suite.closest,
        &suite.bpr,
    ] {
        for case in cases.iter().take(15) {
            let seen = h.split.train.seen(case.user);
            let recs = rec.recommend(case.user, 20);
            assert!(recs.len() <= 20);
            let mut dedup = recs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                recs.len(),
                "{}: duplicate recommendations",
                rec.name()
            );
            for &b in &recs {
                assert!(b < n_books, "{}: book out of range", rec.name());
                assert!(
                    seen.binary_search(&b).is_err(),
                    "{}: recommended an already-read book",
                    rec.name()
                );
            }
            // The top-k list is a prefix of the full ranking.
            let full = rec.rank_all(case.user);
            assert_eq!(
                recs[..],
                full[..recs.len()],
                "{}: prefix property",
                rec.name()
            );
            assert_eq!(
                full.len(),
                n_books as usize - seen.len(),
                "{}: full ranking size",
                rec.name()
            );
        }
    }
}

#[test]
fn kpis_are_internally_consistent() {
    let h = harness();
    let mut bpr = Bpr::new(BprConfig {
        factors: 6,
        epochs: 6,
        ..BprConfig::default()
    });
    h.fit_timed(&mut bpr);
    let cases = h.test_cases();
    let ks = [1usize, 5, 10, 20];
    let kpis = evaluate_at(&bpr, &cases, &ks);
    for w in kpis.windows(2) {
        assert!(w[1].urr >= w[0].urr);
        assert!(w[1].nrr >= w[0].nrr);
        assert!(w[1].recall >= w[0].recall);
    }
    for k in &kpis {
        assert!(k.urr <= 1.0 && k.urr >= 0.0);
        assert!(k.nrr >= k.urr, "NRR >= URR");
        assert!(k.precision <= 1.0);
        assert!(k.recall <= 1.0 + 1e-12);
        assert!(k.first_rank >= 1.0);
        // NRR = precision · k when every user has >= k unseen books.
        assert!((k.nrr - k.precision * k.k as f64).abs() < 1e-6);
    }
}

#[test]
fn bct_only_variant_evaluates_same_users() {
    let h = harness();
    let (bpr, local_cases) = h.bct_only_bpr(BprConfig {
        factors: 6,
        epochs: 4,
        ..BprConfig::default()
    });
    assert_eq!(local_cases.len(), h.test_cases().len());
    let kpis = evaluate(&bpr, &local_cases, 10);
    assert_eq!(kpis.n_users, local_cases.len());
}

#[test]
fn model_persistence_round_trips_through_bytes() {
    let h = harness();
    let mut bpr = Bpr::new(BprConfig {
        factors: 6,
        epochs: 4,
        ..BprConfig::default()
    });
    h.fit_timed(&mut bpr);
    let bytes = reading_machine::core::persist::encode(bpr.model().unwrap());
    let model = reading_machine::core::persist::decode(&bytes).unwrap();
    let mut restored = Bpr::new(bpr.config().clone());
    restored.install(model, &h.split.train);
    let u = h.test_cases()[0].user;
    assert_eq!(bpr.recommend(u, 20), restored.recommend(u, 20));
}

#[test]
fn corpus_books_carry_merged_attributes() {
    let h = harness();
    for b in &h.corpus.books {
        assert!(!b.title.is_empty());
        assert!(!b.authors.is_empty());
        // Anobii attributes came through the join.
        assert!(!b.plot.is_empty());
        assert!(!b.genres.is_empty());
        let p: f32 = b.genres.iter().map(|&(_, p)| p).sum();
        assert!((p - 1.0).abs() < 1e-4);
    }
}
