//! Fig. 2 benchmark: computing the genre shares of the readings.

use criterion::{criterion_group, criterion_main, Criterion};
use rm_dataset::stats::{dominant_genre_share, genre_shares};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, _) = rm_bench::bench_context();
    c.bench_function("fig2/genre_shares", |b| {
        b.iter(|| black_box(genre_shares(black_box(&harness.corpus))));
    });
    c.bench_function("fig2/dominant_genre_share", |b| {
        b.iter(|| black_box(dominant_genre_share(black_box(&harness.corpus), 10.0, 10)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
