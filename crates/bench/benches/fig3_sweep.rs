//! Fig. 3 benchmark: the k-sweep evaluation (all KPIs at k = 1..50 in one
//! ranking pass per user).

use criterion::{criterion_group, criterion_main, Criterion};
use rm_eval::metrics::evaluate_at;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, suite) = rm_bench::bench_context();
    let cases = harness.test_cases();
    let ks: Vec<usize> = (1..=50).collect();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("bpr_sweep_k1_50", |b| {
        b.iter(|| black_box(evaluate_at(&suite.bpr, black_box(&cases), &ks)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
