//! Table 1 benchmark: KPI evaluation cost of every recommender at k = 20
//! (one full-ranking pass over the evaluation users).

use criterion::{criterion_group, criterion_main, Criterion};
use rm_core::Recommender;
use rm_eval::metrics::evaluate;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, suite) = rm_bench::bench_context();
    let cases = harness.test_cases();
    let mut group = c.benchmark_group("table1/evaluate_k20");
    group.sample_size(10);
    for rec in [
        &suite.random as &dyn Recommender,
        &suite.most_read,
        &suite.closest,
        &suite.bpr,
    ] {
        group.bench_function(rec.name(), |b| {
            b.iter(|| black_box(evaluate(rec, black_box(&cases), 20)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
