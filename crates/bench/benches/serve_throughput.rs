//! Serving-engine throughput: single calls vs the scoped-thread batch
//! path at 1, 4, and 8 workers, plus the cache hit path.
//!
//! The fixture trains a Tiny-preset suite once, persists it through the
//! artifact registry, and reloads it exactly as production serving would.

use criterion::{criterion_group, criterion_main, Criterion};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, ServingEngine};
use rm_serve::registry::{ArtifactRegistry, Manifest};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let h = Harness::generate(11, Preset::Tiny);
    let train = h.split.train.clone();
    let mut bpr = Bpr::new(BprConfig {
        factors: 8,
        epochs: 3,
        ..BprConfig::default()
    });
    bpr.fit(&train);
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&train);

    let dir = std::env::temp_dir().join(format!("rm-serve-bench-{}", std::process::id()));
    let registry = ArtifactRegistry::new(&dir);
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            None,
            None,
        )
        .expect("save artifacts");

    let users: Vec<UserIdx> = (0..256)
        .map(|i| UserIdx(i % train.n_users() as u32))
        .collect();
    let k = 10;

    // Cold single calls (cache disabled isolates model cost).
    let engine = ServingEngine::load(
        &registry,
        &train,
        EngineConfig::builder()
            .cache_capacity(0)
            .workers(1)
            .build()
            .expect("valid config"),
    )
    .expect("engine loads");
    c.bench_function("serve/single_256req", |b| {
        b.iter(|| {
            for &u in &users {
                black_box(engine.recommend(u, k));
            }
        });
    });

    for workers in [1usize, 4, 8] {
        let engine = ServingEngine::load(
            &registry,
            &train,
            EngineConfig::builder()
                .cache_capacity(0)
                .workers(workers)
                .build()
                .expect("valid config"),
        )
        .expect("engine loads");
        c.bench_function(&format!("serve/batch_256req_x{workers}"), |b| {
            b.iter(|| black_box(engine.recommend_batch(&users, k)));
        });
    }

    // Warm cache: every request after the first pass is a hit.
    let warm = ServingEngine::load(
        &registry,
        &train,
        EngineConfig::builder()
            .cache_capacity(4096)
            .workers(1)
            .build()
            .expect("valid config"),
    )
    .expect("engine loads");
    warm.recommend_batch(&users, k);
    c.bench_function("serve/cached_256req", |b| {
        b.iter(|| {
            for &u in &users {
                black_box(warm.recommend(u, k));
            }
        });
    });

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
