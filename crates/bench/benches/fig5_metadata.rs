//! Fig. 5 benchmark: building one Closest Items variant (summary
//! rendering + IDF fit + catalogue encoding) and evaluating it.

use criterion::{criterion_group, criterion_main, Criterion};
use rm_core::closest::ClosestItems;
use rm_core::Recommender;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::metrics::evaluate;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, _) = rm_bench::bench_context();
    let cases = harness.test_cases();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("build_closest_authors_genres", |b| {
        b.iter(|| {
            black_box(ClosestItems::from_corpus(
                black_box(&harness.corpus),
                SummaryFields::BEST,
                EncoderConfig::default(),
            ))
        });
    });
    let mut ci = ClosestItems::from_corpus(
        &harness.corpus,
        SummaryFields::ALL,
        EncoderConfig::default(),
    );
    ci.fit(&harness.split.train);
    group.bench_function("evaluate_closest_all_fields", |b| {
        b.iter(|| black_box(evaluate(&ci, &cases, 20)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
