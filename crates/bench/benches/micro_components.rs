//! Component micro-benchmarks: the hot kernels under every experiment —
//! alias sampling, top-k selection, CSR construction, text encoding,
//! similarity scans, and one WARP training epoch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::Recommender;
use rm_dataset::interactions::Interactions;
use rm_embed::{EncoderConfig, SemanticEncoder};
use rm_util::rng::rng_from_seed;
use rm_util::sample::ZipfWeights;
use rm_util::topk::top_k_of;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Dense kernels: unrolled dot vs the scalar reference chain, at the
    // BPR factor count (64) and the encoder dimension (256), plus full
    // catalogue scans (2 332 rows) single-query and register-blocked.
    {
        use rm_sparse::vecops::{dot, dot_block, dot_ref};
        use rm_sparse::DenseMatrix;
        let vec_of = |salt: u64, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5
                })
                .collect()
        };
        for dim in [64usize, 256] {
            let a = vec_of(1, dim);
            let b_ = vec_of(2, dim);
            c.bench_function(&format!("micro/dot_ref_{dim}"), |b| {
                b.iter(|| black_box(dot_ref(black_box(&a), black_box(&b_))));
            });
            c.bench_function(&format!("micro/dot_{dim}"), |b| {
                b.iter(|| black_box(dot(black_box(&a), black_box(&b_))));
            });
        }
        let dim = 256;
        let rows = 2_332;
        let m = DenseMatrix::from_vec(rows, dim, vec_of(3, rows * dim));
        let queries: Vec<Vec<f32>> = (0..4).map(|q| vec_of(10 + q, dim)).collect();
        let mut out = Vec::with_capacity(rows);
        c.bench_function("micro/matvec_2332x256", |b| {
            b.iter(|| {
                m.matvec_into(black_box(&queries[0]), &mut out);
                black_box(out.last().copied())
            });
        });
        let xs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let mut outs: Vec<Vec<f32>> = (0..4).map(|_| Vec::with_capacity(rows)).collect();
        c.bench_function("micro/matvec_block4_2332x256", |b| {
            b.iter(|| {
                m.matvec_block_into(black_box(&xs), &mut outs);
                black_box(outs[3].last().copied())
            });
        });
        let quad: [&[f32]; 4] = [&queries[0], &queries[1], &queries[2], &queries[3]];
        let probe = vec_of(42, dim);
        c.bench_function("micro/dot_block4_256", |b| {
            b.iter(|| black_box(dot_block(black_box(&probe), black_box(quad))));
        });
    }

    // Alias sampling over a catalogue-sized support.
    let table = ZipfWeights::with_shift(1.0, 16.0).alias_table(2_332);
    let mut rng = rng_from_seed(1);
    c.bench_function("micro/alias_sample", |b| {
        b.iter(|| black_box(table.sample(&mut rng)));
    });

    // Top-20 of a catalogue-sized score vector.
    let scores: Vec<(u32, f32)> = (0..2_332u32).map(|i| (i, (i as f32 * 0.7).sin())).collect();
    c.bench_function("micro/top20_of_2332", |b| {
        b.iter(|| black_box(top_k_of(scores.iter().copied(), 20)));
    });

    // CSR construction from 100k pairs (pseudo-random via the alias
    // table, which rm-bench can reach without a direct rand dependency).
    let user_table = ZipfWeights::new(0.3).alias_table(5_000);
    let book_table = ZipfWeights::new(0.3).alias_table(2_332);
    let mut rng2 = rng_from_seed(2);
    let pairs: Vec<(u32, u32)> = (0..100_000)
        .map(|_| {
            (
                user_table.sample(&mut rng2) as u32,
                book_table.sample(&mut rng2) as u32,
            )
        })
        .collect();
    c.bench_function("micro/csr_from_100k_pairs", |b| {
        b.iter(|| {
            black_box(rm_sparse::CsrMatrix::from_pairs(
                5_000,
                2_332,
                black_box(&pairs),
            ))
        });
    });

    // Metadata-summary encoding.
    let encoder = SemanticEncoder::new(EncoderConfig::default());
    let summary = "Elsa Morante Thriller Thriller Mystery una famiglia a roma durante la guerra";
    c.bench_function("micro/encode_summary", |b| {
        b.iter(|| black_box(encoder.encode(black_box(summary))));
    });

    // LSH index build + probe over a catalogue-sized store.
    {
        use rm_embed::ann::SignLshIndex;
        use rm_embed::EmbeddingStore;
        let texts: Vec<String> = (0..2_332)
            .map(|i| {
                format!(
                    "autore{} genere{} parola{} tema{}",
                    i % 700,
                    i % 14,
                    i,
                    i % 97
                )
            })
            .collect();
        let store = EmbeddingStore::encode_all(&encoder, &texts);
        let index = SignLshIndex::build(&store, 14, 3);
        c.bench_function("micro/lsh_probe_r2", |b| {
            b.iter(|| black_box(index.search(&store, store.embedding(17), 20, 2, Some(17))));
        });
        c.bench_function("micro/bruteforce_knn", |b| {
            b.iter(|| black_box(store.nearest(17, 20)));
        });
    }

    // One WARP epoch on a small community matrix.
    let train = {
        let pairs: Vec<(rm_dataset::ids::UserIdx, rm_dataset::ids::BookIdx)> = (0..500u32)
            .flat_map(|u| {
                (0..20u32).map(move |i| {
                    (
                        rm_dataset::ids::UserIdx(u),
                        rm_dataset::ids::BookIdx((u % 10) * 100 + i),
                    )
                })
            })
            .collect();
        Interactions::from_pairs(500, 1_000, &pairs)
    };
    let mut group = c.benchmark_group("micro");
    group.sample_size(10);
    group.bench_function("warp_epoch_10k_interactions", |b| {
        b.iter_batched(
            || {
                Bpr::new(BprConfig {
                    factors: 20,
                    epochs: 1,
                    ..BprConfig::default()
                })
            },
            |mut bpr| {
                bpr.fit(&train);
                black_box(bpr)
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
