//! Fig. 1 benchmark: computing the readings-per-user / per-book CDFs.

use criterion::{criterion_group, criterion_main, Criterion};
use rm_dataset::stats::reading_cdfs;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, _) = rm_bench::bench_context();
    c.bench_function("fig1/reading_cdfs", |b| {
        b.iter(|| black_box(reading_cdfs(black_box(&harness.corpus))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
