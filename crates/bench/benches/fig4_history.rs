//! Fig. 4 benchmark: equal-population binning plus per-bin evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rm_eval::groups::{equal_population_bins, evaluate_by_bin};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, suite) = rm_bench::bench_context();
    let cases = harness.test_cases();
    let histories = harness.test_case_histories();
    c.bench_function("fig4/equal_population_bins", |b| {
        b.iter(|| black_box(equal_population_bins(black_box(&histories), 4)));
    });
    let bins = equal_population_bins(&histories, 4);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("binned_evaluation_bpr", |b| {
        b.iter(|| black_box(evaluate_by_bin(&suite.bpr, &cases, &histories, &bins, 20)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
