//! Table 2 benchmark: the paper's training / recommendation timings.
//! Training is measured for BPR (the only algorithm with a proper training
//! phase); recommendation latency is measured per user for all three
//! algorithms the paper lists.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rm_core::bpr::Bpr;
use rm_core::Recommender;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (harness, suite) = rm_bench::bench_context();
    let users: Vec<_> = harness
        .test_cases()
        .iter()
        .map(|c| c.user)
        .take(64)
        .collect();

    let mut group = c.benchmark_group("table2/recommendation_k20");
    for rec in [
        &suite.random as &dyn Recommender,
        &suite.closest,
        &suite.bpr,
    ] {
        let mut i = 0usize;
        group.bench_function(rec.name(), |b| {
            b.iter(|| {
                i = (i + 1) % users.len();
                black_box(rec.recommend(users[i], 20))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table2/training");
    group.sample_size(10);
    group.bench_function("BPR fit", |b| {
        b.iter_batched(
            || Bpr::new(suite.bpr.config().clone()),
            |mut bpr| {
                bpr.fit(&harness.split.train);
                black_box(bpr)
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
