//! ANN (IVF) retrieval benchmark with machine-readable output: measures
//! recall@10 and per-query speedup of [`rm_embed::IvfIndex`] against the
//! exact scan on a deterministic clustered synthetic catalogue, and
//! writes the result to `BENCH_ann.json`.
//!
//! ```text
//! ann-bench [--smoke] [--out FILE] [--gate FILE]
//! ```
//!
//! The full run (no flags) builds a 1M-item, 64-dim catalogue — the
//! scale where sub-linear retrieval matters — and is what produces the
//! committed `BENCH_ann.json`. `--smoke` runs a 20k-item variant in a
//! few seconds for CI. Recall numbers are timing-free and fully
//! deterministic (hash-seeded data, seeded k-means, total-order TopK),
//! so `--gate FILE` can enforce the committed report:
//!
//! - the recomputed smoke section must match the committed one
//!   byte-for-byte (recall drift = a retrieval-semantics change);
//! - the committed full section must meet the floors
//!   `recall_at_10 >= 0.95` and `speedup >= 10`;
//! - probing every list must reproduce the exact scan (`recall 1.0`),
//!   the bit-identity contract the serve pipeline relies on.

use rm_embed::{EmbeddingStore, IvfConfig, IvfIndex, IvfScratch};
use rm_sparse::vecops::dot;
use rm_sparse::DenseMatrix;
use rm_util::rng::{derive_seed, rng_from_seed};
use rm_util::topk::top_k_of;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Neighbours compared between exact and ANN rankings.
const K: usize = 10;

/// Master seed for the synthetic catalogue and the k-means init.
const SEED: u64 = 0xBE7C_11A5;

/// Hash-derived f32 in [-0.5, 0.5): deterministic across platforms, no
/// RNG state to thread through the generators.
fn hashed_unit(seed: u64, label: u64) -> f32 {
    (derive_seed(seed, label) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
}

/// Clustered catalogue: `topics` hash-seeded centres in `dim` dims, each
/// row a centre plus `noise`-scaled jitter. Mirrors what book embeddings
/// look like in practice (genre/topic cluster structure) — a uniform
/// cloud would make IVF look artificially bad and flat timings would
/// make it look artificially good.
fn clustered_rows(n: usize, dim: usize, topics: usize, noise: f32, seed: u64) -> DenseMatrix {
    let centre_seed = derive_seed(seed, 1);
    let assign_seed = derive_seed(seed, 2);
    let jitter_seed = derive_seed(seed, 3);
    let mut centres = vec![0.0f32; topics * dim];
    for (i, c) in centres.iter_mut().enumerate() {
        *c = hashed_unit(centre_seed, i as u64);
    }
    let mut data = vec![0.0f32; n * dim];
    for row in 0..n {
        let t = (derive_seed(assign_seed, row as u64) % topics as u64) as usize;
        let centre = &centres[t * dim..(t + 1) * dim];
        let out = &mut data[row * dim..(row + 1) * dim];
        let row_seed = derive_seed(jitter_seed, row as u64);
        for (j, (o, c)) in out.iter_mut().zip(centre).enumerate() {
            *o = c + noise * hashed_unit(row_seed, j as u64);
        }
    }
    DenseMatrix::from_vec(n, dim, data)
}

/// Held-out query vectors drawn from the same topic mixture.
fn query_rows(n: usize, dim: usize, topics: usize, noise: f32, seed: u64) -> DenseMatrix {
    clustered_rows(n, dim, topics, noise, derive_seed(seed, 0x71))
}

/// Fraction of the exact top-[`K`] recovered by the ANN ranking,
/// averaged over queries.
fn recall_at_k(exact: &[Vec<u32>], approx: &[Vec<u32>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        total += e.len();
        hit += e.iter().filter(|id| a.contains(id)).count();
    }
    if total == 0 {
        return 1.0;
    }
    hit as f64 / total as f64
}

/// Exact top-[`K`] per query by brute-force cosine scan over the store.
fn exact_cosine(store: &EmbeddingStore, queries: &DenseMatrix) -> Vec<Vec<u32>> {
    (0..queries.rows())
        .map(|q| {
            let query = queries.row(q);
            top_k_of(
                (0..store.len()).map(|i| (i as u32, dot(query, store.embedding(i)))),
                K,
            )
            .into_iter()
            .map(|s| s.item)
            .collect()
        })
        .collect()
}

/// ANN top-[`K`] per query at the given probe depth.
fn ann_cosine(
    store: &EmbeddingStore,
    index: &IvfIndex,
    queries: &DenseMatrix,
    nprobe: usize,
) -> Vec<Vec<u32>> {
    let mut scratch = IvfScratch::new();
    let mut out = Vec::new();
    (0..queries.rows())
        .map(|q| {
            let query = queries.row(q);
            index.search_into(
                query,
                K,
                nprobe,
                &[],
                |i| dot(query, store.embedding(i as usize)),
                &mut scratch,
                &mut out,
            );
            out.clone()
        })
        .collect()
}

/// Best-of-`reps` milliseconds per query for `f` run over all queries.
fn time_ms_per_query(reps: usize, queries: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let ms = t0.elapsed().as_secs_f64() * 1e3 / queries as f64;
        if ms < best {
            best = ms;
        }
    }
    best
}

/// Scale-dependent knobs for one cosine benchmark run.
struct Scenario {
    n_items: usize,
    dim: usize,
    topics: usize,
    nlist: usize,
    nprobe: usize,
    iters: usize,
    /// Item jitter around the topic centre.
    noise: f32,
    /// Query jitter. Smaller than `noise` on purpose: serve-path content
    /// queries are *mean* embeddings of a user's history, and averaging
    /// N books shrinks the jitter by roughly sqrt(N).
    query_noise: f32,
    queries: usize,
}

const FULL: Scenario = Scenario {
    n_items: 1_000_000,
    dim: 64,
    topics: 256,
    nlist: 1000,
    nprobe: 16,
    iters: 8,
    noise: 0.25,
    query_noise: 0.1,
    queries: 100,
};

const SMOKE: Scenario = Scenario {
    n_items: 20_000,
    dim: 32,
    topics: 64,
    nlist: 64,
    nprobe: 8,
    iters: 4,
    noise: 0.25,
    query_noise: 0.1,
    queries: 50,
};

/// Deterministic (timing-free) outputs of a scenario.
struct Recalls {
    /// recall@10 at the scenario's serving `nprobe`.
    at_nprobe: f64,
    /// recall@10 probing every list — 1.0 by the bit-identity contract.
    full_probe: f64,
}

fn run_recalls(
    sc: &Scenario,
) -> (
    EmbeddingStore,
    IvfIndex,
    DenseMatrix,
    Vec<Vec<u32>>,
    Recalls,
) {
    let store = EmbeddingStore::from_matrix(clustered_rows(
        sc.n_items, sc.dim, sc.topics, sc.noise, SEED,
    ));
    let queries = query_rows(sc.queries, sc.dim, sc.topics, sc.query_noise, SEED);
    let config = IvfConfig {
        nlist: sc.nlist,
        iters: sc.iters,
        seed: SEED,
        train_sample: 100_000,
    };
    let index = IvfIndex::build(&store, &config);
    let exact = exact_cosine(&store, &queries);
    let at_nprobe = recall_at_k(&exact, &ann_cosine(&store, &index, &queries, sc.nprobe));
    let full_probe = recall_at_k(&exact, &ann_cosine(&store, &index, &queries, usize::MAX));
    (
        store,
        index,
        queries,
        exact,
        Recalls {
            at_nprobe,
            full_probe,
        },
    )
}

/// MIPS smoke recall: BPR-shaped gaussian item factors, unaugmented
/// user-factor queries, inner-product ground truth. Exercises the
/// augmented-dimension reduction end to end.
fn mips_smoke_recall() -> f64 {
    let mut rng = rng_from_seed(derive_seed(SEED, 0x3117));
    let factors = DenseMatrix::gaussian(SMOKE.n_items, 16, 0.3, &mut rng);
    let queries = DenseMatrix::gaussian(SMOKE.queries, 16, 0.5, &mut rng);
    let config = IvfConfig {
        nlist: SMOKE.nlist,
        iters: 4,
        seed: SEED,
        train_sample: 100_000,
    };
    let index = IvfIndex::build_mips(&factors, &config);
    let exact: Vec<Vec<u32>> = (0..queries.rows())
        .map(|q| {
            let query = queries.row(q);
            top_k_of(
                (0..factors.rows()).map(|i| (i as u32, dot(query, factors.row(i)))),
                K,
            )
            .into_iter()
            .map(|s| s.item)
            .collect()
        })
        .collect();
    let mut scratch = IvfScratch::new();
    let mut out = Vec::new();
    let approx: Vec<Vec<u32>> = (0..queries.rows())
        .map(|q| {
            let query = queries.row(q);
            index.search_into(
                query,
                K,
                SMOKE.nprobe,
                &[],
                |i| dot(query, factors.row(i as usize)),
                &mut scratch,
                &mut out,
            );
            out.clone()
        })
        .collect();
    recall_at_k(&exact, &approx)
}

/// Renders the smoke section — the byte-stable part the gate recomputes.
fn smoke_json(recalls: &Recalls, mips_recall: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  \"smoke\": {{");
    let _ = writeln!(s, "    \"n_items\": {},", SMOKE.n_items);
    let _ = writeln!(s, "    \"dim\": {},", SMOKE.dim);
    let _ = writeln!(s, "    \"nlist\": {},", SMOKE.nlist);
    let _ = writeln!(s, "    \"nprobe\": {},", SMOKE.nprobe);
    let _ = writeln!(s, "    \"queries\": {},", SMOKE.queries);
    let _ = writeln!(s, "    \"recall_at_10\": {:.4},", recalls.at_nprobe);
    let _ = writeln!(s, "    \"full_probe_recall\": {:.4},", recalls.full_probe);
    let _ = writeln!(s, "    \"mips_recall_at_10\": {mips_recall:.4}");
    let _ = write!(s, "  }}");
    s
}

/// Extracts `"key": <number>` from the named JSON section. Hand-rolled on
/// purpose: the report is machine-written with a fixed shape and the
/// workspace carries no JSON dependency.
fn extract(report: &str, section: &str, key: &str) -> Option<f64> {
    let sec = report.find(&format!("\"{section}\""))?;
    let tail = &report[sec..];
    let at = tail.find(&format!("\"{key}\""))?;
    let after = tail[at..].find(':')? + at + 1;
    let rest = tail[after..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_gate(gate_path: &str, smoke_block: &str) -> Result<(), String> {
    let committed =
        std::fs::read_to_string(gate_path).map_err(|e| format!("cannot read {gate_path}: {e}"))?;
    if !committed.contains(smoke_block) {
        return Err(format!(
            "smoke section drifted from {gate_path}; ANN retrieval semantics changed — \
             regenerate with `ann-bench --out {gate_path}` (full run) and review the diff"
        ));
    }
    let recall = extract(&committed, "full", "recall_at_10")
        .ok_or_else(|| format!("{gate_path}: missing full.recall_at_10"))?;
    let speedup = extract(&committed, "full", "speedup")
        .ok_or_else(|| format!("{gate_path}: missing full.speedup"))?;
    let full_probe = extract(&committed, "smoke", "full_probe_recall")
        .ok_or_else(|| format!("{gate_path}: missing smoke.full_probe_recall"))?;
    if recall < 0.95 {
        return Err(format!("full.recall_at_10 {recall} below the 0.95 floor"));
    }
    if speedup < 10.0 {
        return Err(format!("full.speedup {speedup} below the 10x floor"));
    }
    if full_probe != 1.0 {
        return Err(format!(
            "smoke.full_probe_recall {full_probe} != 1.0: probing every list no longer \
             reproduces the exact scan"
        ));
    }
    println!("gate {gate_path}: smoke section byte-identical, full recall {recall} >= 0.95, speedup {speedup}x >= 10");
    Ok(())
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--gate" => match it.next() {
                Some(p) => gate = Some(p),
                None => {
                    eprintln!("error: --gate needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ann-bench [--smoke] [--out FILE] [--gate FILE]");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "ann-bench: smoke scenario ({} items, dim {})",
        SMOKE.n_items, SMOKE.dim
    );
    let (_, _, _, _, smoke_recalls) = run_recalls(&SMOKE);
    let mips_recall = mips_smoke_recall();
    let smoke_block = smoke_json(&smoke_recalls, mips_recall);
    eprintln!(
        "  recall@10 {:.4} (nprobe {}), full-probe {:.4}, mips {:.4}",
        smoke_recalls.at_nprobe, SMOKE.nprobe, smoke_recalls.full_probe, mips_recall
    );

    let mut report = String::from("{\n  \"bench\": \"ann_ivf\",\n");
    if smoke {
        report.push_str(&smoke_block);
        report.push_str("\n}\n");
    } else {
        eprintln!(
            "ann-bench: full scenario ({} items, dim {}) — building index...",
            FULL.n_items, FULL.dim
        );
        let (store, index, queries, _, full_recalls) = run_recalls(&FULL);
        let exact_ms = time_ms_per_query(3, FULL.queries, || {
            black_box(exact_cosine(&store, &queries));
        });
        let ann_ms = time_ms_per_query(3, FULL.queries, || {
            black_box(ann_cosine(&store, &index, &queries, FULL.nprobe));
        });
        let speedup = exact_ms / ann_ms;
        eprintln!(
            "  recall@10 {:.4} (nprobe {}), exact {exact_ms:.3} ms/q, ann {ann_ms:.3} ms/q, {speedup:.1}x",
            full_recalls.at_nprobe, FULL.nprobe
        );
        let _ = writeln!(report, "  \"full\": {{");
        let _ = writeln!(report, "    \"n_items\": {},", FULL.n_items);
        let _ = writeln!(report, "    \"dim\": {},", FULL.dim);
        let _ = writeln!(report, "    \"nlist\": {},", FULL.nlist);
        let _ = writeln!(report, "    \"nprobe\": {},", FULL.nprobe);
        let _ = writeln!(report, "    \"queries\": {},", FULL.queries);
        let _ = writeln!(
            report,
            "    \"recall_at_10\": {:.4},",
            full_recalls.at_nprobe
        );
        let _ = writeln!(
            report,
            "    \"full_probe_recall\": {:.4},",
            full_recalls.full_probe
        );
        let _ = writeln!(report, "    \"exact_ms_per_query\": {exact_ms:.3},");
        let _ = writeln!(report, "    \"ann_ms_per_query\": {ann_ms:.3},");
        let _ = writeln!(report, "    \"speedup\": {speedup:.1}");
        let _ = writeln!(report, "  }},");
        report.push_str(&smoke_block);
        report.push_str("\n}\n");
    }

    if let Some(path) = out_path
        .as_deref()
        .or(if smoke { None } else { Some("BENCH_ann.json") })
    {
        std::fs::write(path, &report).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("ann-bench: wrote {path}");
    }

    if let Some(gate_path) = gate {
        if let Err(e) = run_gate(&gate_path, &smoke_block) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
