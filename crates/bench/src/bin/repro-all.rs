//! Runs every table/figure reproduction in one pass (sharing the corpus
//! and the trained suite), writing all CSV artefacts.

use rm_bench::{section, Options};
use rm_eval::experiments::{fig1, fig2, fig3, fig4, fig5, table1, table2};

fn main() {
    let opts = Options::from_env();
    let t0 = std::time::Instant::now();
    let harness = opts.harness();
    println!(
        "corpus: {} books, {} users ({} BCT / {} Anobii), {} readings",
        harness.corpus.n_books(),
        harness.corpus.n_users(),
        harness.corpus.bct_users().len(),
        harness.corpus.anobii_users().len(),
        harness.corpus.n_readings()
    );
    let suite = opts.suite(&harness);

    let f1 = fig1::run(&harness);
    section("Fig. 1 — readings per user / per book");
    print!("{}", f1.table().render());
    opts.write_csv("fig1_cdf.csv", &f1.to_csv());

    let f2 = fig2::run(&harness);
    section("Fig. 2 — genre shares");
    print!("{}", f2.table().render());
    opts.write_csv("fig2_genres.csv", &f2.to_csv());

    let t1 = table1::run(&harness, &suite, opts.bpr_config(), 20);
    section("Table 1 — KPIs at k = 20");
    print!("{}", t1.table().render());
    opts.write_csv("table1.csv", &t1.table().to_csv());

    let t2 = table2::run(&harness, &suite, 20, 500);
    section("Table 2 — timing");
    print!("{}", t2.table().render());
    opts.write_csv("table2.csv", &t2.table().to_csv());

    let f3 = fig3::run(&harness, &suite, &(1..=50).collect::<Vec<_>>());
    section("Fig. 3 — KPIs vs k (excerpt)");
    print!("{}", f3.table().render());
    opts.write_csv("fig3_sweep.csv", &f3.to_csv());

    let f4 = fig4::run(&harness, &suite, 20, 4);
    section("Fig. 4 — NRR by history bin");
    print!("{}", f4.table().render());
    opts.write_csv("fig4_history.csv", &f4.to_csv());

    let f5 = fig5::run(&harness, &fig5::paper_variants(), 20);
    section("Fig. 5 — KPIs by metadata summary");
    print!("{}", f5.table().render());
    opts.write_csv("fig5_metadata.csv", &f5.to_csv());

    println!("\ntotal {:.1?}", t0.elapsed());
}
