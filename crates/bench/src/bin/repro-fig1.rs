//! Regenerates Fig. 1: CDFs of readings per user and per book.

use rm_bench::{section, Options};
use rm_eval::experiments::fig1;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let result = fig1::run(&harness);
    section("Fig. 1 — readings per user / per book (quantiles)");
    print!("{}", result.table().render());
    opts.write_csv("fig1_cdf.csv", &result.to_csv());
}
