//! Extension experiment: future-work algorithms (sequential, hybrid,
//! item-kNN) and beyond-accuracy metrics (diversity, novelty, serendipity,
//! coverage) — under both the paper's random split and the chronological
//! split that is the honest protocol for sequential recommenders.

use rm_bench::{section, Options};
use rm_dataset::summary::SummaryFields;
use rm_eval::experiments::extensions;
use rm_eval::harness::{Harness, TrainedSuite};
use rm_eval::{SplitConfig, SplitStrategy};

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let suite = opts.suite(&harness);
    let result = extensions::run(&harness, &suite, 20, 0.5);
    section("Extensions — accuracy + beyond-accuracy at k = 20 (random split)");
    print!("{}", result.table().render());
    opts.write_csv("extensions.csv", &result.to_csv());

    // Chronological split: the future never leaks into training, which is
    // the protocol a sequential recommender must be judged under.
    let temporal = Harness::from_corpus(
        harness.corpus.clone(),
        &SplitConfig {
            strategy: SplitStrategy::Temporal,
            seed: rm_util::rng::derive_seed_str(opts.seed, "split"),
            ..SplitConfig::default()
        },
    );
    let suite_t = TrainedSuite::train(&temporal, opts.bpr_config(), SummaryFields::BEST, opts.seed);
    let result_t = extensions::run(&temporal, &suite_t, 20, 0.5);
    section("Extensions — same line-up under the temporal split");
    print!("{}", result_t.table().render());
    opts.write_csv("extensions_temporal.csv", &result_t.to_csv());
}
