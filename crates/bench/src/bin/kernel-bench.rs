//! Kernel micro-benchmark with machine-readable output: times the scalar
//! reference chain against the unrolled kernels and writes the comparison
//! to a JSON file (`BENCH_kernels.json` by default), so speedups can be
//! tracked in-repo without Criterion's report machinery.
//!
//! ```text
//! kernel-bench [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` cuts iteration counts ~30× for CI: timings get noisy but the
//! binary still exercises every kernel end to end in well under a second.

use rm_sparse::vecops::{dot, dot_ref};
use rm_sparse::DenseMatrix;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Catalogue size of the paper's corpus (books in the OPAC dump).
const CATALOGUE: usize = 2_332;

fn vec_of(salt: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect()
}

/// Best-of-`reps` nanoseconds per call of `f`, each rep averaging `iters`
/// calls. Best-of filters scheduler noise on a single-core box better
/// than a mean does.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

struct Row {
    name: &'static str,
    scalar_ns: f64,
    unrolled_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.unrolled_ns
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_kernels.json");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: kernel-bench [--smoke] [--out FILE]");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let (reps, iters) = if smoke { (3, 200) } else { (7, 6_000) };

    let mut rows = Vec::new();

    // Plain dot at the BPR factor count and the encoder dimension.
    for (name, dim) in [("dot_64", 64usize), ("dot_256", 256)] {
        let a = vec_of(1, dim);
        let b = vec_of(2, dim);
        let scalar = time_ns(reps, iters * 8, || {
            black_box(dot_ref(black_box(&a), black_box(&b)));
        });
        let unrolled = time_ns(reps, iters * 8, || {
            black_box(dot(black_box(&a), black_box(&b)));
        });
        rows.push(Row {
            name,
            scalar_ns: scalar,
            unrolled_ns: unrolled,
        });
    }

    // Catalogue scan: one query against every item embedding, the Closest
    // Items / serve hot loop. Scalar baseline is a dot_ref per row.
    {
        let dim = 256;
        let m = DenseMatrix::from_vec(CATALOGUE, dim, vec_of(3, CATALOGUE * dim));
        let x = vec_of(4, dim);
        let mut out = Vec::with_capacity(CATALOGUE);
        // Catalogue scans stream ~2.4 MB per pass, so wall time is at the
        // mercy of the memory subsystem; extra repetitions keep best-of
        // stable on a busy single-core box.
        let reps = reps + 2;
        let scalar = time_ns(reps, iters / 40 + 1, || {
            out.clear();
            for r in 0..CATALOGUE {
                out.push(dot_ref(m.row(r), black_box(&x)));
            }
            black_box(out.last().copied());
        });
        let unrolled = time_ns(reps, iters / 40 + 1, || {
            m.matvec_into(black_box(&x), &mut out);
            black_box(out.last().copied());
        });
        rows.push(Row {
            name: "matvec_2332x256",
            scalar_ns: scalar,
            unrolled_ns: unrolled,
        });

        // Register-blocked scan: four queries per pass, per-query cost.
        let queries: Vec<Vec<f32>> = (0..4).map(|q| vec_of(10 + q, dim)).collect();
        let xs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let mut outs: Vec<Vec<f32>> = (0..4).map(|_| Vec::with_capacity(CATALOGUE)).collect();
        let scalar4 = time_ns(reps, iters / 160 + 1, || {
            for (q, o) in xs.iter().zip(outs.iter_mut()) {
                o.clear();
                for r in 0..CATALOGUE {
                    o.push(dot_ref(m.row(r), black_box(q)));
                }
            }
            black_box(outs[3].last().copied());
        });
        let blocked = time_ns(reps, iters / 160 + 1, || {
            m.matvec_block_into(black_box(&xs), &mut outs);
            black_box(outs[3].last().copied());
        });
        rows.push(Row {
            name: "matvec_block4_2332x256",
            scalar_ns: scalar4,
            unrolled_ns: blocked,
        });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"unit\": \"ns_per_call\",\n  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"scalar_ns\": {:.1}, \"unrolled_ns\": {:.1}, \"speedup\": {:.2}}}",
            row.name,
            row.scalar_ns,
            row.unrolled_ns,
            row.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "kernel", "scalar ns", "unrolled ns", "speedup"
    );
    for row in &rows {
        println!(
            "{:<26} {:>12.1} {:>12.1} {:>8.2}x",
            row.name,
            row.scalar_ns,
            row.unrolled_ns,
            row.speedup()
        );
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
