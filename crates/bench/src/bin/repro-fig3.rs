//! Regenerates Fig. 3: KPIs versus the number of recommended books k.

use rm_bench::{section, Options};
use rm_eval::experiments::fig3;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let suite = opts.suite(&harness);
    let ks: Vec<usize> = (1..=50).collect();
    let result = fig3::run(&harness, &suite, &ks);
    section("Fig. 3 — URR/NRR (a) and P/R (b) vs k");
    print!("{}", result.table().render());
    opts.write_csv("fig3_sweep.csv", &result.to_csv());
}
