//! Diagnostic: what kinds of books does each recommender hit, per
//! history bin? Classifies hits as same-author (an author already in the
//! user's training set) vs other, and reports the hit books' popularity.

use rm_bench::Options;
use rm_core::Recommender;
use std::collections::HashSet;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let suite = opts.suite(&harness);
    let cases = harness.test_cases();
    let hist = harness.test_case_histories();
    let book_pop =
        rm_dataset::interactions::Interactions::from_corpus(&harness.corpus).book_counts();

    for (name, rec) in [
        ("Closest", &suite.closest as &dyn Recommender),
        ("BPR", &suite.bpr),
    ] {
        for (lo, hi) in [(0u64, 9), (13, 10_000)] {
            let mut hits = 0usize;
            let mut same_author = 0usize;
            let mut pop_sum = 0f64;
            let mut tests = 0usize;
            for (case, &h) in cases.iter().zip(&hist) {
                if !(lo..=hi).contains(&h) {
                    continue;
                }
                tests += case.test.len();
                let train_authors: HashSet<&str> = harness
                    .split
                    .train
                    .seen(case.user)
                    .iter()
                    .flat_map(|&b| harness.corpus.books[b as usize].authors.iter())
                    .map(String::as_str)
                    .collect();
                for b in rec.recommend(case.user, 20) {
                    if case.test.binary_search(&b).is_ok() {
                        hits += 1;
                        pop_sum += book_pop[b as usize] as f64;
                        if harness.corpus.books[b as usize]
                            .authors
                            .iter()
                            .any(|a| train_authors.contains(a.as_str()))
                        {
                            same_author += 1;
                        }
                    }
                }
            }
            println!(
                "{name:<8} hist {lo:>3}-{hi:<5} hits {hits:>5} ({:.1}% of test)  same-author {:.0}%  mean-hit-popularity {:.0}",
                100.0 * hits as f64 / tests.max(1) as f64,
                100.0 * same_author as f64 / hits.max(1) as f64,
                pop_sum / hits.max(1) as f64
            );
        }
    }
}
