//! Regenerates Fig. 4: NRR by number of training-set books per user.

use rm_bench::{section, Options};
use rm_eval::experiments::fig4;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let suite = opts.suite(&harness);
    let result = fig4::run(&harness, &suite, 20, 4);
    section("Fig. 4 — NRR by training-history bin (k = 20)");
    print!("{}", result.table().render());
    opts.write_csv("fig4_history.csv", &result.to_csv());
}
