//! Design-choice ablation: WARP vs sigmoid BPR across factor budgets.

use rm_bench::{section, Options};
use rm_core::bpr::Loss;
use rm_eval::experiments::ablation;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let result = ablation::run(&harness, &opts.bpr_config(), &[10, 20, 40], 20);
    section("Ablation — BPR loss × latent factors (k = 20)");
    print!("{}", result.table().render());
    if let (Some(w), Some(s)) = (result.best_of(Loss::Warp), result.best_of(Loss::Bpr)) {
        println!(
            "best WARP NRR {:.3} (L = {}) vs best sigmoid NRR {:.3} (L = {})",
            w.kpis.nrr, w.factors, s.kpis.nrr, s.factors
        );
    }
    opts.write_csv("ablation.csv", &result.to_csv());
}
