//! Regenerates Fig. 2: genre distribution of the readings.

use rm_bench::{section, Options};
use rm_eval::experiments::fig2;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let result = fig2::run(&harness);
    section("Fig. 2 — share of readings per genre");
    print!("{}", result.table().render());
    opts.write_csv("fig2_genres.csv", &result.to_csv());
}
