//! Regenerates Table 2: training and recommendation wall-clock times.

use rm_bench::{section, Options};
use rm_eval::experiments::table2;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let suite = opts.suite(&harness);
    let result = table2::run(&harness, &suite, 20, 500);
    section("Table 2 — average time (s) for training and recommendation");
    print!("{}", result.table().render());
    println!(
        "(one-off Closest Items catalogue encoding: {:.2} s)",
        result.closest_encoding.as_secs_f64()
    );
    opts.write_csv("table2.csv", &result.table().to_csv());
}
