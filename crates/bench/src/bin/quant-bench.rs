//! Quantized-artifact benchmark with machine-readable output: measures
//! the i8 memory footprint and fused int-dot matvec throughput of
//! [`rm_core::quant::QuantArtifact`] against the f32 baseline at the
//! million-user (`paper_x100`) serving scale, plus the Table-1 KPI drift
//! of quantized BPR scoring, and writes the result to `BENCH_quant.json`.
//!
//! ```text
//! quant-bench [--smoke] [--out FILE] [--gate FILE]
//! ```
//!
//! The full run (no flags) sizes matrices from
//! `Preset::PaperX100.serving_scale()` — 4.3M users × 64 factors plus
//! 230k books × 64 factors and 256-dim embeddings, the scale where a
//! single node starts caring about artifact bytes. Item factors and
//! embeddings are encoded for real; the user-factor section is never
//! materialised in f32 — its byte count extrapolates *exactly* from
//! probe encodings because the canonical section layout is linear in
//! rows at 16-row-aligned sizes (verified against a third probe at
//! runtime). `--smoke` runs only the deterministic section in a few
//! seconds for CI: it trains the Medium-preset BPR model, quantizes it to
//! i8 and f16, and evaluates Table-1 URR/NRR through the quantized
//! scorer. Those numbers are timing-free and fully deterministic, so
//! `--gate FILE` can enforce the committed report:
//!
//! - the recomputed smoke section must match the committed one
//!   byte-for-byte (drift = a quantization-semantics change);
//! - recomputed KPI drift vs f32 must stay within `5e-3` URR/NRR for
//!   both i8 and f16 — the accuracy contract of serving quantized;
//! - the committed full section must meet the floors
//!   `memory_ratio >= 3.5` and `matvec_speedup >= 1.2`.

use rm_core::bpr::{Bpr, BprConfig};
use rm_core::quant::{QuantArtifact, QuantMode, QuantQuery, QuantRecommender, SectionKind};
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_eval::harness::Harness;
use rm_eval::metrics::{evaluate, Kpis};
use rm_sparse::DenseMatrix;
use rm_util::rng::derive_seed;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Recommendation list length for the KPI drift check (Table 1's k).
const K: usize = 10;

/// Master seed for synthetic matrices and the Tiny harness.
const SEED: u64 = 0x0C0D_EC11;

/// Hash-derived f32 in [-0.5, 0.5): deterministic across platforms, no
/// RNG state to thread through the generators.
fn hashed_unit(seed: u64, label: u64) -> f32 {
    (derive_seed(seed, label) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
}

/// Dense matrix of `scale`-amplitude hash-seeded entries.
fn hashed_matrix(rows: usize, cols: usize, scale: f32, seed: u64) -> DenseMatrix {
    let mut data = vec![0.0f32; rows * cols];
    for (i, v) in data.iter_mut().enumerate() {
        *v = scale * hashed_unit(seed, i as u64);
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Exact payload bytes of a one-section artifact with `rows` rows,
/// extrapolated from two probe encodings. The canonical layout pads each
/// array to the 64-byte alignment boundary, so byte growth is linear in
/// rows whenever `rows` is a multiple of 16 (scales: 4 B/row, codes:
/// `cols` B/row for i8) — which probes, verification size, and the
/// serving-scale targets all are. A third probe asserts the slope.
fn section_bytes(mode: QuantMode, kind: SectionKind, cols: usize, rows: usize) -> (usize, usize) {
    assert_eq!(rows % 16, 0, "extrapolation needs 16-row alignment");
    let probe = |r: usize| {
        let m = hashed_matrix(r, cols, 0.5, derive_seed(SEED, 0x5EC7));
        QuantArtifact::quantize_parts(mode, &[(kind, &m)]).payload_bytes()
    };
    let b1 = probe(1024);
    let b2 = probe(2048);
    let per_row = (b2 - b1) / 1024;
    let overhead = b1 - per_row * 1024;
    assert_eq!(
        probe(3072),
        overhead + per_row * 3072,
        "section layout is not linear in rows; cannot extrapolate"
    );
    (per_row, overhead + per_row * rows)
}

/// Table-1 KPIs of one quantized mode next to its f32 drift.
struct ModeDrift {
    kpis: Kpis,
    urr_drift: f64,
    nrr_drift: f64,
    payload_bytes: usize,
}

/// Deterministic (timing-free) outputs of the smoke scenario.
struct SmokeReport {
    users: usize,
    books: usize,
    factors: usize,
    f32_kpis: Kpis,
    /// f32 bytes of the two factor matrices the artifact replaces.
    f32_factor_bytes: usize,
    i8: ModeDrift,
    f16: ModeDrift,
}

/// Trains the Medium-preset BPR model, quantizes it both ways, and
/// evaluates Table-1 KPIs through the exact and quantized scorers.
fn run_smoke() -> SmokeReport {
    let harness = Harness::generate(derive_seed(SEED, 0x7A11), Preset::Medium);
    let train = &harness.split.train;
    let mut bpr = Bpr::new(BprConfig {
        epochs: 8,
        seed: derive_seed(SEED, 0xB9),
        ..BprConfig::default()
    });
    bpr.fit(train);
    let cases = harness.test_cases();
    let f32_kpis = evaluate(&bpr, &cases, K);
    let model = bpr.model().expect("trained model");
    let factors = model.user_factors.cols();
    let f32_factor_bytes =
        4 * (model.user_factors.rows() * factors + model.item_factors.rows() * factors);
    let drift = |mode: QuantMode| {
        let artifact = QuantArtifact::quantize(mode, model, None);
        let rec = QuantRecommender::new(&artifact, train);
        let kpis = evaluate(&rec, &cases, K);
        ModeDrift {
            kpis,
            urr_drift: (kpis.urr - f32_kpis.urr).abs(),
            nrr_drift: (kpis.nrr - f32_kpis.nrr).abs(),
            payload_bytes: artifact.payload_bytes(),
        }
    };
    SmokeReport {
        users: train.n_users(),
        books: train.n_books(),
        factors,
        f32_kpis,
        f32_factor_bytes,
        i8: drift(QuantMode::I8),
        f16: drift(QuantMode::F16),
    }
}

/// Renders the smoke section — the byte-stable part the gate recomputes.
fn smoke_json(smoke: &SmokeReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  \"smoke\": {{");
    let _ = writeln!(s, "    \"preset\": \"medium\",");
    let _ = writeln!(s, "    \"users\": {},", smoke.users);
    let _ = writeln!(s, "    \"books\": {},", smoke.books);
    let _ = writeln!(s, "    \"factors\": {},", smoke.factors);
    let _ = writeln!(s, "    \"k\": {K},");
    let _ = writeln!(s, "    \"f32_urr\": {:.6},", smoke.f32_kpis.urr);
    let _ = writeln!(s, "    \"f32_nrr\": {:.6},", smoke.f32_kpis.nrr);
    let _ = writeln!(s, "    \"i8_urr\": {:.6},", smoke.i8.kpis.urr);
    let _ = writeln!(s, "    \"i8_nrr\": {:.6},", smoke.i8.kpis.nrr);
    let _ = writeln!(s, "    \"i8_urr_drift\": {:.6},", smoke.i8.urr_drift);
    let _ = writeln!(s, "    \"i8_nrr_drift\": {:.6},", smoke.i8.nrr_drift);
    let _ = writeln!(s, "    \"f16_urr_drift\": {:.6},", smoke.f16.urr_drift);
    let _ = writeln!(s, "    \"f16_nrr_drift\": {:.6},", smoke.f16.nrr_drift);
    let _ = writeln!(s, "    \"f32_factor_bytes\": {},", smoke.f32_factor_bytes);
    let _ = writeln!(s, "    \"i8_payload_bytes\": {},", smoke.i8.payload_bytes);
    let _ = writeln!(s, "    \"f16_payload_bytes\": {}", smoke.f16.payload_bytes);
    let _ = write!(s, "  }}");
    s
}

/// Scale-dependent knobs of the full (serving-scale) scenario.
struct FullScenario {
    users: usize,
    books: usize,
    factor_dim: usize,
    embed_dim: usize,
    /// Distinct queries timed per repetition.
    queries: usize,
    /// Best-of repetitions for each matvec timing.
    reps: usize,
}

/// Results of the full scenario.
struct FullReport {
    f32_mb: f64,
    i8_mb: f64,
    memory_ratio: f64,
    bytes_per_user: usize,
    f32_matvec_ms: f64,
    i8_matvec_ms: f64,
    matvec_speedup: f64,
}

/// Best-of-`reps` milliseconds per matvec for `f` run over all queries.
fn time_ms_per_matvec(reps: usize, queries: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let ms = t0.elapsed().as_secs_f64() * 1e3 / queries as f64;
        if ms < best {
            best = ms;
        }
    }
    best
}

fn run_full(sc: &FullScenario) -> FullReport {
    // Real encodings for everything book-sized; exact extrapolation for
    // the user-factor section (4.3M f32 rows would cost >1 GiB just to
    // measure a byte count the layout already determines).
    let items = hashed_matrix(sc.books, sc.factor_dim, 0.3, derive_seed(SEED, 1));
    let embeds = hashed_matrix(sc.books, sc.embed_dim, 0.3, derive_seed(SEED, 2));
    let artifact = QuantArtifact::quantize_parts(
        QuantMode::I8,
        &[
            (SectionKind::ItemFactors, &items),
            (SectionKind::Embeddings, &embeds),
        ],
    );
    let (bytes_per_user, user_bytes) = section_bytes(
        QuantMode::I8,
        SectionKind::UserFactors,
        sc.factor_dim,
        sc.users,
    );
    let i8_bytes = user_bytes + artifact.payload_bytes();
    let f32_bytes =
        4 * (sc.users * sc.factor_dim + sc.books * sc.factor_dim + sc.books * sc.embed_dim);
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);

    // Matvec throughput over the item-factor matrix: the shape of both
    // the rank stage (score every pooled candidate for one user) and the
    // QuantRecommender full scan.
    let qi = artifact.item_factors().expect("item section present");
    let queries = hashed_matrix(sc.queries, sc.factor_dim, 0.3, derive_seed(SEED, 3));
    let quantized: Vec<QuantQuery> = (0..sc.queries)
        .map(|q| QuantQuery::quantize(QuantMode::I8, queries.row(q)))
        .collect();
    let mut out = Vec::with_capacity(sc.books);
    let f32_matvec_ms = time_ms_per_matvec(sc.reps, sc.queries, || {
        for q in 0..sc.queries {
            items.matvec_into(queries.row(q), &mut out);
            black_box(&out);
        }
    });
    let i8_matvec_ms = time_ms_per_matvec(sc.reps, sc.queries, || {
        for qq in &quantized {
            qi.matvec_into(&qq.as_row(), &mut out);
            black_box(&out);
        }
    });

    FullReport {
        f32_mb: mb(f32_bytes),
        i8_mb: mb(i8_bytes),
        memory_ratio: f32_bytes as f64 / i8_bytes as f64,
        bytes_per_user,
        f32_matvec_ms,
        i8_matvec_ms,
        matvec_speedup: f32_matvec_ms / i8_matvec_ms,
    }
}

/// Extracts `"key": <number>` from the named JSON section. Hand-rolled on
/// purpose: the report is machine-written with a fixed shape and the
/// workspace carries no JSON dependency.
fn extract(report: &str, section: &str, key: &str) -> Option<f64> {
    let sec = report.find(&format!("\"{section}\""))?;
    let tail = &report[sec..];
    let at = tail.find(&format!("\"{key}\""))?;
    let after = tail[at..].find(':')? + at + 1;
    let rest = tail[after..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Largest acceptable |URR or NRR drift| between f32 and quantized
/// scoring — the Table-1 accuracy contract of serving from the artifact.
const MAX_KPI_DRIFT: f64 = 5e-3;

fn run_gate(gate_path: &str, smoke: &SmokeReport, smoke_block: &str) -> Result<(), String> {
    let committed =
        std::fs::read_to_string(gate_path).map_err(|e| format!("cannot read {gate_path}: {e}"))?;
    if !committed.contains(smoke_block) {
        return Err(format!(
            "smoke section drifted from {gate_path}; quantization semantics changed — \
             regenerate with `quant-bench --out {gate_path}` (full run) and review the diff"
        ));
    }
    for (label, d) in [("i8", &smoke.i8), ("f16", &smoke.f16)] {
        if d.urr_drift > MAX_KPI_DRIFT || d.nrr_drift > MAX_KPI_DRIFT {
            return Err(format!(
                "{label} KPI drift (urr {:.6}, nrr {:.6}) above the {MAX_KPI_DRIFT} bound",
                d.urr_drift, d.nrr_drift
            ));
        }
    }
    let ratio = extract(&committed, "full", "memory_ratio")
        .ok_or_else(|| format!("{gate_path}: missing full.memory_ratio"))?;
    let speedup = extract(&committed, "full", "matvec_speedup")
        .ok_or_else(|| format!("{gate_path}: missing full.matvec_speedup"))?;
    if ratio < 3.5 {
        return Err(format!("full.memory_ratio {ratio} below the 3.5x floor"));
    }
    if speedup < 1.2 {
        return Err(format!(
            "full.matvec_speedup {speedup} below the 1.2x floor"
        ));
    }
    println!(
        "gate {gate_path}: smoke section byte-identical, KPI drift <= {MAX_KPI_DRIFT}, \
         memory ratio {ratio}x >= 3.5, matvec speedup {speedup}x >= 1.2"
    );
    Ok(())
}

fn main() {
    let mut smoke_only = false;
    let mut out_path: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke_only = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--gate" => match it.next() {
                Some(p) => gate = Some(p),
                None => {
                    eprintln!("error: --gate needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: quant-bench [--smoke] [--out FILE] [--gate FILE]");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("quant-bench: smoke scenario (medium harness, Table-1 KPI drift)");
    let smoke = run_smoke();
    let smoke_block = smoke_json(&smoke);
    eprintln!(
        "  f32 urr {:.4} nrr {:.4}; i8 drift urr {:.6} nrr {:.6}; f16 drift urr {:.6} nrr {:.6}",
        smoke.f32_kpis.urr,
        smoke.f32_kpis.nrr,
        smoke.i8.urr_drift,
        smoke.i8.nrr_drift,
        smoke.f16.urr_drift,
        smoke.f16.nrr_drift
    );

    let mut report = String::from("{\n  \"bench\": \"quant_artifacts\",\n");
    if smoke_only {
        report.push_str(&smoke_block);
        report.push_str("\n}\n");
    } else {
        let (users, books) = Preset::PaperX100.serving_scale();
        let sc = FullScenario {
            users,
            books,
            factor_dim: 64,
            embed_dim: 256,
            queries: 16,
            reps: 5,
        };
        eprintln!(
            "quant-bench: full scenario ({} users x {} factors, {} books x {}-dim embeddings)",
            sc.users, sc.factor_dim, sc.books, sc.embed_dim
        );
        let full = run_full(&sc);
        eprintln!(
            "  f32 {:.1} MB vs i8 {:.1} MB ({:.2}x, {} B/user); matvec f32 {:.3} ms vs i8 {:.3} ms ({:.2}x)",
            full.f32_mb,
            full.i8_mb,
            full.memory_ratio,
            full.bytes_per_user,
            full.f32_matvec_ms,
            full.i8_matvec_ms,
            full.matvec_speedup
        );
        let _ = writeln!(report, "  \"full\": {{");
        let _ = writeln!(report, "    \"users\": {},", sc.users);
        let _ = writeln!(report, "    \"books\": {},", sc.books);
        let _ = writeln!(report, "    \"factor_dim\": {},", sc.factor_dim);
        let _ = writeln!(report, "    \"embed_dim\": {},", sc.embed_dim);
        let _ = writeln!(report, "    \"f32_resident_mb\": {:.1},", full.f32_mb);
        let _ = writeln!(report, "    \"i8_resident_mb\": {:.1},", full.i8_mb);
        let _ = writeln!(report, "    \"memory_ratio\": {:.2},", full.memory_ratio);
        let _ = writeln!(report, "    \"bytes_per_user\": {},", full.bytes_per_user);
        let _ = writeln!(report, "    \"f32_matvec_ms\": {:.3},", full.f32_matvec_ms);
        let _ = writeln!(report, "    \"i8_matvec_ms\": {:.3},", full.i8_matvec_ms);
        let _ = writeln!(report, "    \"matvec_speedup\": {:.2}", full.matvec_speedup);
        let _ = writeln!(report, "  }},");
        report.push_str(&smoke_block);
        report.push_str("\n}\n");
    }

    if let Some(path) = out_path.as_deref().or(if smoke_only {
        None
    } else {
        Some("BENCH_quant.json")
    }) {
        std::fs::write(path, &report).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("quant-bench: wrote {path}");
    }

    if let Some(gate_path) = gate {
        if let Err(e) = run_gate(&gate_path, &smoke, &smoke_block) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
