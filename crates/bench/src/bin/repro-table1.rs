//! Regenerates Table 1: KPIs of every recommender at k = 20.

use rm_bench::{section, Options};
use rm_eval::bootstrap::{paired_difference_ci, Metric, PerUserStats};
use rm_eval::experiments::table1;

fn main() {
    let opts = Options::from_env();
    let t0 = std::time::Instant::now();
    let harness = opts.harness();
    println!(
        "corpus: {} books, {} users, {} readings ({:?}, seed {})",
        harness.corpus.n_books(),
        harness.corpus.n_users(),
        harness.corpus.n_readings(),
        opts.preset,
        opts.seed
    );
    let suite = opts.suite(&harness);
    let result = table1::run(&harness, &suite, opts.bpr_config(), 20);
    section("Table 1 — KPIs at k = 20");
    print!("{}", result.table().render());
    opts.write_csv("table1.csv", &result.table().to_csv());
    // Full-precision sibling of table1.csv: the rendered table rounds to two
    // decimals, which is too coarse to diff KPIs across kernel changes.
    let mut precise = String::from("name,URR,NRR,P,R,FR\n");
    for row in &result.rows {
        use std::fmt::Write as _;
        let _ = writeln!(
            precise,
            "{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            row.name,
            row.kpis.urr,
            row.kpis.nrr,
            row.kpis.precision,
            row.kpis.recall,
            row.kpis.first_rank
        );
    }
    opts.write_csv("table1_precise.csv", &precise);

    // Paired bootstrap: is the CF > CB gap solid on this corpus?
    let cases = harness.test_cases();
    let bpr = PerUserStats::collect(&suite.bpr, &cases, 20);
    let closest = PerUserStats::collect(&suite.closest, &cases, 20);
    for metric in [Metric::Urr, Metric::Nrr] {
        let ci = paired_difference_ci(&bpr, &closest, metric, 1000, opts.seed, 0.95);
        println!(
            "BPR − Closest {metric:?}: {:+.3} [{:+.3}, {:+.3}] ({})",
            ci.point,
            ci.lo,
            ci.hi,
            if ci.excludes_zero() {
                "significant at 95%"
            } else {
                "not significant"
            }
        );
    }
    println!("total {:.1?}", t0.elapsed());
}
