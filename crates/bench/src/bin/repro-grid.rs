//! Regenerates the §6 grid search: latent factors × learning rate by
//! validation URR.

use rm_bench::{section, Options};
use rm_core::grid::GridSearch;
use rm_eval::experiments::grid;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let result = grid::run(&harness, &GridSearch::default(), &opts.bpr_config(), 20);
    section("Grid search — validation URR per (L, learning rate)");
    print!("{}", result.table().render());
    println!(
        "best: L = {}, learning rate = {}",
        result.outcome.best.factors, result.outcome.best.learning_rate
    );
    opts.write_csv("grid_search.csv", &result.to_csv());
}
