//! Regenerates Fig. 5: Closest Items KPIs by metadata-summary composition.

use rm_bench::{section, Options};
use rm_eval::experiments::fig5;

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let result = fig5::run(&harness, &fig5::paper_variants(), 20);
    section("Fig. 5 — KPIs by metadata summary (k = 20)");
    print!("{}", result.table().render());
    opts.write_csv("fig5_metadata.csv", &result.to_csv());
}
