//! Diagnostic: Fig. 4 top-bin BPR NRR as a function of training epochs.
use rm_bench::Options;
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::Recommender;
use rm_eval::groups::{equal_population_bins, evaluate_by_bin};

fn main() {
    let opts = Options::from_env();
    let harness = opts.harness();
    let cases = harness.test_cases();
    let hist = harness.test_case_histories();
    let bins = equal_population_bins(&hist, 4);
    for epochs in [3usize, 6, 10, 15] {
        let mut bpr = Bpr::new(BprConfig {
            epochs,
            ..opts.bpr_config()
        });
        bpr.fit(&harness.split.train);
        let binned = evaluate_by_bin(&bpr, &cases, &hist, &bins, 20);
        let nrrs: Vec<String> = binned
            .iter()
            .map(|b| format!("{:.2}", b.kpis.nrr))
            .collect();
        println!("epochs {epochs:>2}: NRR by bin = {}", nrrs.join("  "));
    }
}
