//! Shared plumbing for the `repro-*` binaries: CLI parsing, output-file
//! handling, and the standard experiment context.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! repro-<exp> [--preset paper|medium|tiny] [--seed N] [--out DIR] [--quick]
//! ```
//!
//! `--quick` switches to the medium preset with a reduced-epoch BPR so a
//! full repro pass stays in CI-friendly time; `--out` (default
//! `experiments/out`) receives one CSV per artefact next to the printed
//! table.

use rm_core::bpr::BprConfig;
use rm_datagen::Preset;
use rm_dataset::summary::SummaryFields;
use rm_eval::harness::{Harness, TrainedSuite};
use std::path::{Path, PathBuf};

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Corpus scale.
    pub preset: Preset,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV artefacts.
    pub out: PathBuf,
}

impl Options {
    /// Parses `std::env::args`, exiting with usage on error.
    #[must_use]
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(Some(opts)) => opts,
            Ok(None) => usage(""),
            Err(e) => usage(&e),
        }
    }

    /// Parses an argument list. `Ok(None)` means help was requested.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid flag or value.
    pub fn parse(args: &[String]) -> Result<Option<Self>, String> {
        let mut preset = Preset::Paper;
        let mut seed = 42u64;
        let mut out = PathBuf::from("experiments/out");
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--preset" => {
                    preset = match it.next().map(String::as_str) {
                        Some("paper") => Preset::Paper,
                        Some("medium") => Preset::Medium,
                        Some("tiny") => Preset::Tiny,
                        other => return Err(format!("bad --preset {other:?}")),
                    }
                }
                "--quick" => preset = Preset::Medium,
                "--seed" => {
                    seed = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| "bad --seed".to_owned())?;
                }
                "--out" => {
                    out = it
                        .next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "bad --out".to_owned())?;
                }
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(Some(Self { preset, seed, out }))
    }

    /// The paper's operating point for BPR, scaled to the preset (fewer
    /// epochs below paper scale keep quick runs quick).
    #[must_use]
    pub fn bpr_config(&self) -> BprConfig {
        let epochs = match self.preset {
            Preset::PaperX100 | Preset::Paper => 15,
            Preset::Medium => 12,
            Preset::Tiny => 8,
        };
        BprConfig {
            epochs,
            seed: rm_util::rng::derive_seed_str(self.seed, "bpr"),
            ..BprConfig::default()
        }
    }

    /// Builds the experiment context (generates the corpus and the split).
    #[must_use]
    pub fn harness(&self) -> Harness {
        Harness::generate(self.seed, self.preset)
    }

    /// Trains the standard suite on the harness.
    #[must_use]
    pub fn suite(&self, harness: &Harness) -> TrainedSuite {
        TrainedSuite::train(harness, self.bpr_config(), SummaryFields::BEST, self.seed)
    }

    /// Writes a CSV artefact into the output directory.
    pub fn write_csv(&self, name: &str, contents: &str) {
        write_artifact(&self.out, name, contents);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: repro-<exp> [--preset paper|medium|tiny] [--quick] [--seed N] [--out DIR]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Writes `contents` to `dir/name`, creating the directory.
pub fn write_artifact(dir: &Path, name: &str, contents: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Prints a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Shared setup for the Criterion benches: a Medium-scale harness and a
/// trained suite (built once per bench binary).
#[must_use]
pub fn bench_context() -> (Harness, TrainedSuite) {
    let opts = Options {
        preset: Preset::Medium,
        seed: 42,
        out: PathBuf::from("experiments/out"),
    };
    let harness = opts.harness();
    let suite = opts.suite(&harness);
    (harness, suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_apply() {
        let o = Options::parse(&[]).unwrap().unwrap();
        assert_eq!(o.preset, Preset::Paper);
        assert_eq!(o.seed, 42);
        assert_eq!(o.out, PathBuf::from("experiments/out"));
    }

    #[test]
    fn flags_parse() {
        let o = Options::parse(&args(&[
            "--preset", "tiny", "--seed", "7", "--out", "/tmp/x",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(o.preset, Preset::Tiny);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn quick_is_medium() {
        let o = Options::parse(&args(&["--quick"])).unwrap().unwrap();
        assert_eq!(o.preset, Preset::Medium);
    }

    #[test]
    fn help_returns_none() {
        assert!(Options::parse(&args(&["--help"])).unwrap().is_none());
    }

    #[test]
    fn errors_are_specific() {
        assert!(Options::parse(&args(&["--preset", "huge"]))
            .unwrap_err()
            .contains("preset"));
        assert!(Options::parse(&args(&["--seed", "abc"]))
            .unwrap_err()
            .contains("seed"));
        assert!(Options::parse(&args(&["--wat"]))
            .unwrap_err()
            .contains("--wat"));
        assert!(Options::parse(&args(&["--seed"]))
            .unwrap_err()
            .contains("seed"));
    }

    #[test]
    fn bpr_config_scales_epochs_with_preset() {
        let paper = Options::parse(&[]).unwrap().unwrap().bpr_config();
        let tiny = Options::parse(&args(&["--preset", "tiny"]))
            .unwrap()
            .unwrap()
            .bpr_config();
        assert!(paper.epochs > tiny.epochs);
        assert_eq!(paper.factors, 20);
    }
}
