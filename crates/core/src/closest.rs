//! The *Closest Items* content-based recommender (Section 4, Eq. 1).
//!
//! Score of an unseen book `b` for user `u`:
//!
//! ```text
//! s_b = ( Σ_{i ∈ N_u} s_{b,i} ) / |N_u|
//! ```
//!
//! where `s_{b,i}` is the cosine similarity between the *metadata summary*
//! embeddings of books `b` and `i`. Because all stored embeddings are unit
//! vectors, the average cosine equals the dot product with the (unnormalised)
//! mean of the user's read-book embeddings, so recommendation is one
//! matrix–vector product over the catalogue — the centroid fast path. An
//! exact pairwise scorer is kept for verification ([`ClosestItems::score`]
//! uses the same mean, and tests compare against brute force).

use crate::{rank_by_scores, rank_by_scores_into, Recommender};
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::{build_summaries, SummaryFields};
use rm_dataset::Corpus;
use rm_embed::{EmbeddingStore, EncoderConfig, SemanticEncoder};

/// Content-based recommender over metadata-summary embeddings.
#[derive(Debug, Clone)]
pub struct ClosestItems {
    store: EmbeddingStore,
    fields: SummaryFields,
    train: Option<Interactions>,
}

impl ClosestItems {
    /// Builds the recommender from a corpus: renders each book's metadata
    /// summary for `fields`, fits the encoder's IDF model on those
    /// summaries, and encodes the catalogue.
    #[must_use]
    pub fn from_corpus(
        corpus: &Corpus,
        fields: SummaryFields,
        encoder_config: EncoderConfig,
    ) -> Self {
        let summaries = build_summaries(corpus, fields);
        let encoder = SemanticEncoder::fit(encoder_config, &summaries);
        let store = EmbeddingStore::encode_all(&encoder, &summaries);
        Self {
            store,
            fields,
            train: None,
        }
    }

    /// Wraps a pre-built embedding store (rows must align with book
    /// indices).
    #[must_use]
    pub fn from_store(store: EmbeddingStore, fields: SummaryFields) -> Self {
        Self {
            store,
            fields,
            train: None,
        }
    }

    /// The metadata fields this instance embeds.
    #[must_use]
    pub fn fields(&self) -> SummaryFields {
        self.fields
    }

    /// The catalogue embedding store.
    #[must_use]
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The fitted training matrix, or `None` before [`Recommender::fit`].
    /// Request-path methods degrade through this instead of panicking: an
    /// unfitted model on the serve path answers empty rather than
    /// poisoning a worker.
    fn fitted(&self) -> Option<&Interactions> {
        self.train.as_ref()
    }

    /// The user's Eq. 1 query vector: mean of read-book embeddings, or
    /// `None` for a user with no training readings.
    fn query(&self, user: UserIdx) -> Option<Vec<f32>> {
        let mut buf = Vec::new();
        self.query_into(user, &mut buf).then_some(buf)
    }

    /// [`ClosestItems::query`] into a caller-provided buffer; returns
    /// `false` (buffer untouched) for a user with no training readings.
    fn query_into(&self, user: UserIdx, buf: &mut Vec<f32>) -> bool {
        let Some(train) = self.fitted() else {
            return false;
        };
        let seen = train.seen(user);
        if seen.is_empty() {
            return false;
        }
        self.store.mean_embedding_into(seen, buf);
        true
    }

    /// Top-`k` books for a reader who is not in the training matrix, given
    /// only a reading history — content-based serving needs no fold-in at
    /// all, the centroid is computable from any history. Usable before
    /// [`Recommender::fit`] (only the embedding store is consulted).
    ///
    /// # Panics
    ///
    /// Panics if the history references a book outside the catalogue.
    #[must_use]
    pub fn recommend_for_history(&self, seen: &[u32], k: usize) -> Vec<u32> {
        let mut out = Vec::new();
        self.recommend_for_history_into(seen, k, &mut out);
        out
    }

    /// [`ClosestItems::recommend_for_history`] refilling a caller-owned
    /// ranking buffer, so kiosk-style serving loops rank repeat queries
    /// without per-call allocation of the result.
    ///
    /// # Panics
    ///
    /// Panics if the history references a book outside the catalogue.
    pub fn recommend_for_history_into(&self, seen: &[u32], k: usize, out: &mut Vec<u32>) {
        out.clear();
        if seen.is_empty() {
            return;
        }
        assert!(
            seen.iter().all(|&b| (b as usize) < self.store.len()),
            "history references an unknown book"
        );
        let query = self.store.mean_embedding(seen);
        let sims = self.store.similarities(&query);
        let mut sorted_seen = seen.to_vec();
        sorted_seen.sort_unstable();
        sorted_seen.dedup();
        let mut top = rm_util::TopK::new(1);
        rank_by_scores_into(
            self.store.len(),
            &sorted_seen,
            k,
            |b| sims[b as usize],
            &mut top,
            out,
        );
    }
}

impl Recommender for ClosestItems {
    fn name(&self) -> &str {
        "Closest Items"
    }

    fn fit(&mut self, train: &Interactions) {
        assert_eq!(
            train.n_books(),
            self.store.len(),
            "training matrix and embedding store disagree on catalogue size"
        );
        self.train = Some(train.clone());
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        match self.query(user) {
            Some(q) => rm_sparse::vecops::dot(&q, self.store.embedding(book.index())),
            None => 0.0,
        }
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let Some((q, train)) = self.query(user).zip(self.fitted()) else {
            return Vec::new();
        };
        let sims = self.store.similarities(&q);
        rank_by_scores(train.n_books(), train.seen(user), k, |b| sims[b as usize])
    }

    fn recommend_batch_into(&self, users: &[UserIdx], k: usize, out: &mut Vec<Vec<u32>>) {
        let Some(train) = self.fitted() else {
            out.clear();
            out.resize_with(users.len(), Vec::new);
            return;
        };
        out.resize_with(users.len(), Vec::new);
        // All scratch — the Eq. 1 centroid, the catalogue-sized similarity
        // buffer, the TopK heap, and the caller's ranking pool — is shared
        // across the batch; per user nothing is allocated.
        let mut query = Vec::with_capacity(self.store.dim());
        let mut sims = Vec::with_capacity(self.store.len());
        let mut top = rm_util::TopK::new(1);
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            if !self.query_into(u, &mut query) {
                slot.clear();
                continue;
            }
            self.store.similarities_into(&query, &mut sims);
            rank_by_scores_into(
                train.n_books(),
                train.seen(u),
                k,
                |b| sims[b as usize],
                &mut top,
                slot,
            );
        }
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        let n_books = self.fitted().map_or(0, |t| t.n_books());
        self.recommend(user, n_books)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::corpus::{Book, Source, User};
    use rm_dataset::genre::{AggGenreId, GenreModel};
    use rm_dataset::ids::{AnobiiItemId, BctBookId, Day};

    fn book(title: &str, author: &str, genre: u8) -> Book {
        Book {
            title: title.to_owned(),
            authors: vec![author.to_owned()],
            plot: format!("la storia di {title}"),
            keywords: vec!["libro".to_owned()],
            genres: vec![(AggGenreId(genre), 1.0)],
            bct_id: BctBookId(0),
            anobii_id: AnobiiItemId(0),
        }
    }

    /// 4 books: 0 & 1 share author+genre; 2 shares genre only; 3 is
    /// unrelated.
    fn corpus() -> Corpus {
        Corpus {
            books: vec![
                book("Delitto al Castello", "Anna Neri", 0),
                book("Morte sul Fiume", "Anna Neri", 0),
                book("Ombra Lunga", "Carlo Verdi", 0),
                book("Draghi di Cristallo", "Luisa Blu", 7),
            ],
            users: vec![User {
                source: Source::Bct,
                raw_id: 0,
            }],
            readings: vec![rm_dataset::corpus::Reading {
                user: UserIdx(0),
                book: BookIdx(0),
                date: Day(0),
            }],
            genre_model: GenreModel::identity(),
        }
    }

    fn fitted(fields: SummaryFields) -> ClosestItems {
        let c = corpus();
        let train = Interactions::from_pairs(1, 4, &[(UserIdx(0), BookIdx(0))]);
        let mut ci = ClosestItems::from_corpus(&c, fields, EncoderConfig::default());
        ci.fit(&train);
        ci
    }

    #[test]
    fn same_author_ranks_first() {
        let ci = fitted(SummaryFields::BEST);
        let recs = ci.recommend(UserIdx(0), 3);
        assert_eq!(recs[0], 1, "same-author book should rank first: {recs:?}");
        // Same-genre book beats the unrelated one.
        assert_eq!(recs[1], 2);
        assert_eq!(recs[2], 3);
    }

    #[test]
    fn seen_books_never_recommended() {
        let ci = fitted(SummaryFields::ALL);
        let recs = ci.rank_all(UserIdx(0));
        assert!(!recs.contains(&0));
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn centroid_matches_bruteforce_average() {
        // Multi-book history: the fast path must equal Eq. 1 exactly.
        let c = corpus();
        let train =
            Interactions::from_pairs(1, 4, &[(UserIdx(0), BookIdx(0)), (UserIdx(0), BookIdx(3))]);
        let mut ci = ClosestItems::from_corpus(&c, SummaryFields::ALL, EncoderConfig::default());
        ci.fit(&train);
        for b in [1u32, 2] {
            let fast = ci.score(UserIdx(0), BookIdx(b));
            let brute: f32 = [0u32, 3]
                .iter()
                .map(|&i| ci.store().similarity(b as usize, i as usize))
                .sum::<f32>()
                / 2.0;
            assert!((fast - brute).abs() < 1e-5, "book {b}: {fast} vs {brute}");
        }
    }

    #[test]
    fn empty_history_yields_empty_recommendations() {
        let c = corpus();
        let train = Interactions::from_pairs(2, 4, &[(UserIdx(1), BookIdx(0))]);
        let mut ci = ClosestItems::from_corpus(&c, SummaryFields::ALL, EncoderConfig::default());
        ci.fit(&train);
        assert!(ci.recommend(UserIdx(0), 3).is_empty());
        assert_eq!(ci.score(UserIdx(0), BookIdx(1)), 0.0);
    }

    #[test]
    fn title_only_misses_author_signal() {
        let title_only = fitted(SummaryFields::TITLE);
        let authors = fitted(SummaryFields::AUTHORS);
        // With authors, book 1 (same author) scores far above book 3;
        // with titles only the two share no tokens, so the gap collapses.
        let gap =
            |ci: &ClosestItems| ci.score(UserIdx(0), BookIdx(1)) - ci.score(UserIdx(0), BookIdx(3));
        assert!(gap(&authors) > gap(&title_only) + 0.3);
    }

    #[test]
    fn history_serving_matches_fitted_user() {
        // A fresh reader with the same history as user 0 gets the same
        // recommendations — without any training matrix involved.
        let ci = fitted(SummaryFields::BEST);
        let unfitted =
            ClosestItems::from_corpus(&corpus(), SummaryFields::BEST, EncoderConfig::default());
        assert_eq!(
            unfitted.recommend_for_history(&[0], 3),
            ci.recommend(UserIdx(0), 3)
        );
        assert!(unfitted.recommend_for_history(&[], 3).is_empty());
    }

    #[test]
    fn batch_matches_single_calls() {
        // User 1 has an empty history: the batch entry must stay empty
        // without disturbing its neighbours' shared buffer.
        let c = corpus();
        let train = Interactions::from_pairs(2, 4, &[(UserIdx(0), BookIdx(0))]);
        let mut ci = ClosestItems::from_corpus(&c, SummaryFields::BEST, EncoderConfig::default());
        ci.fit(&train);
        let users = [UserIdx(0), UserIdx(1), UserIdx(0)];
        for k in [1usize, 3, usize::MAX] {
            let batch = ci.recommend_batch(&users, k);
            assert_eq!(batch.len(), users.len());
            for (&u, got) in users.iter().zip(&batch) {
                assert_eq!(got, &ci.recommend(u, k), "user {u:?} k {k}");
            }
        }
    }

    #[test]
    fn batch_into_reuses_ranking_pool() {
        let c = corpus();
        let train = Interactions::from_pairs(2, 4, &[(UserIdx(0), BookIdx(0))]);
        let mut ci = ClosestItems::from_corpus(&c, SummaryFields::BEST, EncoderConfig::default());
        ci.fit(&train);
        let users = [UserIdx(0), UserIdx(0), UserIdx(0)];
        let mut pool: Vec<Vec<u32>> = Vec::new();
        ci.recommend_batch_into(&users, 3, &mut pool);
        let ptrs: Vec<*const u32> = pool.iter().map(|v| v.as_ptr()).collect();
        let first = pool.clone();
        ci.recommend_batch_into(&users, 3, &mut pool);
        assert_eq!(pool, first);
        for (i, v) in pool.iter().enumerate() {
            assert_eq!(v.as_ptr(), ptrs[i], "ranking buffer {i} reallocated");
        }
    }

    #[test]
    #[should_panic(expected = "catalogue size")]
    fn mismatched_store_panics() {
        let c = corpus();
        let train = Interactions::from_pairs(1, 9, &[]);
        let mut ci = ClosestItems::from_corpus(&c, SummaryFields::ALL, EncoderConfig::default());
        ci.fit(&train);
    }
}
