//! Bayesian Personalised Ranking matrix factorisation with WARP sampling
//! (Section 4, Eqs. 2–3; Rendle et al. 2012, Weston et al. 2011).
//!
//! The interaction matrix `I ∈ {0,1}^(U×B)` is factorised as `Ĩ = V·P` with
//! `V ∈ R^(U×L)`, `P ∈ R^(L×B)` (stored transposed, one row per book). The
//! pairwise objective prefers read books over unread ones; SGD pairs are
//! produced by the WARP scheme: for a positive `(u, i)`, unread books are
//! sampled until one outranks the positive within the margin, and the
//! update magnitude *decreases with the number of draws* — a violator found
//! immediately implies the positive is badly ranked and earns a full-size
//! step, a violator found after many draws earns a small one. The weight
//! is the WSABIE rank loss `Φ(rank̂) / Φ(B−1)` with `Φ(k) = Σ_{j≤k} 1/j`
//! and `rank̂ = ⌊(B−1)/trials⌋`, normalised so learning rates stay
//! comparable across catalogue sizes. A plain-BPR (sigmoid) update is
//! available for ablation via [`Loss::Bpr`].

use crate::{rank_by_scores, rank_by_scores_into, Recommender};
use rand::seq::SliceRandom;
use rand::RngExt;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_sparse::vecops::{dot, dot_ref};
use rm_sparse::DenseMatrix;
use rm_util::rng::SeedTree;

/// How WARP draws candidate negatives.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NegativeSampling {
    /// Uniform over the catalogue (the textbook WARP choice).
    #[default]
    Uniform,
    /// Popularity-weighted: `P(j) ∝ readings(j)^alpha`. Focuses the
    /// pairwise comparisons on plausible negatives (popular books the
    /// user skipped), a standard implicit-feedback refinement.
    Popularity {
        /// Popularity exponent (0 = uniform over read books, 1 = raw
        /// popularity). Typical values 0.3–0.75.
        alpha: f64,
    },
}

/// Which pairwise update rule SGD applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Loss {
    /// WARP: hinge with rank-estimate weighting (the paper's choice).
    #[default]
    Warp,
    /// Plain BPR: sigmoid of the score difference, one negative per
    /// positive. Kept for the ablation benchmarks.
    Bpr,
}

/// BPR hyper-parameters. Defaults are the paper's selected operating point
/// (L = 20 latent factors, learning rate 0.2).
#[derive(Debug, Clone, PartialEq)]
pub struct BprConfig {
    /// Latent factors `L`.
    pub factors: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Passes over the positive interactions.
    pub epochs: usize,
    /// L2 regularisation λ_V of the user factors.
    pub reg_user: f32,
    /// L2 regularisation λ_P of the item factors.
    pub reg_item: f32,
    /// WARP hinge margin.
    pub margin: f32,
    /// Maximum negative draws per positive before giving up.
    pub max_trials: usize,
    /// Update rule.
    pub loss: Loss,
    /// Negative-candidate distribution.
    pub negative_sampling: NegativeSampling,
    /// Std-dev of the Gaussian factor initialisation (the zero-mean prior
    /// of Eq. 3).
    pub init_scale: f32,
    /// RNG seed (init + sampling).
    pub seed: u64,
}

impl Default for BprConfig {
    fn default() -> Self {
        Self {
            factors: 20,
            learning_rate: 0.2,
            epochs: 15,
            reg_user: 1e-4,
            reg_item: 1e-4,
            margin: 1.0,
            max_trials: 30,
            loss: Loss::Warp,
            negative_sampling: NegativeSampling::Uniform,
            init_scale: 0.1,
            seed: 42,
        }
    }
}

/// The trained factors.
#[derive(Debug, Clone, PartialEq)]
pub struct BprModel {
    /// User factors `V` (users × L).
    pub user_factors: DenseMatrix,
    /// Item factors `Pᵀ` (books × L).
    pub item_factors: DenseMatrix,
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Positives for which a violating negative was found (an update
    /// happened).
    pub updates: usize,
    /// Mean negative draws per positive.
    pub mean_trials: f64,
}

/// The BPR recommender.
#[derive(Debug, Clone)]
pub struct Bpr {
    config: BprConfig,
    model: Option<BprModel>,
    train: Option<Interactions>,
    epoch_stats: Vec<EpochStats>,
}

impl Bpr {
    /// Creates an unfitted recommender.
    #[must_use]
    pub fn new(config: BprConfig) -> Self {
        assert!(config.factors > 0, "factors must be positive");
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(config.max_trials > 0, "max_trials must be positive");
        Self {
            config,
            model: None,
            train: None,
            epoch_stats: Vec::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BprConfig {
        &self.config
    }

    /// The trained model; `None` before [`Recommender::fit`].
    #[must_use]
    pub fn model(&self) -> Option<&BprModel> {
        self.model.as_ref()
    }

    /// Per-epoch telemetry of the last fit.
    #[must_use]
    pub fn epoch_stats(&self) -> &[EpochStats] {
        &self.epoch_stats
    }

    /// Installs a previously trained model (see [`crate::persist`])
    /// together with the interactions used for seen-book exclusion.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn install(&mut self, model: BprModel, train: &Interactions) {
        assert_eq!(
            model.user_factors.rows(),
            train.n_users(),
            "user count mismatch"
        );
        assert_eq!(
            model.item_factors.rows(),
            train.n_books(),
            "book count mismatch"
        );
        assert_eq!(
            model.user_factors.cols(),
            model.item_factors.cols(),
            "factor mismatch"
        );
        self.model = Some(model);
        self.train = Some(train.clone());
    }

    fn model_ref(&self) -> &BprModel {
        self.model.as_ref().expect("Bpr::fit not called")
    }

    /// Both fitted references, or `None` before [`Recommender::fit`] /
    /// [`Bpr::install`]. The request-path trait methods degrade through
    /// this instead of panicking: an unfitted model on the serve path
    /// answers empty rather than poisoning a worker (the loud
    /// `model_ref` stays for offline callers, where aborting on a
    /// missing fit is the right contract).
    fn fitted(&self) -> Option<(&BprModel, &Interactions)> {
        Some((self.model.as_ref()?, self.train.as_ref()?))
    }

    /// Folds a *new* user into the trained factor space without
    /// retraining: gradient ascent on the BPR objective over the user's
    /// history with the item factors frozen — the standard production
    /// answer to "a reader who joined after the nightly training walks up
    /// to the kiosk". Deterministic given the model and history.
    ///
    /// Returns the synthesised user factor (length L).
    ///
    /// # Panics
    ///
    /// Panics if the model is unfitted or `seen` contains an out-of-range
    /// book.
    #[must_use]
    pub fn fold_in_user(&self, seen: &[u32]) -> Vec<f32> {
        let model = self.model_ref();
        let n_books = model.item_factors.rows();
        let l = model.user_factors.cols();
        assert!(
            seen.iter().all(|&b| (b as usize) < n_books),
            "history references an unknown book"
        );
        let mut vu = vec![0.0f32; l];
        if seen.is_empty() {
            return vu;
        }
        // Warm start: mean of the history's item factors (the projection
        // a linear model would use), then a few BPR epochs against
        // deterministically-strided negatives.
        for &b in seen {
            rm_sparse::vecops::axpy(
                1.0 / seen.len() as f32,
                model.item_factors.row(b as usize),
                &mut vu,
            );
        }
        let seen_sorted: Vec<u32> = {
            let mut s = seen.to_vec();
            s.sort_unstable();
            s.dedup();
            s
        };
        // A reader who has seen the whole catalogue leaves no negatives
        // to rank against: the warm start is the best available answer.
        if seen_sorted.len() >= n_books {
            return vu;
        }
        let lr = self.config.learning_rate;
        let reg = self.config.reg_user;
        // Golden-ratio stride visits negatives in a scattered, seed-free,
        // deterministic order.
        let stride = ((n_books as f64 * 0.618_033_988_75) as usize).max(1);
        let mut j_cursor = 0usize;
        for _ in 0..self.config.epochs.max(5) {
            for &i in &seen_sorted {
                // Next unseen negative.
                let j = loop {
                    j_cursor = (j_cursor + stride) % n_books;
                    if seen_sorted.binary_search(&(j_cursor as u32)).is_err() {
                        break j_cursor;
                    }
                };
                let pi = model.item_factors.row(i as usize);
                let pj = model.item_factors.row(j);
                let x = dot(&vu, pi) - dot(&vu, pj);
                let g = (1.0 / (1.0 + f64::from(x).exp())) as f32;
                for f in 0..l {
                    vu[f] += lr * (g * (pi[f] - pj[f]) - reg * vu[f]);
                }
            }
        }
        vu
    }

    /// Top-`k` books for a user who is *not* in the training matrix, given
    /// only their reading history (fold-in serving).
    #[must_use]
    pub fn recommend_for_history(&self, seen: &[u32], k: usize) -> Vec<u32> {
        let model = self.model_ref();
        let vu = self.fold_in_user(seen);
        let scores = model.item_factors.matvec(&vu);
        let mut sorted_seen = seen.to_vec();
        sorted_seen.sort_unstable();
        sorted_seen.dedup();
        crate::rank_by_scores(model.item_factors.rows(), &sorted_seen, k, |b| {
            scores[b as usize]
        })
    }

    /// Harmonic number `Φ(k)` (exact below 32, asymptotic above).
    fn harmonic(k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k < 32 {
            (1..=k).map(|j| 1.0 / j as f64).sum()
        } else {
            let k = k as f64;
            k.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * k)
        }
    }
}

impl Recommender for Bpr {
    fn name(&self) -> &str {
        match self.config.loss {
            Loss::Warp => "BPR",
            Loss::Bpr => "BPR (sigmoid)",
        }
    }

    #[allow(clippy::too_many_lines)]
    fn fit(&mut self, train: &Interactions) {
        let n_users = train.n_users();
        let n_books = train.n_books();
        assert!(n_books >= 2, "BPR needs at least two books");
        let l = self.config.factors;
        let tree = SeedTree::new(self.config.seed);

        let mut init_rng = tree.child("init").rng();
        let mut user_factors =
            DenseMatrix::gaussian(n_users, l, self.config.init_scale, &mut init_rng);
        let mut item_factors =
            DenseMatrix::gaussian(n_books, l, self.config.init_scale, &mut init_rng);

        // Positive pairs.
        let mut positives: Vec<(u32, u32)> = Vec::with_capacity(train.nnz());
        for u in 0..n_users {
            for &b in train.seen(UserIdx(u as u32)) {
                positives.push((u as u32, b));
            }
        }

        let lr = self.config.learning_rate;
        let margin = self.config.margin;
        let reg_u = self.config.reg_user;
        let reg_i = self.config.reg_item;
        let phi_max = Self::harmonic(n_books - 1);
        let mut vu_old = vec![0.0f32; l];
        self.epoch_stats.clear();

        // Optional popularity-weighted negative sampler. Add-one smoothing
        // keeps never-read books reachable as negatives.
        let negative_table = match self.config.negative_sampling {
            NegativeSampling::Uniform => None,
            NegativeSampling::Popularity { alpha } => {
                let counts = train.book_counts();
                let weights: Vec<f64> = counts
                    .iter()
                    .map(|&c| ((c + 1) as f64).powf(alpha))
                    .collect();
                Some(rm_util::sample::AliasTable::new(&weights))
            }
        };

        // O(1) negative-membership test for heavy readers. Every draw asks
        // "has u read j?"; the binary search over a power user's history is
        // the dominant per-draw cost, so users past the threshold get a
        // bitset (one load + mask). Light users keep the search — their
        // histories are a cache line or two.
        const HEAVY_READER_THRESHOLD: usize = 64;
        let words = n_books.div_ceil(64);
        let heavy_bits: Vec<Option<Box<[u64]>>> = (0..n_users)
            .map(|u| {
                let seen = train.seen(UserIdx(u as u32));
                (seen.len() >= HEAVY_READER_THRESHOLD).then(|| {
                    let mut bits = vec![0u64; words].into_boxed_slice();
                    for &b in seen {
                        bits[(b as usize) >> 6] |= 1u64 << (b & 63);
                    }
                    bits
                })
            })
            .collect();
        let is_read = |u: u32, j: u32| match &heavy_bits[u as usize] {
            Some(bits) => bits[(j as usize) >> 6] & (1u64 << (j & 63)) != 0,
            None => train.contains(UserIdx(u), BookIdx(j)),
        };

        for epoch in 0..self.config.epochs {
            let mut rng = tree.child("epoch").child_idx(epoch as u64).rng();
            positives.shuffle(&mut rng);
            let mut updates = 0usize;
            let mut total_trials = 0usize;

            for &(u, i) in &positives {
                // The user row is borrowed once for the whole trial loop
                // (it is only mutated after sampling finishes), and the
                // positive's score is computed once per positive — each
                // draw pays one bitset/search probe plus one dot.
                //
                // Training scores stay on the scalar reference chain
                // (`dot_ref`): WARP's margin test compares scores that are
                // often ulps apart, so switching the reduction order flips
                // occasional comparisons and 15 epochs of SGD amplify each
                // flip chaotically — the fitted model (and the golden Table 1
                // KPIs pinned on it) would silently drift. The unrolled
                // kernels take over after fit, where scores feed rankings
                // rather than feedback loops.
                let vu_row = user_factors.row(u as usize);
                let score_i = dot_ref(vu_row, item_factors.row(i as usize));
                let mut trials = 0usize;
                let (j, score_j) = loop {
                    if trials >= self.config.max_trials {
                        break (u32::MAX, 0.0);
                    }
                    let j = match &negative_table {
                        None => rng.random_range(0..n_books as u32),
                        Some(table) => table.sample(&mut rng) as u32,
                    };
                    if is_read(u, j) {
                        continue;
                    }
                    trials += 1;
                    let score_j = dot_ref(vu_row, item_factors.row(j as usize));
                    // Plain BPR updates on every sampled negative; WARP
                    // keeps searching for a margin violator.
                    if matches!(self.config.loss, Loss::Bpr) || score_j > score_i - margin {
                        break (j, score_j);
                    }
                };
                total_trials += trials.max(1);
                if j == u32::MAX {
                    continue;
                }

                let weight = match self.config.loss {
                    Loss::Warp => {
                        // Estimated rank of the positive from the number of
                        // draws needed to find a violator.
                        let rank = ((n_books - 1) / trials).max(1);
                        (Self::harmonic(rank) / phi_max) as f32
                    }
                    Loss::Bpr => {
                        // Sigmoid of the (negative) score difference.
                        let x = score_i - score_j;
                        (1.0 / (1.0 + x.exp() as f64)) as f32
                    }
                };

                let vu = user_factors.row_mut(u as usize);
                vu_old.copy_from_slice(vu);
                {
                    let (pi, pj) = item_factors.two_rows_mut(i as usize, j as usize);
                    // v_u += lr (w (p_i − p_j) − λ_V v_u)
                    for f in 0..l {
                        vu[f] += lr * (weight * (pi[f] - pj[f]) - reg_u * vu[f]);
                    }
                    // p_i += lr (w v_u − λ_P p_i); p_j −= lr (w v_u + λ_P p_j)
                    for f in 0..l {
                        pi[f] += lr * (weight * vu_old[f] - reg_i * pi[f]);
                        pj[f] += lr * (-weight * vu_old[f] - reg_i * pj[f]);
                    }
                }
                updates += 1;
            }

            self.epoch_stats.push(EpochStats {
                updates,
                mean_trials: if positives.is_empty() {
                    0.0
                } else {
                    total_trials as f64 / positives.len() as f64
                },
            });
        }

        self.model = Some(BprModel {
            user_factors,
            item_factors,
        });
        self.train = Some(train.clone());
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        let Some((m, _)) = self.fitted() else {
            return 0.0;
        };
        dot(
            m.user_factors.row(user.index()),
            m.item_factors.row(book.index()),
        )
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let Some((m, train)) = self.fitted() else {
            return Vec::new();
        };
        let scores = m.item_factors.matvec(m.user_factors.row(user.index()));
        rank_by_scores(train.n_books(), train.seen(user), k, |b| scores[b as usize])
    }

    fn recommend_batch_into(&self, users: &[UserIdx], k: usize, out: &mut Vec<Vec<u32>>) {
        let Some((m, train)) = self.fitted() else {
            out.clear();
            out.resize_with(users.len(), Vec::new);
            return;
        };
        let n_books = train.n_books();
        out.resize_with(users.len(), Vec::new);
        // Score four users per pass over the item factors via the shared
        // blocked matvec (bit-identical to matvec_into, so batch answers
        // equal single calls exactly). Scratch is per batch, not per user:
        // score buffers, the TopK heap, and the caller's ranking pool are
        // all refilled in place.
        let mut top = rm_util::TopK::new(1);
        let mut bufs: [Vec<f32>; 4] = std::array::from_fn(|_| Vec::with_capacity(n_books));
        let mut slot = 0usize;
        let mut quads = users.chunks_exact(4);
        for quad in &mut quads {
            let xs: [&[f32]; 4] = std::array::from_fn(|i| m.user_factors.row(quad[i].index()));
            m.item_factors.matvec_block_into(&xs, &mut bufs);
            for (&u, scores) in quad.iter().zip(&bufs) {
                rank_by_scores_into(
                    n_books,
                    train.seen(u),
                    k,
                    |b| scores[b as usize],
                    &mut top,
                    &mut out[slot],
                );
                slot += 1;
            }
        }
        for &u in quads.remainder() {
            let scores = &mut bufs[0];
            m.item_factors
                .matvec_into(m.user_factors.row(u.index()), scores);
            rank_by_scores_into(
                n_books,
                train.seen(u),
                k,
                |b| scores[b as usize],
                &mut top,
                &mut out[slot],
            );
            slot += 1;
        }
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        let n_books = self.fitted().map_or(0, |(_, t)| t.n_books());
        self.recommend(user, n_books)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    /// Two disjoint co-reading communities: users 0–9 read books 0–4,
    /// users 10–19 read books 5–9, each user missing one book of their
    /// community — CF must recommend the held-out community book first.
    fn community_train() -> (Interactions, Vec<(UserIdx, u32)>) {
        let mut pairs = Vec::new();
        let mut holdouts = Vec::new();
        for u in 0..20u32 {
            let base = if u < 10 { 0u32 } else { 5 };
            let holdout = base + (u % 5);
            for b in base..base + 5 {
                if b != holdout {
                    pairs.push((UserIdx(u), BookIdx(b)));
                }
            }
            holdouts.push((UserIdx(u), holdout));
        }
        (Interactions::from_pairs(20, 10, &pairs), holdouts)
    }

    fn quick_config() -> BprConfig {
        BprConfig {
            factors: 8,
            epochs: 30,
            learning_rate: 0.1,
            ..BprConfig::default()
        }
    }

    #[test]
    fn learns_community_structure() {
        let (train, holdouts) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        // Top-2 of the six unseen books (chance ≈ 1/3 per user): exact
        // first place swings with the init stream, community membership
        // does not.
        let mut hits = 0;
        for &(u, holdout) in &holdouts {
            if bpr.recommend(u, 2).contains(&holdout) {
                hits += 1;
            }
        }
        assert!(hits >= 17, "only {hits}/20 holdouts ranked in the top-2");
    }

    #[test]
    fn fit_is_deterministic() {
        let (train, _) = community_train();
        let mut a = Bpr::new(quick_config());
        let mut b = Bpr::new(quick_config());
        a.fit(&train);
        b.fit(&train);
        assert_eq!(a.model(), b.model());
        let mut c = Bpr::new(BprConfig {
            seed: 99,
            ..quick_config()
        });
        c.fit(&train);
        assert_ne!(a.model(), c.model());
    }

    #[test]
    fn recommendations_exclude_seen() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        for u in 0..20u32 {
            let recs = bpr.rank_all(UserIdx(u));
            let seen = train.seen(UserIdx(u));
            assert_eq!(recs.len(), 10 - seen.len());
            for s in seen {
                assert!(!recs.contains(s));
            }
        }
    }

    #[test]
    fn sigmoid_loss_also_learns() {
        let (train, holdouts) = community_train();
        let mut bpr = Bpr::new(BprConfig {
            loss: Loss::Bpr,
            ..quick_config()
        });
        bpr.fit(&train);
        let hits = holdouts
            .iter()
            .filter(|&&(u, h)| bpr.recommend(u, 2).contains(&h))
            .count();
        assert!(hits >= 14, "sigmoid loss: {hits}/20 holdouts in top-2");
    }

    #[test]
    fn mean_trials_grow_as_model_fits() {
        // Once positives outrank most negatives, WARP needs more draws to
        // find a violator.
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let stats = bpr.epoch_stats();
        assert!(stats.last().unwrap().mean_trials > stats[0].mean_trials);
    }

    #[test]
    fn scores_separate_positives_from_negatives() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let mut rng = rng_from_seed(5);
        let mut correct = 0;
        let n = 200;
        for _ in 0..n {
            let u = rng.random_range(0..20u32);
            let seen = train.seen(UserIdx(u));
            let i = seen[rng.random_range(0..seen.len())];
            let j = loop {
                let j = rng.random_range(0..10u32);
                if !train.contains(UserIdx(u), BookIdx(j)) {
                    break j;
                }
            };
            if bpr.score(UserIdx(u), BookIdx(i)) > bpr.score(UserIdx(u), BookIdx(j)) {
                correct += 1;
            }
        }
        // AUC-style check: read books outrank unread ones nearly always.
        assert!(correct as f64 / f64::from(n) > 0.9, "AUC {correct}/{n}");
    }

    #[test]
    fn batch_matches_single_calls() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let users: Vec<UserIdx> = (0..20).map(UserIdx).collect();
        for k in [1usize, 3, usize::MAX] {
            let batch = bpr.recommend_batch(&users, k);
            assert_eq!(batch.len(), users.len());
            for (&u, got) in users.iter().zip(&batch) {
                assert_eq!(got, &bpr.recommend(u, k), "user {u:?} k {k}");
            }
        }
    }

    #[test]
    fn batch_into_reuses_ranking_pool() {
        // Passing the same pool across batches must refill the inner
        // buffers in place — the eval harness relies on this for its
        // no-per-user-allocation guarantee.
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let users: Vec<UserIdx> = (0..20).map(UserIdx).collect();
        let mut pool: Vec<Vec<u32>> = Vec::new();
        bpr.recommend_batch_into(&users, usize::MAX, &mut pool);
        let ptrs: Vec<*const u32> = pool.iter().map(|v| v.as_ptr()).collect();
        let first: Vec<Vec<u32>> = pool.clone();
        bpr.recommend_batch_into(&users, usize::MAX, &mut pool);
        assert_eq!(pool, first, "second batch must answer identically");
        for (i, v) in pool.iter().enumerate() {
            assert_eq!(v.as_ptr(), ptrs[i], "ranking buffer {i} reallocated");
        }
    }

    #[test]
    fn install_round_trip() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let model = bpr.model().unwrap().clone();
        let mut fresh = Bpr::new(quick_config());
        fresh.install(model, &train);
        assert_eq!(bpr.recommend(UserIdx(3), 5), fresh.recommend(UserIdx(3), 5));
    }

    #[test]
    #[should_panic(expected = "user count mismatch")]
    fn install_rejects_mismatch() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let model = bpr.model().unwrap().clone();
        let other = Interactions::from_pairs(3, 10, &[]);
        let mut fresh = Bpr::new(quick_config());
        fresh.install(model, &other);
    }

    #[test]
    fn popularity_negative_sampling_also_learns() {
        let (train, holdouts) = community_train();
        let mut bpr = Bpr::new(BprConfig {
            negative_sampling: NegativeSampling::Popularity { alpha: 0.5 },
            ..quick_config()
        });
        bpr.fit(&train);
        let hits = holdouts
            .iter()
            .filter(|&&(u, h)| bpr.recommend(u, 2).contains(&h))
            .count();
        assert!(
            hits >= 14,
            "popularity sampling: {hits}/20 holdouts in top-2"
        );
    }

    #[test]
    fn sampling_strategies_produce_different_models() {
        let (train, _) = community_train();
        let mut uniform = Bpr::new(quick_config());
        let mut pop = Bpr::new(BprConfig {
            negative_sampling: NegativeSampling::Popularity { alpha: 1.0 },
            ..quick_config()
        });
        uniform.fit(&train);
        pop.fit(&train);
        assert_ne!(uniform.model(), pop.model());
    }

    #[test]
    fn fold_in_matches_in_matrix_user_quality() {
        // Fold in a user whose history equals an existing user's training
        // set: the fold-in recommendations should hit the same holdout.
        let (train, holdouts) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let mut hits = 0;
        for &(u, holdout) in &holdouts {
            let recs = bpr.recommend_for_history(train.seen(u), 2);
            assert_eq!(recs.len(), 2);
            assert!(recs.iter().all(|b| train.seen(u).binary_search(b).is_err()));
            if recs.contains(&holdout) {
                hits += 1;
            }
        }
        assert!(hits >= 15, "fold-in hit {hits}/20 holdouts");
    }

    #[test]
    fn fold_in_is_deterministic() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let history = [0u32, 1, 2];
        assert_eq!(bpr.fold_in_user(&history), bpr.fold_in_user(&history));
        assert_eq!(
            bpr.recommend_for_history(&history, 3),
            bpr.recommend_for_history(&history, 3)
        );
    }

    #[test]
    fn fold_in_empty_history_is_zero_vector() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        assert!(bpr.fold_in_user(&[]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fold_in_full_catalogue_history_terminates() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let everything: Vec<u32> = (0..10).collect();
        // Must not hang; no negatives exist, so only the warm start runs
        // and no recommendation remains.
        let vu = bpr.fold_in_user(&everything);
        assert!(vu.iter().any(|&v| v != 0.0));
        assert!(bpr.recommend_for_history(&everything, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown book")]
    fn fold_in_rejects_out_of_range() {
        let (train, _) = community_train();
        let mut bpr = Bpr::new(quick_config());
        bpr.fit(&train);
        let _ = bpr.fold_in_user(&[999]);
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(Bpr::harmonic(0), 0.0);
        assert!((Bpr::harmonic(1) - 1.0).abs() < 1e-12);
        assert!((Bpr::harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // Asymptotic branch close to exact.
        let exact: f64 = (1..=100).map(|j| 1.0 / j as f64).sum();
        assert!((Bpr::harmonic(100) - exact).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least two books")]
    fn single_book_catalog_rejected() {
        let train = Interactions::from_pairs(1, 1, &[(UserIdx(0), BookIdx(0))]);
        Bpr::new(quick_config()).fit(&train);
    }
}
