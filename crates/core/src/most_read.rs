//! The *Most Read Items* baseline (Section 4): the top-k most-read books
//! of the training set, identical for every user minus their seen set.
//!
//! The paper finds this baseline *below* Random for BCT users — the merged
//! training set is dominated by Anobii readers whose popularity profile
//! (comics-heavy) differs from the library public's. The implementation
//! here reproduces that mechanism faithfully: popularity is computed over
//! *all* training readings.

use crate::Recommender;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;

/// Global-popularity recommender.
#[derive(Debug, Clone, Default)]
pub struct MostReadItems {
    /// Books sorted by descending training read count (ties by index).
    by_popularity: Vec<u32>,
    /// Read count per book.
    counts: Vec<u64>,
    train: Option<Interactions>,
}

impl MostReadItems {
    /// Creates the (unfitted) baseline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the baseline from persisted read counts (see
    /// [`crate::persist`]): the popularity order is derived from the
    /// counts, exactly as [`Recommender::fit`] derives it. The training
    /// matrix for seen-book exclusion must follow via
    /// [`MostReadItems::install`].
    #[must_use]
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let mut m = Self::default();
        m.set_counts(counts);
        m
    }

    /// Attaches the interactions used for seen-book exclusion to a model
    /// restored by [`MostReadItems::from_counts`].
    ///
    /// # Panics
    ///
    /// Panics if the catalogue sizes disagree.
    pub fn install(&mut self, train: &Interactions) {
        assert_eq!(self.counts.len(), train.n_books(), "book count mismatch");
        self.train = Some(train.clone());
    }

    fn set_counts(&mut self, counts: Vec<u64>) {
        let mut order: Vec<u32> = (0..counts.len() as u32).collect();
        order.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
        self.counts = counts;
        self.by_popularity = order;
    }

    /// The fitted training matrix, or `None` before [`Recommender::fit`].
    /// Request-path methods degrade through this instead of panicking:
    /// an unfitted model on the serve path answers empty rather than
    /// poisoning a worker.
    fn fitted(&self) -> Option<&Interactions> {
        self.train.as_ref()
    }

    /// Read count of a book in the training set.
    #[must_use]
    pub fn count(&self, book: BookIdx) -> u64 {
        self.counts[book.index()]
    }

    /// Read counts per book (the persisted state).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Books sorted by descending read count (ties by index).
    #[must_use]
    pub fn popularity_order(&self) -> &[u32] {
        &self.by_popularity
    }
}

impl Recommender for MostReadItems {
    fn name(&self) -> &str {
        "Most Read Items"
    }

    fn fit(&mut self, train: &Interactions) {
        self.set_counts(train.book_counts());
        self.train = Some(train.clone());
    }

    fn score(&self, _user: UserIdx, book: BookIdx) -> f32 {
        self.counts[book.index()] as f32
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let Some(train) = self.fitted() else {
            return Vec::new();
        };
        let seen = train.seen(user);
        self.by_popularity
            .iter()
            .copied()
            .filter(|&b| seen.binary_search(&b).is_err())
            .take(k)
            .collect()
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        let n_books = self.fitted().map_or(0, |t| t.n_books());
        self.recommend(user, n_books)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> MostReadItems {
        // Book read counts: 0 → 3, 1 → 1, 2 → 2, 3 → 0.
        let train = Interactions::from_pairs(
            3,
            4,
            &[
                (UserIdx(0), BookIdx(0)),
                (UserIdx(1), BookIdx(0)),
                (UserIdx(2), BookIdx(0)),
                (UserIdx(0), BookIdx(2)),
                (UserIdx(1), BookIdx(2)),
                (UserIdx(2), BookIdx(1)),
            ],
        );
        let mut m = MostReadItems::new();
        m.fit(&train);
        m
    }

    #[test]
    fn popularity_order() {
        let m = fitted();
        // User 1 has read 0 and 2 → gets 1 then 3.
        assert_eq!(m.recommend(UserIdx(1), 4), vec![1, 3]);
        // User 2 has read 0 and 1 → gets 2 then 3.
        assert_eq!(m.recommend(UserIdx(2), 4), vec![2, 3]);
    }

    #[test]
    fn same_global_list_for_everyone() {
        let m = fitted();
        // An (imaginary) user with nothing read: compare two users' lists
        // ignoring exclusions — both are prefixes of the same order.
        assert_eq!(m.rank_all(UserIdx(1)), vec![1, 3]);
        assert_eq!(m.rank_all(UserIdx(2)), vec![2, 3]);
        assert_eq!(m.score(UserIdx(0), BookIdx(0)), 3.0);
        assert_eq!(m.score(UserIdx(1), BookIdx(0)), 3.0);
    }

    #[test]
    fn counts_exposed() {
        let m = fitted();
        assert_eq!(m.count(BookIdx(0)), 3);
        assert_eq!(m.count(BookIdx(3)), 0);
    }

    #[test]
    fn k_truncates() {
        let m = fitted();
        assert_eq!(m.recommend(UserIdx(1), 1), vec![1]);
    }

    #[test]
    fn ties_break_by_index() {
        let train = Interactions::from_pairs(1, 3, &[(UserIdx(0), BookIdx(2))]);
        let mut m = MostReadItems::new();
        m.fit(&train);
        // Books 0 and 1 both have count 0 → index order.
        assert_eq!(m.recommend(UserIdx(0), 3), vec![0, 1]);
    }
}
