//! Hyper-parameter grid search for BPR (Section 6, first paragraph).
//!
//! The paper sweeps the number of latent factors and the learning rate and
//! keeps the combination maximising URR on the validation set. The scorer
//! is supplied by the caller (the evaluation harness lives downstream of
//! this crate), so the search itself stays agnostic of the KPI.

use crate::bpr::{Bpr, BprConfig};
use crate::Recommender;
use rm_dataset::interactions::Interactions;

/// The sweep axes. The paper's grid: L ∈ {5, 10, 20, 40},
/// lr ∈ {0.05, 0.1, 0.2, 0.4}.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearch {
    /// Latent-factor counts to try.
    pub factors: Vec<usize>,
    /// Learning rates to try.
    pub learning_rates: Vec<f32>,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self {
            factors: vec![5, 10, 20, 40],
            learning_rates: vec![0.05, 0.1, 0.2, 0.4],
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Latent factors.
    pub factors: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Validation score (higher is better).
    pub score: f64,
}

/// The sweep outcome: every point plus the winning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// All evaluated points, in sweep order.
    pub points: Vec<GridPoint>,
    /// The best configuration found.
    pub best: BprConfig,
}

impl GridSearch {
    /// Runs the sweep: trains one model per (L, lr) on `train` and scores
    /// it with `validate`. Ties keep the earlier point (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or a scorer returns NaN.
    #[must_use]
    pub fn run(
        &self,
        base: &BprConfig,
        train: &Interactions,
        mut validate: impl FnMut(&Bpr) -> f64,
    ) -> GridOutcome {
        assert!(
            !self.factors.is_empty() && !self.learning_rates.is_empty(),
            "grid axes must be non-empty"
        );
        let mut points = Vec::with_capacity(self.factors.len() * self.learning_rates.len());
        let mut best: Option<(f64, BprConfig)> = None;
        for &factors in &self.factors {
            for &learning_rate in &self.learning_rates {
                let config = BprConfig {
                    factors,
                    learning_rate,
                    ..base.clone()
                };
                let mut model = Bpr::new(config.clone());
                model.fit(train);
                let score = validate(&model);
                assert!(!score.is_nan(), "validation scorer returned NaN");
                points.push(GridPoint {
                    factors,
                    learning_rate,
                    score,
                });
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, config));
                }
            }
        }
        GridOutcome {
            points,
            best: best.expect("non-empty grid").1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::ids::{BookIdx, UserIdx};

    fn tiny_train() -> Interactions {
        let pairs: Vec<(UserIdx, BookIdx)> = (0..6u32)
            .flat_map(|u| (0..4u32).map(move |b| (UserIdx(u), BookIdx((u % 2) * 4 + b))))
            .collect();
        Interactions::from_pairs(6, 8, &pairs)
    }

    #[test]
    fn sweep_covers_every_point() {
        let grid = GridSearch {
            factors: vec![2, 4],
            learning_rates: vec![0.05, 0.1, 0.2],
        };
        let base = BprConfig {
            epochs: 2,
            ..BprConfig::default()
        };
        let outcome = grid.run(&base, &tiny_train(), |_| 0.0);
        assert_eq!(outcome.points.len(), 6);
        // Ties keep the first point.
        assert_eq!(outcome.best.factors, 2);
        assert!((outcome.best.learning_rate - 0.05).abs() < 1e-9);
    }

    #[test]
    fn best_point_maximises_scorer() {
        let grid = GridSearch {
            factors: vec![2, 4, 8],
            learning_rates: vec![0.1],
        };
        let base = BprConfig {
            epochs: 1,
            ..BprConfig::default()
        };
        // Scorer that prefers 4 factors.
        let outcome = grid.run(&base, &tiny_train(), |m| {
            -((m.config().factors as f64) - 4.0).abs()
        });
        assert_eq!(outcome.best.factors, 4);
        assert_eq!(outcome.points.iter().filter(|p| p.score == 0.0).count(), 1);
    }

    #[test]
    fn base_fields_carry_over() {
        let grid = GridSearch {
            factors: vec![3],
            learning_rates: vec![0.2],
        };
        let base = BprConfig {
            epochs: 1,
            seed: 123,
            ..BprConfig::default()
        };
        let outcome = grid.run(&base, &tiny_train(), |_| 1.0);
        assert_eq!(outcome.best.seed, 123);
        assert_eq!(outcome.best.epochs, 1);
        assert_eq!(outcome.best.factors, 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        let grid = GridSearch {
            factors: vec![],
            learning_rates: vec![0.1],
        };
        let _ = grid.run(&BprConfig::default(), &tiny_train(), |_| 0.0);
    }
}
