//! Sequential recommendation — the paper's future-work direction
//! ("we could consider sequential recommendation systems algorithms",
//! Section 7, citing Wang et al. 2019).
//!
//! [`SequentialItems`] is a first-order item-transition model: each user's
//! readings are ordered by date, consecutive pairs are counted as
//! transitions `a → b` (both directions — a loan sequence is weak ordering
//! evidence), and a user is scored by the popularity-normalised transition
//! mass from their most recent readings. This is the classic Markov-chain
//! recommender baseline of the sequential-recsys literature.
//!
//! Unlike the other recommenders, fitting needs reading *dates*, so the
//! model is constructed from the corpus plus the training interactions
//! (the split masks which readings are visible).

use crate::{rank_by_scores, Recommender};
use rm_dataset::corpus::Corpus;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_sparse::CsrMatrix;

/// Configuration of the sequential model.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialConfig {
    /// How many of the user's most recent training readings contribute
    /// transition mass at recommendation time.
    pub context: usize,
    /// Additive smoothing on transition counts when normalising by the
    /// source book's out-degree.
    pub smoothing: f32,
}

impl Default for SequentialConfig {
    fn default() -> Self {
        Self {
            context: 5,
            smoothing: 1.0,
        }
    }
}

/// First-order item-transition recommender.
#[derive(Debug, Clone)]
pub struct SequentialItems {
    config: SequentialConfig,
    /// Date-ordered training readings per user (latest last).
    history: Vec<Vec<u32>>,
    /// Symmetric transition matrix (book × book), row-normalised lazily.
    transitions: Option<CsrMatrix>,
    train: Option<Interactions>,
}

impl SequentialItems {
    /// Creates the model over a corpus's dated readings. Only readings
    /// present in the *training* interactions passed to
    /// [`Recommender::fit`] are used; the corpus provides their order.
    #[must_use]
    pub fn from_corpus(corpus: &Corpus, config: SequentialConfig) -> Self {
        let mut history: Vec<Vec<(u32, u32)>> = vec![Vec::new(); corpus.n_users()];
        for r in &corpus.readings {
            history[r.user.index()].push((r.date.0, r.book.0));
        }
        let history = history
            .into_iter()
            .map(|mut h| {
                h.sort_unstable();
                h.into_iter().map(|(_, b)| b).collect()
            })
            .collect();
        Self {
            config,
            history,
            transitions: None,
            train: None,
        }
    }

    /// Both fitted references, or `None` before [`Recommender::fit`].
    /// The request-path trait methods degrade through this instead of
    /// panicking: an unfitted model on the serve path answers empty
    /// (or scores zero) rather than poisoning a worker.
    fn fitted(&self) -> Option<(&Interactions, &CsrMatrix)> {
        Some((self.train.as_ref()?, self.transitions.as_ref()?))
    }

    /// The user's training readings in date order (latest last).
    fn ordered_train(&self, user: UserIdx, train: &Interactions) -> Vec<u32> {
        self.history[user.index()]
            .iter()
            .copied()
            .filter(|&b| train.contains(user, BookIdx(b)))
            .collect()
    }

    /// Transition-based score of `book` given the user's recent context.
    fn context_score(&self, user: UserIdx, book: u32) -> f32 {
        let Some((train, transitions)) = self.fitted() else {
            return 0.0;
        };
        let ordered = self.ordered_train(user, train);
        let context = &ordered[ordered.len().saturating_sub(self.config.context)..];
        let mut score = 0.0f32;
        for &src in context {
            let out: f32 = transitions
                .row_values(src as usize)
                .map_or(0.0, |v| v.iter().sum());
            let raw = transitions.get(src as usize, book);
            score += raw / (out + self.config.smoothing);
        }
        score
    }
}

impl Recommender for SequentialItems {
    fn name(&self) -> &str {
        "Sequential Items"
    }

    fn fit(&mut self, train: &Interactions) {
        assert_eq!(
            train.n_users(),
            self.history.len(),
            "training matrix and corpus disagree on user count"
        );
        let mut triplets: Vec<(u32, u32, f32)> = Vec::new();
        for u in 0..train.n_users() {
            let ordered = self.ordered_train(UserIdx(u as u32), train);
            for w in ordered.windows(2) {
                triplets.push((w[0], w[1], 1.0));
                triplets.push((w[1], w[0], 1.0));
            }
        }
        self.transitions = Some(CsrMatrix::from_triplets(
            train.n_books(),
            train.n_books(),
            &triplets,
            |a, b| a + b,
        ));
        self.train = Some(train.clone());
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        self.context_score(user, book.0)
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let Some((train, transitions)) = self.fitted() else {
            return Vec::new();
        };
        let ordered = self.ordered_train(user, train);
        if ordered.is_empty() {
            return Vec::new();
        }
        let context = &ordered[ordered.len().saturating_sub(self.config.context)..];
        // Accumulate normalised transition mass from the context books.
        let mut scores = vec![0.0f32; train.n_books()];
        for &src in context {
            let out: f32 = transitions
                .row_values(src as usize)
                .map_or(0.0, |v| v.iter().sum());
            if let Some(values) = transitions.row_values(src as usize) {
                for (&dst, &v) in transitions.row(src as usize).iter().zip(values) {
                    scores[dst as usize] += v / (out + self.config.smoothing);
                }
            }
        }
        rank_by_scores(train.n_books(), train.seen(user), k, |b| scores[b as usize])
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        let n_books = self.fitted().map_or(0, |(t, _)| t.n_books());
        self.recommend(user, n_books)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::corpus::{Book, Reading, Source, User};
    use rm_dataset::genre::GenreModel;
    use rm_dataset::ids::{AnobiiItemId, BctBookId, Day};

    /// Users read 0 → 1 → 2 in order; user 2 reads 0 → 1 only.
    fn corpus() -> Corpus {
        let books = (0..5)
            .map(|i| Book {
                title: format!("B{i}"),
                authors: vec!["A".into()],
                plot: String::new(),
                keywords: vec![],
                genres: vec![],
                bct_id: BctBookId(i),
                anobii_id: AnobiiItemId(i),
            })
            .collect();
        let users = (0..3)
            .map(|raw_id| User {
                source: Source::Bct,
                raw_id,
            })
            .collect();
        let mut readings = Vec::new();
        for u in 0..2u32 {
            for b in 0..3u32 {
                readings.push(Reading {
                    user: UserIdx(u),
                    book: BookIdx(b),
                    date: Day(b * 10),
                });
            }
        }
        readings.push(Reading {
            user: UserIdx(2),
            book: BookIdx(0),
            date: Day(0),
        });
        readings.push(Reading {
            user: UserIdx(2),
            book: BookIdx(1),
            date: Day(10),
        });
        let mut c = Corpus {
            books,
            users,
            readings,
            genre_model: GenreModel::identity(),
        };
        c.readings.sort_unstable_by_key(|r| (r.user.0, r.book.0));
        c
    }

    fn fitted() -> (SequentialItems, Interactions) {
        let c = corpus();
        let train = Interactions::from_corpus(&c);
        let mut s = SequentialItems::from_corpus(&c, SequentialConfig::default());
        s.fit(&train);
        (s, train)
    }

    #[test]
    fn follows_the_chain() {
        let (s, _) = fitted();
        // User 2 read 0 → 1; the observed continuation is 2.
        let recs = s.recommend(UserIdx(2), 1);
        assert_eq!(recs, vec![2]);
    }

    #[test]
    fn excludes_seen_books() {
        let (s, train) = fitted();
        for u in 0..3u32 {
            let recs = s.rank_all(UserIdx(u));
            for b in train.seen(UserIdx(u)) {
                assert!(!recs.contains(b));
            }
        }
    }

    #[test]
    fn score_positive_only_for_connected_books() {
        let (s, _) = fitted();
        assert!(s.score(UserIdx(2), BookIdx(2)) > 0.0);
        assert_eq!(s.score(UserIdx(2), BookIdx(4)), 0.0);
    }

    #[test]
    fn empty_history_gives_empty_recommendations() {
        let c = corpus();
        // Train mask excludes user 2 entirely.
        let pairs: Vec<(UserIdx, BookIdx)> = c
            .readings
            .iter()
            .filter(|r| r.user.0 < 2)
            .map(|r| (r.user, r.book))
            .collect();
        let train = Interactions::from_pairs(c.n_users(), c.n_books(), &pairs);
        let mut s = SequentialItems::from_corpus(&c, SequentialConfig::default());
        s.fit(&train);
        assert!(s.recommend(UserIdx(2), 3).is_empty());
    }

    #[test]
    fn context_limits_lookback() {
        let (mut s, train) = fitted();
        s.config.context = 1;
        s.fit(&train);
        // With context 1, user 2's score comes only from book 1.
        let from_1 = s.score(UserIdx(2), BookIdx(2));
        assert!(from_1 > 0.0);
        let full = {
            let (s2, _) = fitted();
            s2.score(UserIdx(2), BookIdx(2))
        };
        // The wider context adds the (0 → 1 skip-free) mass, so the
        // narrow-context score cannot exceed the full one.
        assert!(from_1 <= full + 1e-6);
    }

    #[test]
    fn unfitted_answers_empty() {
        let c = corpus();
        let s = SequentialItems::from_corpus(&c, SequentialConfig::default());
        assert!(s.recommend(UserIdx(0), 1).is_empty());
        assert!(s.rank_all(UserIdx(0)).is_empty());
        assert_eq!(s.score(UserIdx(0), BookIdx(0)), 0.0);
    }
}
