//! Item-based k-nearest-neighbour collaborative filtering.
//!
//! The classic implicit-feedback CF baseline (Sarwar et al.'s item-item
//! family, the workhorse of the `implicit` library the paper's ecosystem
//! builds on): two books are similar when the same users read both. Score
//! of an unseen book = sum of its similarity to the user's read books over
//! the top-N neighbour lists.
//!
//! Similarity is shrunk cosine over co-occurrence counts:
//!
//! ```text
//! sim(a, b) = co(a, b) / (√(pop(a) · pop(b)) + shrinkage)
//! ```
//!
//! The shrinkage term damps similarities supported by few co-readers.
//! Fitting is the standard dense-scratch sweep: for each book, accumulate
//! co-occurrence counts against all books sharing a reader, then keep the
//! top-N — `O(Σ_u n_u²)` time, `O(catalogue)` scratch memory.

use crate::{rank_by_scores, rank_by_scores_into, Recommender};
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_sparse::CsrMatrix;
use rm_util::TopK;

/// Item-kNN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemKnnConfig {
    /// Neighbour-list length per book.
    pub neighbors: usize,
    /// Cosine shrinkage (damps low-support similarities).
    pub shrinkage: f32,
    /// Users with more readings than this are skipped when counting
    /// co-occurrences (a 500-book reader contributes 250 k pairs of mostly
    /// noise; the cap matches common practice).
    pub max_user_history: usize,
}

impl Default for ItemKnnConfig {
    fn default() -> Self {
        Self {
            neighbors: 50,
            shrinkage: 10.0,
            max_user_history: 500,
        }
    }
}

/// Item-based collaborative-filtering recommender.
#[derive(Debug, Clone)]
pub struct ItemKnn {
    config: ItemKnnConfig,
    /// Top-N similarity lists as a book×book CSR matrix.
    similarities: Option<CsrMatrix>,
    train: Option<Interactions>,
}

impl ItemKnn {
    /// Creates an unfitted model.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors == 0`.
    #[must_use]
    pub fn new(config: ItemKnnConfig) -> Self {
        assert!(config.neighbors > 0, "need at least one neighbour");
        Self {
            config,
            similarities: None,
            train: None,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ItemKnnConfig {
        &self.config
    }

    /// Both fitted references, or `None` before [`Recommender::fit`].
    /// The request-path trait methods degrade through this instead of
    /// panicking: an unfitted model on the serve path answers empty
    /// (or scores zero) rather than poisoning a worker.
    fn fitted(&self) -> Option<(&Interactions, &CsrMatrix)> {
        Some((self.train.as_ref()?, self.similarities.as_ref()?))
    }

    /// The fitted neighbour list of a book: `(neighbour, similarity)`,
    /// unsorted (CSR column order); empty before [`Recommender::fit`].
    #[must_use]
    pub fn neighbors_of(&self, book: BookIdx) -> Vec<(u32, f32)> {
        let Some((_, sims)) = self.fitted() else {
            return Vec::new();
        };
        let values = sims.row_values(book.index()).unwrap_or(&[]);
        sims.row(book.index())
            .iter()
            .copied()
            .zip(values.iter().copied())
            .collect()
    }

    /// Accumulated similarity scores of every book for `user`.
    fn user_scores(&self, user: UserIdx) -> Vec<f32> {
        let mut scores = Vec::new();
        self.user_scores_into(user, &mut scores);
        scores
    }

    /// [`ItemKnn::user_scores`] refilling a caller-owned catalogue-sized
    /// buffer (zeroed, then accumulated) so batch scoring reuses one
    /// allocation.
    fn user_scores_into(&self, user: UserIdx, scores: &mut Vec<f32>) {
        scores.clear();
        let Some((train, sims)) = self.fitted() else {
            return;
        };
        scores.resize(train.n_books(), 0.0);
        for &i in train.seen(user) {
            if let Some(values) = sims.row_values(i as usize) {
                for (&j, &s) in sims.row(i as usize).iter().zip(values) {
                    scores[j as usize] += s;
                }
            }
        }
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> &str {
        "Item kNN"
    }

    fn fit(&mut self, train: &Interactions) {
        let n_books = train.n_books();
        let by_item = train.as_csr().transpose(); // book × user
                                                  // Popularity for the cosine denominator counts only the users that
                                                  // also contribute to the co-occurrence numerator (those under the
                                                  // history cap) — otherwise books read mostly by skipped heavy
                                                  // users would get systematically shrunken similarities.
        let counted = |u: u32| train.seen(UserIdx(u)).len() <= self.config.max_user_history;
        let pop: Vec<f32> = (0..n_books)
            .map(|b| by_item.row(b).iter().filter(|&&u| counted(u)).count() as f32)
            .collect();

        // Dense scratch with a touched-list for O(neighbourhood) reset.
        let mut counts = vec![0u32; n_books];
        let mut touched: Vec<u32> = Vec::new();
        let mut indptr = Vec::with_capacity(n_books + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();

        for a in 0..n_books {
            for &u in by_item.row(a) {
                if !counted(u) {
                    continue;
                }
                let history = train.seen(UserIdx(u));
                for &b in history {
                    if b as usize == a {
                        continue;
                    }
                    if counts[b as usize] == 0 {
                        touched.push(b);
                    }
                    counts[b as usize] += 1;
                }
            }
            let mut top = TopK::new(self.config.neighbors);
            for &b in &touched {
                let co = counts[b as usize] as f32;
                let sim = co / ((pop[a] * pop[b as usize]).sqrt() + self.config.shrinkage);
                top.push(b, sim);
                counts[b as usize] = 0;
            }
            touched.clear();
            // CSR rows must be sorted by column index.
            let mut row: Vec<(u32, f32)> = top
                .into_sorted()
                .into_iter()
                .map(|s| (s.item, s.score))
                .collect();
            row.sort_unstable_by_key(|&(b, _)| b);
            for (b, s) in row {
                indices.push(b);
                values.push(s);
            }
            indptr.push(indices.len());
        }

        self.similarities = Some(CsrMatrix::from_parts(
            n_books, n_books, indptr, indices, values,
        ));
        self.train = Some(train.clone());
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        self.user_scores(user)
            .get(book.index())
            .copied()
            .unwrap_or(0.0)
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let Some((train, _)) = self.fitted() else {
            return Vec::new();
        };
        let scores = self.user_scores(user);
        rank_by_scores(train.n_books(), train.seen(user), k, |b| scores[b as usize])
    }

    fn recommend_batch_into(&self, users: &[UserIdx], k: usize, out: &mut Vec<Vec<u32>>) {
        let Some((train, _)) = self.fitted() else {
            out.clear();
            out.resize_with(users.len(), Vec::new);
            return;
        };
        out.resize_with(users.len(), Vec::new);
        // One catalogue-sized score buffer + one TopK for the whole batch.
        let mut scores = Vec::with_capacity(train.n_books());
        let mut top = rm_util::TopK::new(1);
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            self.user_scores_into(u, &mut scores);
            rank_by_scores_into(
                train.n_books(),
                train.seen(u),
                k,
                |b| scores[b as usize],
                &mut top,
                slot,
            );
        }
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        let n_books = self.fitted().map_or(0, |(t, _)| t.n_books());
        self.recommend(user, n_books)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two communities: users 0-4 read books {0,1,2}, users 5-9 read
    /// {3,4,5}; user 0 is missing book 2, user 5 missing book 5.
    fn community_train() -> Interactions {
        let mut pairs = Vec::new();
        for u in 0..5u32 {
            for b in 0..3u32 {
                if !(u == 0 && b == 2) {
                    pairs.push((UserIdx(u), BookIdx(b)));
                }
            }
        }
        for u in 5..10u32 {
            for b in 3..6u32 {
                if !(u == 5 && b == 5) {
                    pairs.push((UserIdx(u), BookIdx(b)));
                }
            }
        }
        Interactions::from_pairs(10, 6, &pairs)
    }

    fn fitted() -> ItemKnn {
        let mut knn = ItemKnn::new(ItemKnnConfig {
            shrinkage: 0.5,
            ..ItemKnnConfig::default()
        });
        knn.fit(&community_train());
        knn
    }

    #[test]
    fn recommends_the_community_holdout() {
        let knn = fitted();
        assert_eq!(knn.recommend(UserIdx(0), 1), vec![2]);
        assert_eq!(knn.recommend(UserIdx(5), 1), vec![5]);
    }

    #[test]
    fn cross_community_scores_are_zero() {
        let knn = fitted();
        assert_eq!(knn.score(UserIdx(0), BookIdx(4)), 0.0);
        assert!(knn.score(UserIdx(0), BookIdx(2)) > 0.0);
    }

    #[test]
    fn neighbour_lists_stay_within_community() {
        let knn = fitted();
        for (b, s) in knn.neighbors_of(BookIdx(0)) {
            assert!(b < 3, "book 0's neighbour {b} crosses communities");
            assert!(s > 0.0);
        }
    }

    #[test]
    fn similarity_is_symmetric_for_equal_popularity() {
        let knn = fitted();
        let get = |a: u32, b: u32| {
            knn.neighbors_of(BookIdx(a))
                .into_iter()
                .find(|&(n, _)| n == b)
                .map(|(_, s)| s)
        };
        // Books 0 and 1 have identical readership (users 0-4 minus none vs
        // user 0 missing 2 only affects book 2).
        assert_eq!(get(0, 1), get(1, 0));
    }

    #[test]
    fn shrinkage_damps_similarities() {
        let strong = {
            let mut knn = ItemKnn::new(ItemKnnConfig {
                shrinkage: 0.0,
                ..ItemKnnConfig::default()
            });
            knn.fit(&community_train());
            knn.neighbors_of(BookIdx(0))[0].1
        };
        let damped = {
            let mut knn = ItemKnn::new(ItemKnnConfig {
                shrinkage: 20.0,
                ..ItemKnnConfig::default()
            });
            knn.fit(&community_train());
            knn.neighbors_of(BookIdx(0))[0].1
        };
        assert!(damped < strong);
    }

    #[test]
    fn neighbor_cap_respected() {
        let mut knn = ItemKnn::new(ItemKnnConfig {
            neighbors: 1,
            ..ItemKnnConfig::default()
        });
        knn.fit(&community_train());
        for b in 0..6 {
            assert!(knn.neighbors_of(BookIdx(b)).len() <= 1);
        }
    }

    #[test]
    fn heavy_users_are_skipped() {
        // One user reads everything: with the cap below their history they
        // contribute no co-occurrence, so the two cliques stay separate.
        let mut pairs: Vec<(UserIdx, BookIdx)> =
            (0..6u32).map(|b| (UserIdx(0), BookIdx(b))).collect();
        pairs.push((UserIdx(1), BookIdx(0)));
        pairs.push((UserIdx(1), BookIdx(1)));
        let train = Interactions::from_pairs(2, 6, &pairs);
        let mut knn = ItemKnn::new(ItemKnnConfig {
            max_user_history: 3,
            shrinkage: 0.0,
            ..ItemKnnConfig::default()
        });
        knn.fit(&train);
        // Only user 1's pair (0, 1) counts.
        assert_eq!(knn.neighbors_of(BookIdx(0)).len(), 1);
        assert!(knn.neighbors_of(BookIdx(5)).is_empty());
    }

    #[test]
    fn batch_matches_single_calls() {
        let knn = fitted();
        let users: Vec<UserIdx> = (0..10).map(UserIdx).collect();
        for k in [1usize, 3, usize::MAX] {
            let batch = knn.recommend_batch(&users, k);
            assert_eq!(batch.len(), users.len());
            for (&u, got) in users.iter().zip(&batch) {
                assert_eq!(got, &knn.recommend(u, k), "user {u:?} k {k}");
            }
        }
    }

    #[test]
    fn unfitted_answers_empty() {
        let knn = ItemKnn::new(ItemKnnConfig::default());
        assert!(knn.recommend(UserIdx(0), 1).is_empty());
        assert!(knn.rank_all(UserIdx(0)).is_empty());
        assert!(knn.neighbors_of(BookIdx(0)).is_empty());
        assert_eq!(knn.score(UserIdx(0), BookIdx(0)), 0.0);
        let mut out = Vec::new();
        knn.recommend_batch_into(&[UserIdx(0), UserIdx(1)], 3, &mut out);
        assert_eq!(out, vec![Vec::<u32>::new(), Vec::new()]);
    }
}
