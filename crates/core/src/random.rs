//! The *Random Items* baseline (Section 4): k unseen books uniformly at
//! random.
//!
//! Used by the paper "to understand if the RecSys is properly learning".
//! Recommendations are deterministic per (seed, user), so repeated
//! evaluations are reproducible; different users get independent draws.

use crate::Recommender;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_util::rng::derive_seed;

/// Uniform-random recommender.
#[derive(Debug, Clone)]
pub struct RandomItems {
    seed: u64,
    train: Option<Interactions>,
}

impl RandomItems {
    /// Creates the baseline with an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, train: None }
    }

    /// The fitted training matrix, or `None` before [`Recommender::fit`].
    /// Request-path methods degrade through this instead of panicking:
    /// an unfitted model on the serve path answers empty rather than
    /// poisoning a worker.
    fn fitted(&self) -> Option<&Interactions> {
        self.train.as_ref()
    }

    /// The unseen books of `user` in a per-user deterministic random
    /// order; empty before [`Recommender::fit`].
    fn shuffled_unseen(&self, user: UserIdx) -> Vec<u32> {
        let Some(train) = self.fitted() else {
            return Vec::new();
        };
        let seen = train.seen(user);
        let mut seen_iter = seen.iter().copied().peekable();
        let mut unseen: Vec<u32> = Vec::with_capacity(train.n_books() - seen.len());
        for b in 0..train.n_books() as u32 {
            if seen_iter.peek() == Some(&b) {
                seen_iter.next();
            } else {
                unseen.push(b);
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(self.seed, u64::from(user.0)));
        unseen.shuffle(&mut rng);
        unseen
    }
}

impl Recommender for RandomItems {
    fn name(&self) -> &str {
        "Random Items"
    }

    fn fit(&mut self, train: &Interactions) {
        self.train = Some(train.clone());
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        // A hash-based pseudo-score consistent with the per-user shuffle
        // in expectation (both are uniform), used only for diagnostics.
        let h = derive_seed(derive_seed(self.seed, u64::from(user.0)), u64::from(book.0));
        (h as f64 / u64::MAX as f64) as f32
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let mut out = self.shuffled_unseen(user);
        out.truncate(k);
        out
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        self.shuffled_unseen(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::ids::UserIdx;

    fn fitted() -> RandomItems {
        let train = Interactions::from_pairs(
            2,
            10,
            &[
                (UserIdx(0), BookIdx(0)),
                (UserIdx(0), BookIdx(5)),
                (UserIdx(1), BookIdx(9)),
            ],
        );
        let mut r = RandomItems::new(7);
        r.fit(&train);
        r
    }

    #[test]
    fn recommendations_exclude_seen() {
        let r = fitted();
        let recs = r.recommend(UserIdx(0), 8);
        assert_eq!(recs.len(), 8);
        assert!(!recs.contains(&0));
        assert!(!recs.contains(&5));
    }

    #[test]
    fn deterministic_per_seed_and_user() {
        let r = fitted();
        assert_eq!(r.recommend(UserIdx(0), 5), r.recommend(UserIdx(0), 5));
        assert_ne!(r.recommend(UserIdx(0), 8), r.recommend(UserIdx(1), 8));
        let mut other = RandomItems::new(8);
        other.fit(r.fitted().unwrap());
        assert_ne!(r.recommend(UserIdx(0), 8), other.recommend(UserIdx(0), 8));
    }

    #[test]
    fn rank_all_is_permutation_of_unseen() {
        let r = fitted();
        let mut all = r.rank_all(UserIdx(0));
        assert_eq!(all.len(), 8);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn truncation_is_prefix_of_full_ranking() {
        let r = fitted();
        let full = r.rank_all(UserIdx(1));
        let top3 = r.recommend(UserIdx(1), 3);
        assert_eq!(top3, full[..3]);
    }

    #[test]
    fn unfitted_answers_empty() {
        let r = RandomItems::new(1);
        assert!(r.recommend(UserIdx(0), 1).is_empty());
        assert!(r.rank_all(UserIdx(0)).is_empty());
    }
}
