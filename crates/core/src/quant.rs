//! Quantized zero-copy model artifacts (ROADMAP item 3(a)).
//!
//! The serve-time memory budget is dominated by three dense matrices: the
//! BPR user and item factor matrices and the content-embedding matrix. At
//! the paper×100 scale (millions of users, hundreds of thousands of
//! books) the f32 originals no longer fit the single-core container, so
//! this module stores them quantized:
//!
//! * **i8 mode** — symmetric per-row quantization. Each row `x` is stored
//!   as `round(x / s)` clamped to `[-127, 127]` with one f32 scale
//!   `s = max|x| / 127` per row; a zero row gets scale 0. Scores between
//!   two quantized rows use the fused integer kernel
//!   [`rm_sparse::vecops::dot_i8_scaled`], which accumulates in i32 and
//!   widens to f32 exactly once. ~3.9× smaller than f32 (1 byte/element
//!   plus 4 bytes/row of scales).
//! * **f16 mode** — IEEE binary16 storage, no scales; rows are decoded
//!   element-wise by [`rm_sparse::vecops::dot_f16`], which follows the
//!   crate-wide f32 reduction-order contract. Exactly 2× smaller.
//!
//! # Artifact layout (tag 0x05, payload version 1)
//!
//! The payload is one contiguous buffer: a bounds-checked header followed
//! by an aligned data area. All integers are little-endian u32.
//!
//! ```text
//! version | mode | n_sections | record×n | ...data area...
//! record: kind | elem | rows | cols | scales_off | scales_len | data_off | data_len
//! ```
//!
//! Section kinds are `user-factors (0) < item-factors (1) <
//! embeddings (2)` and must appear in strictly increasing kind order.
//! Offsets are relative to the payload start, and the layout is
//! **canonical**: the decoder independently recomputes every offset and
//! length (sections packed in order, scales then codes, each start
//! rounded up to a 64-byte boundary, zero padding between) and rejects
//! any record that disagrees. A forged or overlapping offset therefore
//! cannot alias two sections or escape the buffer — it simply fails to
//! decode, before any view is formed.
//!
//! Loading is zero-copy in the sense that matters without `unsafe`: the
//! payload is held as a single owned byte buffer and every row access is
//! a `&[u8]` slice into it — no per-row allocation, no up-front f32
//! inflation. Only the per-row scales (≤0.4% of the artifact) are decoded
//! to an owned `Vec<f32>` at load time, because f32 reads from a byte
//! buffer would otherwise need per-access decoding or alignment games.
//!
//! # Accuracy
//!
//! Quantization is lossy; the committed gate (`quant-bench --smoke
//! --gate`) trains the Table-1 BPR model, scores it through
//! [`QuantRecommender`], and bounds the URR/NRR drift vs the f32 model at
//! ≤5e-3. Per-element i8 error is at most `s/2` (half a quantization
//! step), so dot-product error grows with `√dim`, far inside that bound
//! for the paper's dimensionalities.

use crate::bpr::BprModel;
use crate::persist::{push_u32, read_u32, DecodeError, PersistModel};
use crate::{rank_by_scores_into, Recommender};
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_embed::EmbeddingStore;
use rm_sparse::vecops;
use rm_sparse::DenseMatrix;

/// Data-area alignment: every scales / codes block starts on a 64-byte
/// (cache-line) boundary within the payload.
const ALIGN: usize = 64;

/// Payload format version.
const VERSION: usize = 1;

fn align_up(x: usize) -> usize {
    (x + (ALIGN - 1)) & !(ALIGN - 1)
}

/// Storage element type of a quantized artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Symmetric per-row-scale i8 codes (1 byte/element + 4 bytes/row).
    I8,
    /// IEEE binary16 (2 bytes/element, no scales).
    F16,
}

impl QuantMode {
    /// Stable display / CLI label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::I8 => "i8",
            Self::F16 => "f16",
        }
    }

    /// Parses a CLI label (`i8` / `f16`). `off` is handled by callers.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "i8" => Some(Self::I8),
            "f16" => Some(Self::F16),
            _ => None,
        }
    }

    /// Bytes per stored element.
    #[must_use]
    pub fn elem_bytes(self) -> usize {
        match self {
            Self::I8 => 1,
            Self::F16 => 2,
        }
    }

    fn code(self) -> usize {
        match self {
            Self::I8 => 0,
            Self::F16 => 1,
        }
    }

    fn from_code(c: usize) -> Option<Self> {
        match c {
            0 => Some(Self::I8),
            1 => Some(Self::F16),
            _ => None,
        }
    }
}

/// Which matrix a section holds. The numeric value is the on-disk kind
/// code *and* the mandatory section order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// BPR user factor matrix.
    UserFactors,
    /// BPR item factor matrix.
    ItemFactors,
    /// Content-embedding matrix (unit rows).
    Embeddings,
}

impl SectionKind {
    fn code(self) -> usize {
        match self {
            Self::UserFactors => 0,
            Self::ItemFactors => 1,
            Self::Embeddings => 2,
        }
    }

    fn from_code(c: usize) -> Option<Self> {
        match c {
            0 => Some(Self::UserFactors),
            1 => Some(Self::ItemFactors),
            2 => Some(Self::Embeddings),
            _ => None,
        }
    }

    /// Stable display label (operator notes, manifests).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::UserFactors => "user-factors",
            Self::ItemFactors => "item-factors",
            Self::Embeddings => "embeddings",
        }
    }
}

/// Parsed metadata of one section (scales decoded, codes left in place).
#[derive(Debug, Clone, PartialEq)]
struct Section {
    kind: SectionKind,
    rows: usize,
    cols: usize,
    /// Per-row scales (i8 mode only; empty for f16).
    scales: Vec<f32>,
    data_off: usize,
    data_len: usize,
}

/// A quantized model artifact: one owned payload buffer plus validated
/// section metadata. Row access borrows the buffer; nothing is inflated
/// back to f32 at load time.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantArtifact {
    mode: QuantMode,
    buf: Vec<u8>,
    sections: Vec<Section>,
}

/// Quantizes one f32 row into `codes` (appended) and returns its scale.
fn quantize_row_i8(row: &[f32], codes: &mut Vec<u8>) -> f32 {
    let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        codes.extend(std::iter::repeat_n(0u8, row.len()));
        return 0.0;
    }
    let scale = max / 127.0;
    for &v in row {
        let c = (v / scale).round().clamp(-127.0, 127.0) as i32;
        codes.push((c as i8) as u8);
    }
    scale
}

impl QuantArtifact {
    /// Quantizes a trained model (and optionally its embedding store)
    /// into a canonical artifact.
    ///
    /// # Panics
    ///
    /// Panics if any matrix is wider than
    /// [`rm_sparse::vecops::MAX_I8_DOT_LEN`] (the i8 kernel's overflow
    /// bound) — far beyond any trainable dimensionality here.
    #[must_use]
    pub fn quantize(
        mode: QuantMode,
        model: &BprModel,
        embeddings: Option<&EmbeddingStore>,
    ) -> Self {
        let mut parts: Vec<(SectionKind, &DenseMatrix)> = vec![
            (SectionKind::UserFactors, &model.user_factors),
            (SectionKind::ItemFactors, &model.item_factors),
        ];
        let emb_matrix;
        if let Some(store) = embeddings {
            emb_matrix =
                DenseMatrix::from_fn(store.len(), store.dim(), |r, c| store.embedding(r)[c]);
            parts.push((SectionKind::Embeddings, &emb_matrix));
        }
        Self::quantize_parts(mode, &parts)
    }

    /// Quantizes an explicit list of `(kind, matrix)` parts. Parts must
    /// be in strictly increasing kind order and non-empty.
    ///
    /// # Panics
    ///
    /// Panics on an empty / misordered part list or a matrix wider than
    /// [`rm_sparse::vecops::MAX_I8_DOT_LEN`].
    #[must_use]
    pub fn quantize_parts(mode: QuantMode, parts: &[(SectionKind, &DenseMatrix)]) -> Self {
        assert!(!parts.is_empty(), "at least one section required");
        for w in parts.windows(2) {
            assert!(
                w[0].0.code() < w[1].0.code(),
                "sections must be in increasing kind order"
            );
        }
        let mut sections = Vec::with_capacity(parts.len());
        for &(kind, m) in parts {
            assert!(
                m.cols() <= vecops::MAX_I8_DOT_LEN,
                "matrix wider than the i8 kernel overflow bound"
            );
            let mut scales = Vec::new();
            let mut codes = Vec::with_capacity(m.rows() * m.cols() * mode.elem_bytes());
            for r in 0..m.rows() {
                match mode {
                    QuantMode::I8 => scales.push(quantize_row_i8(m.row(r), &mut codes)),
                    QuantMode::F16 => {
                        for &v in m.row(r) {
                            codes.extend_from_slice(&vecops::f32_to_f16(v).to_le_bytes());
                        }
                    }
                }
            }
            sections.push((kind, m.rows(), m.cols(), scales, codes));
        }
        let buf = render_payload(mode, &sections);
        // Re-parse what we just rendered: the encoder and decoder cannot
        // drift apart, and construction exercises the full validator.
        Self::decode_payload(&buf).expect("canonical payload decodes")
    }

    /// The storage mode of every section.
    #[must_use]
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Total payload size in bytes (header + scales + codes + padding).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.buf.len()
    }

    /// A zero-copy view of the section of the given kind, if present.
    #[must_use]
    pub fn section(&self, kind: SectionKind) -> Option<QuantMatrix<'_>> {
        let s = self.sections.iter().find(|s| s.kind == kind)?;
        Some(QuantMatrix {
            mode: self.mode,
            rows: s.rows,
            cols: s.cols,
            scales: &s.scales,
            data: &self.buf[s.data_off..s.data_off + s.data_len],
        })
    }

    /// View of the user-factor section, if present.
    #[must_use]
    pub fn user_factors(&self) -> Option<QuantMatrix<'_>> {
        self.section(SectionKind::UserFactors)
    }

    /// View of the item-factor section, if present.
    #[must_use]
    pub fn item_factors(&self) -> Option<QuantMatrix<'_>> {
        self.section(SectionKind::ItemFactors)
    }

    /// View of the embedding section, if present.
    #[must_use]
    pub fn embeddings(&self) -> Option<QuantMatrix<'_>> {
        self.section(SectionKind::Embeddings)
    }
}

/// One quantized section awaiting rendering:
/// `(kind, rows, cols, per-row scales, code bytes)`.
type PendingSection = (SectionKind, usize, usize, Vec<f32>, Vec<u8>);

/// Renders the canonical payload: header, records with recomputed
/// offsets, then the aligned data area.
fn render_payload(mode: QuantMode, sections: &[PendingSection]) -> Vec<u8> {
    let header_len = 12 + 32 * sections.len();
    // First pass: compute canonical offsets.
    let mut offsets = Vec::with_capacity(sections.len());
    let mut off = header_len;
    for (_, _, _, scales, codes) in sections {
        let (scales_off, scales_len) = if scales.is_empty() {
            (0, 0)
        } else {
            let o = align_up(off);
            off = o + 4 * scales.len();
            (o, 4 * scales.len())
        };
        let data_off = align_up(off);
        off = data_off + codes.len();
        offsets.push((scales_off, scales_len, data_off, codes.len()));
    }
    let total = off;
    let mut out = Vec::with_capacity(total);
    push_u32(&mut out, VERSION);
    push_u32(&mut out, mode.code());
    push_u32(&mut out, sections.len());
    for ((kind, rows, cols, _, _), &(so, sl, d_off, dl)) in sections.iter().zip(&offsets) {
        push_u32(&mut out, kind.code());
        push_u32(&mut out, mode.code());
        push_u32(&mut out, *rows);
        push_u32(&mut out, *cols);
        push_u32(&mut out, so);
        push_u32(&mut out, sl);
        push_u32(&mut out, d_off);
        push_u32(&mut out, dl);
    }
    for ((_, _, _, scales, codes), &(so, _, d_off, _)) in sections.iter().zip(&offsets) {
        if !scales.is_empty() {
            out.resize(so, 0);
            for &s in scales {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        out.resize(d_off, 0);
        out.extend_from_slice(codes);
    }
    debug_assert_eq!(out.len(), total);
    out
}

impl PersistModel for QuantArtifact {
    const TAG: u8 = 0x05;
    const KIND: &'static str = "quant";

    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.buf);
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        if payload.len() < 12 {
            return Err(DecodeError::Truncated);
        }
        if read_u32(payload, 0) != VERSION {
            return Err(DecodeError::LengthMismatch);
        }
        let mode = QuantMode::from_code(read_u32(payload, 4)).ok_or(DecodeError::LengthMismatch)?;
        let n_sections = read_u32(payload, 8);
        // At most one section per kind; a huge count is a forgery.
        if n_sections == 0 || n_sections > 3 {
            return Err(DecodeError::LengthMismatch);
        }
        let header_len = 12 + 32 * n_sections;
        if payload.len() < header_len {
            return Err(DecodeError::Truncated);
        }
        let mut sections = Vec::with_capacity(n_sections);
        let mut off = header_len;
        let mut prev_kind: Option<usize> = None;
        for i in 0..n_sections {
            let at = 12 + 32 * i;
            let kind_code = read_u32(payload, at);
            let kind = SectionKind::from_code(kind_code).ok_or(DecodeError::LengthMismatch)?;
            if prev_kind.is_some_and(|p| p >= kind_code) {
                return Err(DecodeError::LengthMismatch);
            }
            prev_kind = Some(kind_code);
            if read_u32(payload, at + 4) != mode.code() {
                return Err(DecodeError::LengthMismatch);
            }
            let rows = read_u32(payload, at + 8);
            let cols = read_u32(payload, at + 12);
            if cols > vecops::MAX_I8_DOT_LEN {
                return Err(DecodeError::LengthMismatch);
            }
            let data_len = rows
                .checked_mul(cols)
                .and_then(|n| n.checked_mul(mode.elem_bytes()))
                .ok_or(DecodeError::LengthMismatch)?;
            // Recompute the canonical offsets; declared values must match
            // exactly, so forged offsets cannot alias or escape.
            let (scales_off, scales_len) = match mode {
                QuantMode::I8 => {
                    let o = align_up(off);
                    off = o + 4 * rows;
                    (o, 4 * rows)
                }
                QuantMode::F16 => (0, 0),
            };
            let data_off = align_up(off);
            off = data_off + data_len;
            if read_u32(payload, at + 16) != scales_off
                || read_u32(payload, at + 20) != scales_len
                || read_u32(payload, at + 24) != data_off
                || read_u32(payload, at + 28) != data_len
            {
                return Err(DecodeError::LengthMismatch);
            }
            if off > payload.len() {
                return Err(DecodeError::Truncated);
            }
            let mut scales = Vec::with_capacity(rows * usize::from(mode == QuantMode::I8));
            if mode == QuantMode::I8 {
                for r in 0..rows {
                    let b = &payload[scales_off + 4 * r..scales_off + 4 * r + 4];
                    let s = f32::from_le_bytes(b.try_into().expect("4 bytes"));
                    if !s.is_finite() || s < 0.0 {
                        return Err(DecodeError::LengthMismatch);
                    }
                    scales.push(s);
                }
            }
            sections.push(Section {
                kind,
                rows,
                cols,
                scales,
                data_off,
                data_len,
            });
        }
        if off != payload.len() {
            return Err(DecodeError::LengthMismatch);
        }
        Ok(Self {
            mode,
            buf: payload.to_vec(),
            sections,
        })
    }
}

/// Zero-copy view of one quantized matrix section: row accessors borrow
/// the artifact's byte buffer directly.
#[derive(Debug, Clone, Copy)]
pub struct QuantMatrix<'a> {
    mode: QuantMode,
    rows: usize,
    cols: usize,
    scales: &'a [f32],
    data: &'a [u8],
}

impl<'a> QuantMatrix<'a> {
    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (elements per row).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage mode.
    #[must_use]
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// The quantized row `r` as a borrowed code slice plus its scale.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> QuantRow<'a> {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        let w = self.cols * self.mode.elem_bytes();
        QuantRow {
            mode: self.mode,
            bytes: &self.data[r * w..(r + 1) * w],
            scale: if self.mode == QuantMode::I8 {
                self.scales[r]
            } else {
                1.0
            },
        }
    }

    /// Scores every row against `q`, writing `rows()` values into `out`
    /// (cleared first). The quantized analogue of
    /// [`rm_sparse::DenseMatrix::matvec_into`].
    ///
    /// The mode dispatch and row slicing are hoisted out of the row loop
    /// (`chunks_exact` instead of per-row [`QuantMatrix::row`] views), and
    /// common byte widths dispatch to a const-width copy of the loop so
    /// the kernel's inner reduction fully unrolls — with a runtime width
    /// the i8 matvec *loses* to the f32 one despite moving 4× fewer
    /// bytes; const-folded it wins. Scores are bit-identical across all
    /// paths: integer accumulation is exact and the f16 reduction order
    /// depends only on row length.
    pub fn matvec_into(&self, q: &QuantRow<'_>, out: &mut Vec<f32>) {
        debug_assert_eq!(self.mode, q.mode, "mixed-mode matvec");
        out.clear();
        out.reserve(self.rows);
        // Covers every factor/embedding width this workspace ships (BPR
        // dims 16–128, embedding dims up to 256, ×2 for f16); anything
        // else takes the runtime-width loop below.
        match self.cols * self.mode.elem_bytes() {
            16 => self.matvec_fixed::<16>(q, out),
            20 => self.matvec_fixed::<20>(q, out),
            32 => self.matvec_fixed::<32>(q, out),
            40 => self.matvec_fixed::<40>(q, out),
            64 => self.matvec_fixed::<64>(q, out),
            128 => self.matvec_fixed::<128>(q, out),
            256 => self.matvec_fixed::<256>(q, out),
            512 => self.matvec_fixed::<512>(q, out),
            w => {
                let rows = self.data.chunks_exact(w).take(self.rows);
                match self.mode {
                    QuantMode::I8 => {
                        out.extend(
                            rows.zip(self.scales)
                                .map(|(row, &s)| vecops::dot_i8_scaled(row, s, q.bytes, q.scale)),
                        );
                    }
                    QuantMode::F16 => {
                        out.extend(rows.map(|row| vecops::dot_f16(row, q.bytes)));
                    }
                }
            }
        }
    }

    /// [`QuantMatrix::matvec_into`]'s row loop monomorphized for a
    /// compile-time row width `W`, so the fused kernels unroll fully.
    fn matvec_fixed<const W: usize>(&self, q: &QuantRow<'_>, out: &mut Vec<f32>) {
        let rows = self.data.chunks_exact(W).take(self.rows);
        let qb = &q.bytes[..W];
        match self.mode {
            QuantMode::I8 => {
                out.extend(
                    rows.zip(self.scales)
                        .map(|(row, &s)| vecops::dot_i8_scaled(row, s, qb, q.scale)),
                );
            }
            QuantMode::F16 => {
                out.extend(rows.map(|row| vecops::dot_f16(row, qb)));
            }
        }
    }

    /// Dequantizes row `r` into `out` (cleared first) — the exact f32
    /// values a quantized score sees, for fallback comparison and tests.
    pub fn dequantize_row_into(&self, r: usize, out: &mut Vec<f32>) {
        self.row(r).dequantize_into(out);
    }
}

/// One quantized vector: borrowed code bytes plus a scale (1.0 for f16,
/// where the scale is a no-op).
#[derive(Debug, Clone, Copy)]
pub struct QuantRow<'a> {
    mode: QuantMode,
    bytes: &'a [u8],
    scale: f32,
}

impl QuantRow<'_> {
    /// The raw code bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        self.bytes
    }

    /// The per-row scale (1.0 in f16 mode).
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Fused quantized dot product with another row of the same mode.
    ///
    /// # Panics
    ///
    /// Panics (debug) on mode or length mismatch, like the underlying
    /// kernels.
    #[must_use]
    pub fn dot(&self, other: &QuantRow<'_>) -> f32 {
        debug_assert_eq!(self.mode, other.mode, "mixed-mode dot");
        match self.mode {
            QuantMode::I8 => {
                vecops::dot_i8_scaled(self.bytes, self.scale, other.bytes, other.scale)
            }
            QuantMode::F16 => vecops::dot_f16(self.bytes, other.bytes),
        }
    }

    /// Dequantizes into `out` (cleared first).
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.clear();
        match self.mode {
            QuantMode::I8 => {
                out.extend(self.bytes.iter().map(|&b| f32::from(b as i8) * self.scale));
            }
            QuantMode::F16 => {
                out.extend(self.bytes.chunks_exact(2).map(|c| {
                    vecops::f16_to_f32(u16::from_le_bytes(c.try_into().expect("2 bytes")))
                }));
            }
        }
    }
}

/// An owned quantized query vector, for scoring an f32 query (a fold-in
/// user, a mean embedding) against a [`QuantMatrix`] without inflating
/// the matrix: quantize the query once, then run the fused kernel per
/// row.
#[derive(Debug, Clone)]
pub struct QuantQuery {
    mode: QuantMode,
    bytes: Vec<u8>,
    scale: f32,
}

impl QuantQuery {
    /// Quantizes `q` with the same per-row rule the artifact uses.
    #[must_use]
    pub fn quantize(mode: QuantMode, q: &[f32]) -> Self {
        let mut bytes = Vec::with_capacity(q.len() * mode.elem_bytes());
        let scale = match mode {
            QuantMode::I8 => quantize_row_i8(q, &mut bytes),
            QuantMode::F16 => {
                for &v in q {
                    bytes.extend_from_slice(&vecops::f32_to_f16(v).to_le_bytes());
                }
                1.0
            }
        };
        Self { mode, bytes, scale }
    }

    /// Borrows the query as a [`QuantRow`] for the dot kernels.
    #[must_use]
    pub fn as_row(&self) -> QuantRow<'_> {
        QuantRow {
            mode: self.mode,
            bytes: &self.bytes,
            scale: self.scale,
        }
    }
}

/// A [`Recommender`] adapter scoring entirely from quantized rows: the
/// accuracy-gate harness ranks through this against the f32 model to
/// measure KPI drift, and serve tests use it as the ground truth for the
/// engine's quantized rank stage.
pub struct QuantRecommender<'a> {
    // Both section views are resolved once here so the scoring methods
    // stay panic-free: `new` is the only place a missing section can
    // abort, and it runs at setup time, never per request.
    users: QuantMatrix<'a>,
    items: QuantMatrix<'a>,
    train: &'a Interactions,
    name: String,
}

impl<'a> QuantRecommender<'a> {
    /// Wraps an artifact that has both factor sections.
    ///
    /// # Panics
    ///
    /// Panics if either factor section is missing or its row count does
    /// not match the interaction matrix.
    #[must_use]
    pub fn new(artifact: &'a QuantArtifact, train: &'a Interactions) -> Self {
        let users = artifact.user_factors().expect("user-factors section");
        let items = artifact.item_factors().expect("item-factors section");
        assert_eq!(users.rows(), train.n_users(), "user rows");
        assert_eq!(items.rows(), train.n_books(), "item rows");
        Self {
            users,
            items,
            train,
            name: format!("bpr-quant-{}", artifact.mode().label()),
        }
    }
}

impl Recommender for QuantRecommender<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, _train: &Interactions) {
        // Already fitted: the artifact is a quantized trained model.
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        self.users
            .row(user.0 as usize)
            .dot(&self.items.row(book.0 as usize))
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let mut scores = Vec::new();
        self.items
            .matvec_into(&self.users.row(user.0 as usize), &mut scores);
        let mut top = rm_util::TopK::new(1);
        let mut out = Vec::new();
        rank_by_scores_into(
            self.items.rows(),
            self.train.seen(user),
            k,
            |b| scores[b as usize],
            &mut top,
            &mut out,
        );
        out
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        self.recommend(user, usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    fn model(users: usize, books: usize, dim: usize, seed: u64) -> BprModel {
        let mut rng = rng_from_seed(seed);
        BprModel {
            user_factors: DenseMatrix::gaussian(users, dim, 0.4, &mut rng),
            item_factors: DenseMatrix::gaussian(books, dim, 0.4, &mut rng),
        }
    }

    fn store(rows: usize, dim: usize, seed: u64) -> EmbeddingStore {
        let mut rng = rng_from_seed(seed);
        EmbeddingStore::from_matrix(DenseMatrix::gaussian(rows, dim, 1.0, &mut rng))
    }

    #[test]
    fn i8_round_trip_preserves_sections_and_dims() {
        let m = model(7, 11, 6, 3);
        let st = store(11, 5, 4);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, Some(&st));
        let back = QuantArtifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        let u = back.user_factors().unwrap();
        assert_eq!((u.rows(), u.cols()), (7, 6));
        let i = back.item_factors().unwrap();
        assert_eq!((i.rows(), i.cols()), (11, 6));
        let e = back.embeddings().unwrap();
        assert_eq!((e.rows(), e.cols()), (11, 5));
    }

    #[test]
    fn f16_round_trip_and_optional_embeddings() {
        let m = model(4, 6, 3, 9);
        let a = QuantArtifact::quantize(QuantMode::F16, &m, None);
        let back = QuantArtifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        assert!(back.embeddings().is_none());
        assert_eq!(back.mode(), QuantMode::F16);
    }

    #[test]
    fn encoding_is_deterministic() {
        let m = model(5, 8, 4, 7);
        let st = store(8, 6, 8);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, Some(&st)).to_bytes();
        let b = QuantArtifact::quantize(QuantMode::I8, &m, Some(&st)).to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn i8_per_element_error_is_within_half_a_step() {
        let m = model(6, 9, 12, 21);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, None);
        let items = a.item_factors().unwrap();
        let mut deq = Vec::new();
        for r in 0..items.rows() {
            let row = items.row(r);
            row.dequantize_into(&mut deq);
            for (orig, got) in m.item_factors.row(r).iter().zip(&deq) {
                assert!(
                    (orig - got).abs() <= row.scale() * 0.5 + 1e-7,
                    "row {r}: {orig} vs {got} (scale {})",
                    row.scale()
                );
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale() {
        let m = BprModel {
            user_factors: DenseMatrix::zeros(2, 4),
            item_factors: DenseMatrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, 0.0]),
        };
        let a = QuantArtifact::quantize(QuantMode::I8, &m, None);
        let u = a.user_factors().unwrap();
        assert_eq!(u.row(0).scale(), 0.0);
        assert_eq!(u.row(0).dot(&a.item_factors().unwrap().row(0)), 0.0);
        // The extreme element maps to the full-scale code exactly.
        let i = a.item_factors().unwrap();
        let mut deq = Vec::new();
        i.dequantize_row_into(0, &mut deq);
        assert!((deq[1] - (-2.0)).abs() < 1e-6);
    }

    #[test]
    fn quantized_dot_tracks_f32_dot() {
        let m = model(10, 20, 16, 5);
        for &mode in &[QuantMode::I8, QuantMode::F16] {
            let a = QuantArtifact::quantize(mode, &m, None);
            let (u, i) = (a.user_factors().unwrap(), a.item_factors().unwrap());
            for r in 0..u.rows() {
                for b in 0..i.rows() {
                    let exact = vecops::dot(m.user_factors.row(r), m.item_factors.row(b));
                    let quant = u.row(r).dot(&i.row(b));
                    // dim 16, values ~N(0, 0.4): half-step error per
                    // element bounds the dot error well inside 0.05.
                    assert!(
                        (exact - quant).abs() < 0.05,
                        "{} r{r} b{b}: {exact} vs {quant}",
                        mode.label()
                    );
                }
            }
        }
    }

    #[test]
    fn query_quantized_matvec_matches_row_dots() {
        let m = model(3, 12, 8, 13);
        for &mode in &[QuantMode::I8, QuantMode::F16] {
            let a = QuantArtifact::quantize(mode, &m, None);
            let items = a.item_factors().unwrap();
            let q = QuantQuery::quantize(mode, m.user_factors.row(1));
            let mut scores = Vec::new();
            items.matvec_into(&q.as_row(), &mut scores);
            assert_eq!(scores.len(), 12);
            for (b, &s) in scores.iter().enumerate() {
                assert_eq!(s, items.row(b).dot(&q.as_row()), "row {b}");
                let exact = vecops::dot(m.user_factors.row(1), m.item_factors.row(b));
                assert!((s - exact).abs() < 0.05, "row {b}: {s} vs {exact}");
            }
        }
    }

    #[test]
    fn recommender_adapter_ranks_like_dequantized_scores() {
        use crate::Recommender;
        let m = model(4, 9, 6, 31);
        let train = Interactions::from_pairs(
            4,
            9,
            &[
                (UserIdx(0), BookIdx(2)),
                (UserIdx(1), BookIdx(0)),
                (UserIdx(1), BookIdx(5)),
            ],
        );
        let a = QuantArtifact::quantize(QuantMode::I8, &m, None);
        let rec = QuantRecommender::new(&a, &train);
        assert_eq!(rec.name(), "bpr-quant-i8");
        for u in 0..4u32 {
            let got = rec.recommend(UserIdx(u), 3);
            assert_eq!(got.len(), 3);
            for &b in train.seen(UserIdx(u)) {
                assert!(!got.contains(&b), "seen book {b} recommended");
            }
            // Ranking agrees with brute-force over the adapter's scores.
            let brute = crate::rank_by_scores(9, train.seen(UserIdx(u)), 3, |b| {
                rec.score(UserIdx(u), BookIdx(b))
            });
            assert_eq!(got, brute, "user {u}");
        }
    }

    #[test]
    fn truncation_detected_at_every_boundary() {
        let m = model(3, 5, 4, 17);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, Some(&store(5, 3, 18)));
        let bytes = a.to_bytes();
        for cut in [
            9,  // mid-header
            20, // mid-record
            bytes.len() / 2,
            bytes.len() - 9, // checksum clipped
        ] {
            assert!(
                QuantArtifact::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn corruption_and_wrong_tag_detected() {
        let m = model(3, 5, 4, 19);
        let a = QuantArtifact::quantize(QuantMode::F16, &m, None);
        let mut bytes = a.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(
            QuantArtifact::from_bytes(&bytes),
            Err(DecodeError::BadChecksum)
        );
        let bpr_bytes = crate::persist::encode(&m);
        assert_eq!(
            QuantArtifact::from_bytes(&bpr_bytes),
            Err(DecodeError::WrongModel {
                expected: QuantArtifact::TAG,
                found: BprModel::TAG
            })
        );
    }

    /// Tampers with payload bytes and re-signs the container checksum, so
    /// only the structural validator stands between the forgery and a
    /// formed view — mirroring the PR 8 ann.rmodel forged-partition test.
    fn resign(bytes: &mut [u8]) {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let body_end = bytes.len() - 8;
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in &bytes[..body_end] {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        bytes[body_end..].copy_from_slice(&h.to_le_bytes());
    }

    #[test]
    fn forged_section_offsets_rejected() {
        let m = model(4, 6, 4, 23);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, None);
        let base = a.to_bytes();
        // Payload starts at byte 9; record 0 starts at payload offset 12.
        let rec0 = 9 + 12;
        // (field offset within record, delta) — forge each offset/length
        // field and the dimension fields that feed the canonical layout.
        for (field, delta) in [
            (16usize, 64u32), // scales_off pushed forward
            (20, 4),          // scales_len inflated
            (24, 64),         // data_off aliased into the next section
            (28, 1),          // data_len off by one
            (8, 1),           // rows inflated without moving data
        ] {
            let mut bytes = base.clone();
            let at = rec0 + field;
            let v = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) + delta;
            bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
            resign(&mut bytes);
            assert!(
                QuantArtifact::from_bytes(&bytes).is_err(),
                "forged field at record offset {field} decoded"
            );
        }
    }

    #[test]
    fn forged_header_rejected() {
        let m = model(2, 3, 4, 29);
        let a = QuantArtifact::quantize(QuantMode::F16, &m, None);
        let base = a.to_bytes();
        // (payload offset, new value): bad version, bad mode, zero and
        // oversized section counts, duplicate/unknown section kind.
        for (off, v) in [
            (0usize, 9u32), // version
            (4, 7),         // mode
            (8, 0),         // n_sections = 0
            (8, 200),       // n_sections huge
            (12, 1),        // first kind = item-factors, second also 1
            (12, 9),        // unknown kind
        ] {
            let mut bytes = base.clone();
            bytes[9 + off..9 + off + 4].copy_from_slice(&v.to_le_bytes());
            resign(&mut bytes);
            assert!(
                QuantArtifact::from_bytes(&bytes).is_err(),
                "forged header word at {off} decoded"
            );
        }
    }

    #[test]
    fn nan_scale_rejected() {
        let m = model(2, 3, 4, 37);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, None);
        let mut bytes = a.to_bytes();
        // First scale lives at the first 64-aligned payload offset past
        // the header (2 sections → header 76 → scales at 128).
        let scales_off = 9 + 128;
        bytes[scales_off..scales_off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        resign(&mut bytes);
        assert!(QuantArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn sections_are_cache_line_aligned() {
        let m = model(3, 5, 4, 41);
        let a = QuantArtifact::quantize(QuantMode::I8, &m, Some(&store(5, 3, 42)));
        for s in &a.sections {
            assert_eq!(s.data_off % ALIGN, 0, "{:?}", s.kind);
        }
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..512)
        ) {
            let _ = QuantArtifact::from_bytes(&bytes);
        }

        #[test]
        fn arbitrary_payloads_never_panic(
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..512)
        ) {
            // Drive the payload validator directly (bypassing the
            // checksum, which would otherwise reject nearly everything).
            let _ = QuantArtifact::decode_payload(&payload);
        }

        #[test]
        fn round_trip_arbitrary_dims(
            users in 1usize..10,
            books in 1usize..10,
            dim in 1usize..8,
            seed in 0u64..200,
            mode_bit in 0u8..2,
        ) {
            let mode = if mode_bit == 0 { QuantMode::I8 } else { QuantMode::F16 };
            let m = model(users, books, dim, seed);
            let a = QuantArtifact::quantize(mode, &m, None);
            let back = QuantArtifact::from_bytes(&a.to_bytes()).unwrap();
            proptest::prop_assert_eq!(back, a);
        }
    }
}
