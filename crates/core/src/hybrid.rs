//! Hybrid recommendation: a weighted blend of two recommenders' rankings.
//!
//! The paper's related work repeatedly points at CB+CF hybrids (Salter &
//! Antonopoulos 2006; Christakou et al. 2007); its own Fig. 4 shows the
//! natural division of labour — CF for short histories, CB for long ones.
//! [`Blend`] combines any two fitted recommenders by mixing their
//! *rank-normalised* scores (raw score scales are incomparable across
//! model families), so a `Blend::new(bpr, closest, 0.5)` is the obvious
//! production follow-up the paper gestures at.

use crate::{rank_by_scores, rank_by_scores_into, Recommender};
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;

/// Weighted rank-blend of two recommenders.
pub struct Blend<A, B> {
    first: A,
    second: B,
    /// Weight of `first`'s contribution in `[0, 1]`.
    weight: f32,
    train: Option<Interactions>,
}

impl<A: Recommender, B: Recommender> Blend<A, B> {
    /// Creates the blend; `weight` is the share of the first recommender.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is outside `[0, 1]`.
    #[must_use]
    pub fn new(first: A, second: B, weight: f32) -> Self {
        assert!((0.0..=1.0).contains(&weight), "blend weight out of range");
        Self {
            first,
            second,
            weight,
            train: None,
        }
    }

    /// The two component recommenders.
    #[must_use]
    pub fn components(&self) -> (&A, &B) {
        (&self.first, &self.second)
    }

    /// The fitted training matrix, or `None` before [`Recommender::fit`].
    /// Request-path methods degrade through this instead of panicking:
    /// an unfitted blend on the serve path answers empty rather than
    /// poisoning a worker.
    fn fitted(&self) -> Option<&Interactions> {
        self.train.as_ref()
    }

    /// Rank-normalised blended scores: each component contributes
    /// `1 - rank/n` for the books it ranks (0 for unranked), mixed by the
    /// blend weight.
    fn blended_scores(&self, user: UserIdx) -> Vec<f32> {
        let n_books = self.fitted().map_or(0, |t| t.n_books());
        let mut scores = vec![0.0f32; n_books];
        for (rec, w) in [
            (&self.first as &dyn Recommender, self.weight),
            (&self.second, 1.0 - self.weight),
        ] {
            if w == 0.0 {
                continue;
            }
            let ranking = rec.rank_all(user);
            let len = ranking.len().max(1) as f32;
            for (pos, &b) in ranking.iter().enumerate() {
                scores[b as usize] += w * (1.0 - pos as f32 / len);
            }
        }
        scores
    }
}

impl<A: Recommender, B: Recommender> Recommender for Blend<A, B> {
    fn name(&self) -> &str {
        "Hybrid Blend"
    }

    fn fit(&mut self, train: &Interactions) {
        self.first.fit(train);
        self.second.fit(train);
        self.train = Some(train.clone());
    }

    fn score(&self, user: UserIdx, book: BookIdx) -> f32 {
        self.blended_scores(user)
            .get(book.index())
            .copied()
            .unwrap_or(0.0)
    }

    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        let Some(train) = self.fitted() else {
            return Vec::new();
        };
        let scores = self.blended_scores(user);
        rank_by_scores(train.n_books(), train.seen(user), k, |b| scores[b as usize])
    }

    fn recommend_batch_into(&self, users: &[UserIdx], k: usize, out: &mut Vec<Vec<u32>>) {
        let Some(train) = self.fitted() else {
            out.clear();
            out.resize_with(users.len(), Vec::new);
            return;
        };
        let n_books = train.n_books();
        out.resize_with(users.len(), Vec::new);
        // The blended-score buffer, the components' ranking pool, and the
        // TopK are shared across the batch (components that override
        // `recommend_batch_into` also reuse the pool's inner buffer).
        let mut scores = Vec::with_capacity(n_books);
        let mut component_pool: Vec<Vec<u32>> = Vec::new();
        let mut top = rm_util::TopK::new(1);
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            scores.clear();
            scores.resize(n_books, 0.0);
            for (rec, w) in [
                (&self.first as &dyn Recommender, self.weight),
                (&self.second, 1.0 - self.weight),
            ] {
                if w == 0.0 {
                    continue;
                }
                // rank_all(u) by contract equals recommend(u, everything),
                // which the pooled batch path answers byte-identically.
                rec.recommend_batch_into(std::slice::from_ref(&u), usize::MAX, &mut component_pool);
                let ranking = &component_pool[0];
                let len = ranking.len().max(1) as f32;
                for (pos, &b) in ranking.iter().enumerate() {
                    scores[b as usize] += w * (1.0 - pos as f32 / len);
                }
            }
            rank_by_scores_into(
                n_books,
                train.seen(u),
                k,
                |b| scores[b as usize],
                &mut top,
                slot,
            );
        }
    }

    fn rank_all(&self, user: UserIdx) -> Vec<u32> {
        let n_books = self.fitted().map_or(0, |t| t.n_books());
        self.recommend(user, n_books)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::most_read::MostReadItems;
    use crate::random::RandomItems;

    fn train() -> Interactions {
        Interactions::from_pairs(
            2,
            6,
            &[
                (UserIdx(0), BookIdx(0)),
                (UserIdx(1), BookIdx(0)),
                (UserIdx(1), BookIdx(1)),
            ],
        )
    }

    #[test]
    fn weight_one_equals_first_component() {
        let t = train();
        let mut blend = Blend::new(MostReadItems::new(), RandomItems::new(1), 1.0);
        blend.fit(&t);
        let mut most_read = MostReadItems::new();
        most_read.fit(&t);
        assert_eq!(blend.rank_all(UserIdx(0)), most_read.rank_all(UserIdx(0)));
    }

    #[test]
    fn weight_zero_equals_second_component() {
        let t = train();
        let mut blend = Blend::new(MostReadItems::new(), RandomItems::new(1), 0.0);
        blend.fit(&t);
        let mut random = RandomItems::new(1);
        random.fit(&t);
        assert_eq!(blend.rank_all(UserIdx(0)), random.rank_all(UserIdx(0)));
    }

    #[test]
    fn blend_excludes_seen() {
        let t = train();
        let mut blend = Blend::new(MostReadItems::new(), RandomItems::new(1), 0.5);
        blend.fit(&t);
        let recs = blend.rank_all(UserIdx(1));
        assert!(!recs.contains(&0));
        assert!(!recs.contains(&1));
        assert_eq!(recs.len(), 4);
    }

    #[test]
    fn agreement_wins_over_disagreement() {
        // Two MostRead components agree perfectly: the blend must equal
        // them at any weight.
        let t = train();
        let mut blend = Blend::new(MostReadItems::new(), MostReadItems::new(), 0.3);
        blend.fit(&t);
        let mut single = MostReadItems::new();
        single.fit(&t);
        assert_eq!(blend.rank_all(UserIdx(0)), single.rank_all(UserIdx(0)));
    }

    #[test]
    fn batch_matches_single_calls() {
        let t = train();
        let mut blend = Blend::new(MostReadItems::new(), MostReadItems::new(), 0.4);
        blend.fit(&t);
        let users = [UserIdx(0), UserIdx(1), UserIdx(0)];
        for k in [1usize, 3, usize::MAX] {
            let batch = blend.recommend_batch(&users, k);
            assert_eq!(batch.len(), users.len());
            for (&u, got) in users.iter().zip(&batch) {
                assert_eq!(got, &blend.recommend(u, k), "user {u:?} k {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_weight_rejected() {
        let _ = Blend::new(MostReadItems::new(), RandomItems::new(1), 1.5);
    }
}
