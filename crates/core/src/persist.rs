//! Binary persistence of trained models.
//!
//! A deployed recommendation service (the Reading&Machine VR kiosk) trains
//! offline and serves online; this module provides the handoff format — a
//! small self-describing little-endian codec with a magic header, a
//! per-model tag byte, and a trailing checksum, no external serialisation
//! dependencies.
//!
//! Container layout (version 2): `magic "RMODEL\0\x02" (8) | tag (1) |
//! model payload | fnv64 of all preceding bytes`. Each persistable model
//! implements [`PersistModel`] — a payload codec plus a unique tag — and
//! inherits [`PersistModel::to_bytes`] / [`PersistModel::from_bytes`],
//! which handle the container (magic, tag dispatch, checksum) uniformly.
//!
//! Version-1 files (`"RMBPR\0\0\x01"`, BPR only, no tag byte) are still
//! decoded by [`BprModel::from_bytes`] and [`decode`]; the seed codec
//! never wrote any other model kind.

use crate::bpr::BprModel;
use crate::most_read::MostReadItems;
use rm_embed::{AnnArtifact, EmbeddingStore, IvfIndex};
use rm_sparse::DenseMatrix;
use std::collections::BTreeMap;

/// Container magic: "RMODEL\0\x02" (version 2, tagged).
const MAGIC: [u8; 8] = *b"RMODEL\0\x02";

/// Version-1 magic: "RMBPR\0\0\x01" (BPR factors only, untagged).
const LEGACY_BPR_MAGIC: [u8; 8] = *b"RMBPR\0\0\x01";

/// Errors arising when decoding a serialised model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Magic bytes mismatch (not a model file / wrong version).
    BadMagic,
    /// The file holds a different model kind than requested.
    WrongModel {
        /// The tag the caller asked for.
        expected: u8,
        /// The tag found in the file.
        found: u8,
    },
    /// Declared dimensions don't match the payload length.
    LengthMismatch,
    /// Checksum mismatch (corrupted payload).
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "input truncated"),
            Self::BadMagic => write!(f, "bad magic (not a model file, or unsupported version)"),
            Self::WrongModel { expected, found } => {
                write!(
                    f,
                    "model tag mismatch (expected {expected:#04x}, found {found:#04x})"
                )
            }
            Self::LengthMismatch => write!(f, "payload length does not match declared dimensions"),
            Self::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn fnv64(bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A model with a binary artifact codec.
///
/// Implementations define only the payload layout; the container (magic,
/// tag byte, trailing checksum) is handled by the provided
/// [`PersistModel::to_bytes`] / [`PersistModel::from_bytes`], so every
/// artifact on disk is self-describing and corruption-evident the same
/// way.
pub trait PersistModel: Sized {
    /// Unique model-kind tag stored after the magic.
    const TAG: u8;

    /// Human-readable model kind (manifest entries, error context).
    const KIND: &'static str;

    /// Appends the model payload (everything between tag and checksum).
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decodes the payload produced by
    /// [`PersistModel::encode_payload`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the payload is malformed.
    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError>;

    /// Serialises the model into a tagged, checksummed container.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 1 + 8);
        out.extend_from_slice(&MAGIC);
        out.push(Self::TAG);
        self.encode_payload(&mut out);
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialises a model from a tagged container.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the input is truncated, has the
    /// wrong magic, carries a different model's tag, declares dimensions
    /// inconsistent with the payload, or fails the checksum.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_payload(container_payload(bytes, Self::TAG)?)
    }
}

/// Validates the container (magic, checksum, then tag) and returns the
/// payload slice. The checksum is verified *before* the tag so a flipped
/// tag byte reports corruption, not a model-kind mismatch.
fn container_payload(bytes: &[u8], expected_tag: u8) -> Result<&[u8], DecodeError> {
    if bytes.len() < 8 + 1 + 8 {
        return Err(DecodeError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let body_end = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv64(&bytes[..body_end]) != declared {
        return Err(DecodeError::BadChecksum);
    }
    if bytes[8] != expected_tag {
        return Err(DecodeError::WrongModel {
            expected: expected_tag,
            found: bytes[8],
        });
    }
    Ok(&bytes[9..body_end])
}

/// The model tag stored in a container, without decoding the payload.
/// `None` when the input is not a version-2 container.
#[must_use]
pub fn peek_tag(bytes: &[u8]) -> Option<u8> {
    (bytes.len() >= 8 + 1 + 8 && bytes[..8] == MAGIC).then(|| bytes[8])
}

pub(crate) fn push_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&u32::try_from(v).expect("dimension fits u32").to_le_bytes());
}

pub(crate) fn read_u32(bytes: &[u8], at: usize) -> usize {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize
}

/// Reads a `f32` little-endian payload of exactly `n` values.
fn read_f32s(bytes: &[u8], n: usize) -> Result<Vec<f32>, DecodeError> {
    if bytes.len() != 4 * n {
        return Err(DecodeError::LengthMismatch);
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

impl PersistModel for BprModel {
    const TAG: u8 = 0x01;
    const KIND: &'static str = "bpr";

    /// `users u32 | books u32 | factors u32 | user_factors f32×(users·L) |
    /// item_factors f32×(books·L)` — identical to the version-1 body, so
    /// the legacy path shares this decoder.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        let factors = self.user_factors.cols();
        assert_eq!(factors, self.item_factors.cols(), "factor dims disagree");
        push_u32(out, self.user_factors.rows());
        push_u32(out, self.item_factors.rows());
        push_u32(out, factors);
        for &v in self.user_factors.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in self.item_factors.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        if payload.len() < 12 {
            return Err(DecodeError::Truncated);
        }
        let users = read_u32(payload, 0);
        let books = read_u32(payload, 4);
        let factors = read_u32(payload, 8);
        let n = (users + books)
            .checked_mul(factors)
            .ok_or(DecodeError::LengthMismatch)?;
        let floats = read_f32s(&payload[12..], n)?;
        let (user_data, item_data) = floats.split_at(users * factors);
        Ok(Self {
            user_factors: DenseMatrix::from_vec(users, factors, user_data.to_vec()),
            item_factors: DenseMatrix::from_vec(books, factors, item_data.to_vec()),
        })
    }

    /// Accepts both the version-2 container and version-1
    /// (`"RMBPR\0\0\x01"`) files written by the seed codec.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() >= 8 && bytes[..8] == LEGACY_BPR_MAGIC {
            return decode_legacy_bpr(bytes);
        }
        Self::decode_payload(container_payload(bytes, Self::TAG)?)
    }
}

/// Version-1 layout: `magic (8) | users u32 | books u32 | factors u32 |
/// f32 payload | fnv64` — the body matches the version-2 BPR payload.
fn decode_legacy_bpr(bytes: &[u8]) -> Result<BprModel, DecodeError> {
    if bytes.len() < 8 + 12 + 8 {
        return Err(DecodeError::Truncated);
    }
    let body_end = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv64(&bytes[..body_end]) != declared {
        return Err(DecodeError::BadChecksum);
    }
    BprModel::decode_payload(&bytes[8..body_end])
}

impl PersistModel for MostReadItems {
    const TAG: u8 = 0x02;
    const KIND: &'static str = "most-read";

    /// `books u32 | counts u64×books`. The popularity order is derived,
    /// not stored: the decoder rebuilds it from the counts.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        let counts = self.counts();
        push_u32(out, counts.len());
        for &c in counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        if payload.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let books = read_u32(payload, 0);
        let body = &payload[4..];
        if body.len() != 8 * books {
            return Err(DecodeError::LengthMismatch);
        }
        let counts: Vec<u64> = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Ok(Self::from_counts(counts))
    }
}

impl PersistModel for EmbeddingStore {
    const TAG: u8 = 0x03;
    const KIND: &'static str = "embeddings";

    /// `rows u32 | dim u32 | embeddings f32×(rows·dim)`. Rows are the
    /// already-normalised unit vectors; the decoder restores them verbatim
    /// so a round trip is bit-exact.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        push_u32(out, self.len());
        push_u32(out, self.dim());
        for i in 0..self.len() {
            for &v in self.embedding(i) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        if payload.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let rows = read_u32(payload, 0);
        let dim = read_u32(payload, 4);
        let n = rows.checked_mul(dim).ok_or(DecodeError::LengthMismatch)?;
        let data = read_f32s(&payload[8..], n)?;
        Ok(Self::from_unit_matrix(DenseMatrix::from_vec(
            rows, dim, data,
        )))
    }
}

/// Bounds-checked sequential reader for variable-length payloads (the
/// ANN artifact's list-of-lists layout can't be validated with a single
/// up-front length equation the way the matrix payloads can).
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn u32(&mut self) -> Result<usize, DecodeError> {
        if self.bytes.len() - self.at < 4 {
            return Err(DecodeError::Truncated);
        }
        let v = read_u32(self.bytes, self.at);
        self.at += 4;
        Ok(v)
    }

    /// Reads `n` little-endian `f32`s, checking the remaining length
    /// *before* allocating so a garbage count can't request gigabytes.
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, DecodeError> {
        let need = n.checked_mul(4).ok_or(DecodeError::LengthMismatch)?;
        if self.bytes.len() - self.at < need {
            return Err(DecodeError::Truncated);
        }
        let out = self.bytes[self.at..self.at + need]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        self.at += need;
        Ok(out)
    }
}

/// One IVF index: `nlist u32 | dim u32 | n_items u32 | n_lists u32 |
/// centroids f32×(nlist·dim) | per list (centroid u32 | len u32 |
/// items u32×len)`. Lists serialise in `BTreeMap` order, so equal
/// indexes produce equal bytes.
fn encode_ivf(idx: &IvfIndex, out: &mut Vec<u8>) {
    push_u32(out, idx.nlist());
    push_u32(out, idx.dim());
    push_u32(out, idx.n_items() as usize);
    push_u32(out, idx.n_lists());
    for &v in idx.centroids().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for (&c, items) in idx.lists() {
        push_u32(out, c as usize);
        push_u32(out, items.len());
        for &i in items {
            push_u32(out, i as usize);
        }
    }
}

fn decode_ivf(cur: &mut Cursor<'_>) -> Result<IvfIndex, DecodeError> {
    let nlist = cur.u32()?;
    let dim = cur.u32()?;
    let n_items = cur.u32()? as u32;
    let n_lists = cur.u32()?;
    let n = nlist.checked_mul(dim).ok_or(DecodeError::LengthMismatch)?;
    let centroids = DenseMatrix::from_vec(nlist, dim, cur.f32s(n)?);
    let mut lists: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for _ in 0..n_lists {
        let c = cur.u32()? as u32;
        let len = cur.u32()?;
        let mut items = Vec::new();
        for _ in 0..len {
            items.push(cur.u32()? as u32);
        }
        if lists.insert(c, items).is_some() {
            return Err(DecodeError::LengthMismatch);
        }
    }
    // from_parts re-validates the partition invariant (every item id in
    // range and listed exactly once), so a tampered-but-checksummed
    // payload still decodes to an error, never a broken index.
    IvfIndex::from_parts(centroids, lists, n_items).ok_or(DecodeError::LengthMismatch)
}

impl PersistModel for AnnArtifact {
    const TAG: u8 = 0x04;
    const KIND: &'static str = "ann";

    /// `flags u32 (bit 0 = content index present, bit 1 = cf index
    /// present) | [content index] | [cf index]`, each index encoded by
    /// [`encode_ivf`].
    fn encode_payload(&self, out: &mut Vec<u8>) {
        let flags = usize::from(self.content.is_some()) | (usize::from(self.cf.is_some()) << 1);
        push_u32(out, flags);
        for idx in [self.content.as_ref(), self.cf.as_ref()]
            .into_iter()
            .flatten()
        {
            encode_ivf(idx, out);
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut cur = Cursor {
            bytes: payload,
            at: 0,
        };
        let flags = cur.u32()?;
        if flags & !0b11 != 0 {
            return Err(DecodeError::LengthMismatch);
        }
        let content = if flags & 0b01 != 0 {
            Some(decode_ivf(&mut cur)?)
        } else {
            None
        };
        let cf = if flags & 0b10 != 0 {
            Some(decode_ivf(&mut cur)?)
        } else {
            None
        };
        if cur.at != payload.len() {
            return Err(DecodeError::LengthMismatch);
        }
        Ok(Self { content, cf })
    }
}

/// Serialises a BPR model (alias for [`PersistModel::to_bytes`], kept for
/// the original BPR-only API).
#[must_use]
pub fn encode(model: &BprModel) -> Vec<u8> {
    model.to_bytes()
}

/// Deserialises a BPR model from either codec version (alias for
/// [`PersistModel::from_bytes`], kept for the original BPR-only API).
///
/// # Errors
///
/// Returns a [`DecodeError`] when the input is truncated, has the wrong
/// magic, inconsistent dimensions, or a bad checksum.
pub fn decode(bytes: &[u8]) -> Result<BprModel, DecodeError> {
    BprModel::from_bytes(bytes)
}

/// Writes `bytes` to `path` atomically: the data goes to a `.tmp`
/// sibling first, is fsync'd, and is renamed over the destination, so a
/// crash mid-publication leaves either the old artifact or the new one —
/// never a torn file. The parent directory is fsync'd after the rename
/// (best-effort: some filesystems refuse directory handles) so the
/// rename itself survives a power loss.
///
/// # Errors
///
/// Returns the underlying [`std::io::Error`] when the temporary file
/// cannot be created, written, synced, or renamed.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    fn model() -> BprModel {
        let mut rng = rng_from_seed(3);
        BprModel {
            user_factors: DenseMatrix::gaussian(7, 4, 0.3, &mut rng),
            item_factors: DenseMatrix::gaussian(11, 4, 0.3, &mut rng),
        }
    }

    /// Re-creates a version-1 file byte stream (what the seed codec
    /// wrote): legacy magic, untagged body, fnv64 checksum.
    fn encode_legacy(model: &BprModel) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&LEGACY_BPR_MAGIC);
        model.encode_payload(&mut out);
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let bytes = encode(&m);
        let back = decode(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn legacy_files_still_decode() {
        let m = model();
        let v1 = encode_legacy(&m);
        assert_eq!(decode(&v1).unwrap(), m);
        // And legacy corruption is still detected.
        let mut bad = v1.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert_eq!(decode(&bad), Err(DecodeError::BadChecksum));
        assert_eq!(decode(&v1[..v1.len() - 1]), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&model());
        assert_eq!(decode(&bytes[..10]), Err(DecodeError::Truncated));
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]),
            Err(DecodeError::BadChecksum)
        );
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&model());
        bytes[0] ^= 0xFF;
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode(&model());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(decode(&bytes), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn dimension_tampering_detected() {
        let mut bytes = encode(&model());
        // Inflate the user count (first payload u32, after magic + tag).
        bytes[9] = bytes[9].wrapping_add(1);
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::LengthMismatch | DecodeError::BadChecksum)
        ));
    }

    #[test]
    fn wrong_tag_detected() {
        let m = fitted_most_read();
        let bytes = m.to_bytes();
        // Same container, different model type.
        let err = BprModel::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            DecodeError::WrongModel {
                expected: BprModel::TAG,
                found: MostReadItems::TAG
            }
        );
        assert!(err.to_string().contains("tag mismatch"));
    }

    #[test]
    fn peek_tag_identifies_kind() {
        assert_eq!(peek_tag(&encode(&model())), Some(BprModel::TAG));
        assert_eq!(
            peek_tag(&fitted_most_read().to_bytes()),
            Some(MostReadItems::TAG)
        );
        assert_eq!(peek_tag(b"short"), None);
        assert_eq!(peek_tag(&encode_legacy(&model())), None);
    }

    #[test]
    fn empty_model_round_trips() {
        let m = BprModel {
            user_factors: DenseMatrix::zeros(0, 3),
            item_factors: DenseMatrix::zeros(0, 3),
        };
        let back = decode(&encode(&m)).unwrap();
        assert_eq!(back.user_factors.rows(), 0);
        assert_eq!(back.item_factors.cols(), 3);
    }

    fn fitted_most_read() -> MostReadItems {
        use crate::Recommender;
        use rm_dataset::ids::{BookIdx, UserIdx};
        use rm_dataset::interactions::Interactions;
        let train = Interactions::from_pairs(
            3,
            5,
            &[
                (UserIdx(0), BookIdx(0)),
                (UserIdx(1), BookIdx(0)),
                (UserIdx(2), BookIdx(3)),
            ],
        );
        let mut m = MostReadItems::new();
        m.fit(&train);
        m
    }

    #[test]
    fn most_read_round_trip_preserves_order_and_counts() {
        use rm_dataset::ids::BookIdx;
        let m = fitted_most_read();
        let back = MostReadItems::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.counts(), m.counts());
        assert_eq!(back.count(BookIdx(0)), 2);
        assert_eq!(back.popularity_order(), m.popularity_order());
    }

    #[test]
    fn embedding_store_round_trip_is_exact() {
        let mut rng = rng_from_seed(9);
        let store = EmbeddingStore::from_matrix(DenseMatrix::gaussian(6, 5, 1.0, &mut rng));
        let back = EmbeddingStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back.len(), store.len());
        assert_eq!(back.dim(), store.dim());
        for i in 0..store.len() {
            assert_eq!(back.embedding(i), store.embedding(i), "row {i}");
        }
    }

    proptest::proptest! {
        #[test]
        fn round_trip_arbitrary_dims(
            users in 0usize..12,
            books in 0usize..12,
            factors in 1usize..6,
            seed in 0u64..1000,
        ) {
            let mut rng = rng_from_seed(seed);
            let m = BprModel {
                user_factors: DenseMatrix::gaussian(users, factors, 0.5, &mut rng),
                item_factors: DenseMatrix::gaussian(books, factors, 0.5, &mut rng),
            };
            let back = decode(&encode(&m)).unwrap();
            proptest::prop_assert_eq!(m, back);
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..256)) {
            // Decoding garbage must fail cleanly, never panic.
            let _ = decode(&bytes);
            let _ = MostReadItems::from_bytes(&bytes);
            let _ = EmbeddingStore::from_bytes(&bytes);
            let _ = AnnArtifact::from_bytes(&bytes);
        }

        #[test]
        fn bit_flips_never_round_trip_silently(
            seed in 0u64..500,
            flip_bit in 0usize..64,
        ) {
            // Flipping any single bit must either fail to decode or (for
            // a flip inside the checksum trailer caught by the checksum)
            // never produce a *different* model silently.
            let mut rng = rng_from_seed(seed);
            let m = BprModel {
                user_factors: DenseMatrix::gaussian(3, 2, 0.5, &mut rng),
                item_factors: DenseMatrix::gaussian(4, 2, 0.5, &mut rng),
            };
            let mut bytes = encode(&m);
            let pos = flip_bit % (bytes.len() * 8);
            bytes[pos / 8] ^= 1 << (pos % 8);
            proptest::prop_assert!(decode(&bytes).is_err(), "bit {pos} survived");
        }
    }

    fn ann_artifact() -> AnnArtifact {
        use rm_embed::{IvfConfig, IvfIndex};
        let mut rng = rng_from_seed(17);
        let store = EmbeddingStore::from_matrix(DenseMatrix::gaussian(40, 6, 1.0, &mut rng));
        let factors = DenseMatrix::gaussian(40, 4, 0.5, &mut rng);
        let cfg = IvfConfig {
            nlist: 5,
            iters: 3,
            seed: 2,
            train_sample: 0,
        };
        AnnArtifact {
            content: Some(IvfIndex::build(&store, &cfg)),
            cf: Some(IvfIndex::build_mips(&factors, &cfg)),
        }
    }

    #[test]
    fn ann_artifact_round_trip_is_exact() {
        let a = ann_artifact();
        let back = AnnArtifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        // Either half may be absent.
        let content_only = AnnArtifact {
            cf: None,
            ..a.clone()
        };
        assert_eq!(
            AnnArtifact::from_bytes(&content_only.to_bytes()).unwrap(),
            content_only
        );
        let empty = AnnArtifact {
            content: None,
            cf: None,
        };
        assert_eq!(AnnArtifact::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn ann_artifact_encoding_is_deterministic() {
        assert_eq!(ann_artifact().to_bytes(), ann_artifact().to_bytes());
    }

    #[test]
    fn ann_artifact_wrong_tag_detected() {
        let err = AnnArtifact::from_bytes(&encode(&model())).unwrap_err();
        assert_eq!(
            err,
            DecodeError::WrongModel {
                expected: AnnArtifact::TAG,
                found: BprModel::TAG
            }
        );
    }

    #[test]
    fn ann_artifact_corruption_detected() {
        let mut bytes = ann_artifact().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(
            AnnArtifact::from_bytes(&bytes),
            Err(DecodeError::BadChecksum)
        );
    }

    #[test]
    fn ann_artifact_forged_partition_detected() {
        // A payload that *passes* the checksum but violates the
        // partition invariant must still fail: bump the final item id
        // (making it a duplicate of an id in another list, or out of
        // range) and re-sign the container.
        let mut bytes = ann_artifact().to_bytes();
        let body_end = bytes.len() - 8;
        let at = body_end - 4;
        let v = u32::from_le_bytes(bytes[at..body_end].try_into().unwrap()) + 1;
        bytes[at..body_end].copy_from_slice(&v.to_le_bytes());
        let checksum = fnv64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            AnnArtifact::from_bytes(&bytes),
            Err(DecodeError::LengthMismatch)
        );
    }

    #[test]
    fn display_messages() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::BadChecksum.to_string().contains("checksum"));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("rm-persist-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.rmodel");

        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");

        // No .tmp sibling survives a successful publication.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_into_missing_dir_fails_cleanly() {
        let path = std::path::Path::new("/nonexistent/rm-persist-nowhere/m.rmodel");
        assert!(write_atomic(path, b"x").is_err());
    }
}
