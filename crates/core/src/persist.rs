//! Binary persistence of trained BPR models.
//!
//! A deployed recommendation service (the Reading&Machine VR kiosk) trains
//! offline and serves online; this module provides the handoff format — a
//! small self-describing little-endian codec with a magic header and a
//! trailing checksum, no external serialisation dependencies.
//!
//! Layout: `magic (8) | users u32 | books u32 | factors u32 |
//! user_factors f32×(users·L) | item_factors f32×(books·L) | fnv64 of all
//! preceding bytes`.

use crate::bpr::BprModel;
use rm_sparse::DenseMatrix;

/// Format magic: "RMBPR\0\0\x01" (version 1).
const MAGIC: [u8; 8] = *b"RMBPR\0\0\x01";

/// Errors arising when decoding a serialised model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Magic bytes mismatch (not a model file / wrong version).
    BadMagic,
    /// Declared dimensions don't match the payload length.
    LengthMismatch,
    /// Checksum mismatch (corrupted payload).
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "input truncated"),
            Self::BadMagic => write!(f, "bad magic (not a BPR model, or unsupported version)"),
            Self::LengthMismatch => write!(f, "payload length does not match declared dimensions"),
            Self::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn fnv64(bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Serialises a model.
#[must_use]
pub fn encode(model: &BprModel) -> Vec<u8> {
    let users = model.user_factors.rows();
    let books = model.item_factors.rows();
    let factors = model.user_factors.cols();
    assert_eq!(factors, model.item_factors.cols(), "factor dims disagree");

    let mut out = Vec::with_capacity(8 + 12 + 4 * (users + books) * factors + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&u32::try_from(users).expect("user count fits u32").to_le_bytes());
    out.extend_from_slice(&u32::try_from(books).expect("book count fits u32").to_le_bytes());
    out.extend_from_slice(&u32::try_from(factors).expect("factor count fits u32").to_le_bytes());
    for &v in model.user_factors.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in model.item_factors.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Deserialises a model.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the input is truncated, has the wrong
/// magic, inconsistent dimensions, or a bad checksum.
pub fn decode(bytes: &[u8]) -> Result<BprModel, DecodeError> {
    if bytes.len() < 8 + 12 + 8 {
        return Err(DecodeError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let read_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let users = read_u32(8) as usize;
    let books = read_u32(12) as usize;
    let factors = read_u32(16) as usize;

    let payload_f32 = (users + books)
        .checked_mul(factors)
        .ok_or(DecodeError::LengthMismatch)?;
    let expected_len = 20 + 4 * payload_f32 + 8;
    if bytes.len() != expected_len {
        return Err(DecodeError::LengthMismatch);
    }

    let body_end = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv64(&bytes[..body_end]) != declared {
        return Err(DecodeError::BadChecksum);
    }

    let mut floats = bytes[20..body_end]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")));
    let user_data: Vec<f32> = floats.by_ref().take(users * factors).collect();
    let item_data: Vec<f32> = floats.collect();

    Ok(BprModel {
        user_factors: DenseMatrix::from_vec(users, factors, user_data),
        item_factors: DenseMatrix::from_vec(books, factors, item_data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    fn model() -> BprModel {
        let mut rng = rng_from_seed(3);
        BprModel {
            user_factors: DenseMatrix::gaussian(7, 4, 0.3, &mut rng),
            item_factors: DenseMatrix::gaussian(11, 4, 0.3, &mut rng),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let bytes = encode(&m);
        let back = decode(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&model());
        assert_eq!(decode(&bytes[..10]), Err(DecodeError::Truncated));
        assert_eq!(decode(&bytes[..bytes.len() - 1]), Err(DecodeError::LengthMismatch));
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&model());
        bytes[0] ^= 0xFF;
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode(&model());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(decode(&bytes), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn dimension_tampering_detected() {
        let mut bytes = encode(&model());
        // Inflate the user count.
        bytes[8] = bytes[8].wrapping_add(1);
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::LengthMismatch | DecodeError::BadChecksum)
        ));
    }

    #[test]
    fn empty_model_round_trips() {
        let m = BprModel {
            user_factors: DenseMatrix::zeros(0, 3),
            item_factors: DenseMatrix::zeros(0, 3),
        };
        let back = decode(&encode(&m)).unwrap();
        assert_eq!(back.user_factors.rows(), 0);
        assert_eq!(back.item_factors.cols(), 3);
    }

    proptest::proptest! {
        #[test]
        fn round_trip_arbitrary_dims(
            users in 0usize..12,
            books in 0usize..12,
            factors in 1usize..6,
            seed in 0u64..1000,
        ) {
            let mut rng = rng_from_seed(seed);
            let m = BprModel {
                user_factors: DenseMatrix::gaussian(users, factors, 0.5, &mut rng),
                item_factors: DenseMatrix::gaussian(books, factors, 0.5, &mut rng),
            };
            let back = decode(&encode(&m)).unwrap();
            proptest::prop_assert_eq!(m, back);
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..256)) {
            // Decoding garbage must fail cleanly, never panic.
            let _ = decode(&bytes);
        }
    }

    #[test]
    fn display_messages() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::BadChecksum.to_string().contains("checksum"));
    }
}
