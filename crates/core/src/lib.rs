//! The paper's recommender suite (Section 4).
//!
//! Four implicit-feedback recommenders behind one [`Recommender`] trait:
//!
//! * [`random::RandomItems`] — baseline: k unseen books uniformly at
//!   random;
//! * [`most_read::MostReadItems`] — baseline: the globally most-read books
//!   of the training set, minus each user's seen set;
//! * [`closest::ClosestItems`] — content-based: rank unseen books by mean
//!   cosine similarity between metadata-summary embeddings and the user's
//!   read books (Eq. 1), with a centroid fast path that is exactly
//!   equivalent;
//! * [`bpr::Bpr`] — collaborative filtering: matrix factorisation trained
//!   on the BPR pairwise objective (Eqs. 2–3) with the WARP
//!   negative-sampling variant of Weston et al. for the SGD updates.
//!
//! [`grid::GridSearch`] sweeps BPR hyper-parameters against a
//! caller-supplied validation scorer (the paper selects by validation URR),
//! and [`persist`] round-trips trained factor models through a compact
//! binary codec.
//!
//! Three extensions implement the paper's future-work directions and the
//! surrounding literature's standard baselines:
//! [`markov::SequentialItems`] (first-order sequential recommendation,
//! Section 7's pointer to Wang et al. 2019), [`hybrid::Blend`] (the CB+CF
//! hybrid its related work surveys), and [`item_knn::ItemKnn`] (the
//! classic item-based CF the `implicit` ecosystem ships).
//!
//! # Buffer-reuse naming convention
//!
//! Every hot-path API that can refill a caller-owned buffer instead of
//! allocating comes in two spellings, across rm-core, rm-embed, and
//! rm-eval alike:
//!
//! * the plain name (`recommend_batch`, `similarities`,
//!   `mean_embedding`) allocates and returns its result;
//! * the `*_into(&mut ...)` variant takes the same inputs *in the same
//!   order*, followed by the output buffer(s) last; the buffer is
//!   cleared and refilled in place, and the contents are byte-identical
//!   to what the plain variant returns.
//!
//! New buffer-reusing APIs must follow this shape — no `_buf` suffixes,
//! no output-first argument orders.

pub mod bpr;
pub mod closest;
pub mod grid;
pub mod hybrid;
pub mod item_knn;
pub mod markov;
pub mod most_read;
pub mod persist;
pub mod quant;
pub mod random;

use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;

/// A top-N implicit-feedback recommender.
///
/// The lifecycle is `fit` once on a training interaction matrix, then any
/// number of `recommend`/`rank_all`/`score` calls. Users and books are the
/// dense corpus indices of the training matrix.
pub trait Recommender {
    /// Short display name (used in report tables). Borrowed from `self` so
    /// implementations may carry runtime-built names (e.g. a serving slot
    /// labelled with its artifact epoch).
    fn name(&self) -> &str;

    /// Fits the recommender on the training interactions.
    fn fit(&mut self, train: &Interactions);

    /// Model score of `(user, book)`; higher ranks earlier. Only
    /// meaningful after [`Recommender::fit`].
    fn score(&self, user: UserIdx, book: BookIdx) -> f32;

    /// The top-`k` unseen books for `user`, best first. Books the user has
    /// read in the training set are never recommended.
    fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32>;

    /// Top-`k` recommendations for a batch of users, in input order.
    ///
    /// Delegates to [`Recommender::recommend_batch_into`] with a fresh
    /// output pool; callers that batch repeatedly (the eval harness, the
    /// serving engine) should hold the pool themselves and call the
    /// `_into` variant directly.
    fn recommend_batch(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        self.recommend_batch_into(users, k, &mut out);
        out
    }

    /// [`Recommender::recommend_batch`] writing into a caller-owned pool.
    ///
    /// `out` is resized to `users.len()`; each inner `Vec` is cleared and
    /// refilled *in place*, so a pool passed back across batches makes
    /// per-user scoring allocation-free once the buffers have grown to
    /// steady state. Implementations must produce rankings byte-identical
    /// to the corresponding single-user [`Recommender::recommend`] calls.
    ///
    /// The default defers to `recommend` per user (allocating per user);
    /// models with per-call setup cost (score buffers, centroids) override
    /// it to amortise that work and reuse the pool.
    fn recommend_batch_into(&self, users: &[UserIdx], k: usize, out: &mut Vec<Vec<u32>>) {
        out.resize_with(users.len(), Vec::new);
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            *slot = self.recommend(u, k);
        }
    }

    /// The full ranking of unseen books (equivalent to
    /// `recommend(user, n_books)`); used by the First-Rank KPI.
    fn rank_all(&self, user: UserIdx) -> Vec<u32>;
}

/// Shared helper: ranks all books by a score function, excluding `seen`,
/// keeping the top `k`. Ties break toward the lower book index.
#[must_use]
pub(crate) fn rank_by_scores(
    n_books: usize,
    seen: &[u32],
    k: usize,
    score: impl FnMut(u32) -> f32,
) -> Vec<u32> {
    let mut top = rm_util::TopK::new(1);
    let mut out = Vec::new();
    rank_by_scores_into(n_books, seen, k, score, &mut top, &mut out);
    out
}

/// [`rank_by_scores`] with caller-owned scratch: `top` is re-armed via
/// [`rm_util::TopK::reset`] and `out` refilled in place, so batch scorers
/// rank every user without per-user allocation.
pub(crate) fn rank_by_scores_into(
    n_books: usize,
    seen: &[u32],
    k: usize,
    mut score: impl FnMut(u32) -> f32,
    top: &mut rm_util::TopK,
    out: &mut Vec<u32>,
) {
    // Clamp before TopK: `k` may be usize::MAX ("rank everything") and
    // TopK pre-allocates its capacity.
    let k = k.min(n_books).max(1);
    top.reset(k);
    let mut seen_iter = seen.iter().copied().peekable();
    for b in 0..n_books as u32 {
        // `seen` is sorted: advance the cursor instead of binary-searching.
        if seen_iter.peek() == Some(&b) {
            seen_iter.next();
            continue;
        }
        top.push(b, score(b));
    }
    top.drain_sorted_into(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_by_scores_excludes_seen_and_orders() {
        let got = rank_by_scores(5, &[1, 3], 3, |b| b as f32);
        assert_eq!(got, vec![4, 2, 0]);
    }

    #[test]
    fn rank_by_scores_k_larger_than_catalog() {
        let got = rank_by_scores(3, &[], 10, |b| -(b as f32));
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn rank_by_scores_all_seen() {
        let got = rank_by_scores(2, &[0, 1], 5, |_| 1.0);
        assert!(got.is_empty());
    }
}
