//! Facade crate: one `use reading_machine::prelude::*` pulls in the whole
//! pipeline — synthetic data generation, dataset preparation, the
//! recommender suite, and the evaluation harness.
//!
//! ```
//! use reading_machine::prelude::*;
//!
//! // A small end-to-end run: generate → split → train → evaluate.
//! let harness = Harness::generate(42, Preset::Tiny);
//! let mut bpr = Bpr::new(BprConfig { epochs: 3, factors: 4, ..BprConfig::default() });
//! harness.fit_timed(&mut bpr);
//! let kpis = evaluate(&bpr, &harness.test_cases(), 10);
//! assert!(kpis.urr >= 0.0 && kpis.urr <= 1.0);
//! ```

/// The commonly-used types and functions of every layer.
pub mod prelude {
    pub use rm_core::bpr::{Bpr, BprConfig, Loss};
    pub use rm_core::closest::ClosestItems;
    pub use rm_core::grid::GridSearch;
    pub use rm_core::hybrid::Blend;
    pub use rm_core::item_knn::{ItemKnn, ItemKnnConfig};
    pub use rm_core::markov::{SequentialConfig, SequentialItems};
    pub use rm_core::most_read::MostReadItems;
    pub use rm_core::random::RandomItems;
    pub use rm_core::Recommender;
    pub use rm_datagen::{GeneratorConfig, Preset};
    pub use rm_dataset::ids::{BookIdx, UserIdx};
    pub use rm_dataset::interactions::Interactions;
    pub use rm_dataset::summary::SummaryFields;
    pub use rm_dataset::{Book, Corpus, Source, User};
    pub use rm_embed::{EmbeddingStore, EncoderConfig, SemanticEncoder};
    pub use rm_eval::bootstrap::{bootstrap_ci, paired_difference_ci, Metric, PerUserStats};
    pub use rm_eval::harness::{Harness, TrainedSuite};
    pub use rm_eval::metrics::{evaluate, evaluate_at, Kpis, UserCase};
    pub use rm_eval::{Split, SplitConfig, SplitStrategy};
    pub use rm_serve::engine::{EngineConfig, EngineConfigBuilder, ModelSlot, ServingEngine};
    pub use rm_serve::loadgen::{ArrivalMode, LoadReport, LoadgenConfig, SloSpec};
    pub use rm_serve::overload::{DegradationLevel, OverloadConfig, ShedReason};
    pub use rm_serve::pipeline::{BookGenres, Explanation, PipelineConfig, Reason, SourceId};
    pub use rm_serve::registry::{ArtifactRegistry, Manifest};
    pub use rm_util::RecError;
}

pub use rm_core as core;
pub use rm_datagen as datagen;
pub use rm_dataset as dataset;
pub use rm_embed as embed;
pub use rm_eval as eval;
pub use rm_serve as serve;
pub use rm_sparse as sparse;
pub use rm_util as util;
