//! `reading-machine` — the command-line face of the library.
//!
//! ```text
//! reading-machine generate --preset medium --seed 42 --out corpus/
//! reading-machine stats    --corpus corpus/
//! reading-machine train    --corpus corpus/ --model model.bpr [--factors 20] [--epochs 15]
//! reading-machine recommend --corpus corpus/ --model model.bpr --user 17 [--k 20]
//! reading-machine evaluate --corpus corpus/ [--k 20]
//! ```
//!
//! `generate` writes the merged synthetic corpus as TSV; `train` persists a
//! BPR model with the binary codec; `recommend` serves top-k titles for a
//! user; `evaluate` runs the paper's KPI comparison on a fresh split.

use reading_machine::dataset::io::{load_corpus, save_corpus};
use reading_machine::dataset::stats::{genre_shares, summarize};
use reading_machine::eval::harness::{Harness, TrainedSuite};
use reading_machine::eval::metrics::{default_threads, evaluate_parallel};
use reading_machine::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Exit quietly when stdout closes early (`reading-machine stats | head`).
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage("missing command");
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "recommend" => cmd_recommend(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => return usage(&format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  reading-machine generate  --out DIR [--preset paper|medium|tiny] [--seed N]\n  \
         reading-machine stats     --corpus DIR\n  \
         reading-machine train     --corpus DIR --model FILE [--factors N] [--epochs N] [--lr F]\n  \
         reading-machine recommend --corpus DIR --model FILE --user N [--k N]\n  \
         reading-machine evaluate  --corpus DIR [--k N] [--seed N]"
    );
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    print_usage();
    ExitCode::from(2)
}

/// Minimal flag parser: `--name value` pairs.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got {flag}"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            out.push((name.to_owned(), value.clone()));
        }
        Ok(Self(out))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name}: {v}")),
        }
    }
}

fn preset_of(flags: &Flags) -> Result<Preset, String> {
    match flags.get("preset").unwrap_or("medium") {
        "paper" => Ok(Preset::Paper),
        "medium" => Ok(Preset::Medium),
        "tiny" => Ok(Preset::Tiny),
        other => Err(format!("unknown preset {other}")),
    }
}

fn load(flags: &Flags) -> Result<Corpus, String> {
    let dir = PathBuf::from(flags.required("corpus")?);
    load_corpus(&dir).map_err(|e| e.to_string())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = PathBuf::from(flags.required("out")?);
    let seed: u64 = flags.parse_num("seed", 42)?;
    let preset = preset_of(&flags)?;
    let corpus = reading_machine::datagen::generate_corpus(seed, preset);
    save_corpus(&corpus, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} books, {} users, {} readings to {}",
        corpus.n_books(),
        corpus.n_users(),
        corpus.n_readings(),
        out.display()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let corpus = load(&flags)?;
    let s = summarize(&corpus);
    println!("{s:#?}");
    println!("top genres:");
    for (label, share) in genre_shares(&corpus).into_iter().take(8) {
        println!("  {label:<40} {:.1}%", share * 100.0);
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let corpus = load(&flags)?;
    let model_path = PathBuf::from(flags.required("model")?);
    let config = BprConfig {
        factors: flags.parse_num("factors", 20)?,
        epochs: flags.parse_num("epochs", 15)?,
        learning_rate: flags.parse_num("lr", 0.2)?,
        seed: flags.parse_num("seed", 42)?,
        ..BprConfig::default()
    };
    // Train on ALL readings (deployment mode — no held-out test).
    let interactions = Interactions::from_corpus(&corpus);
    let mut bpr = Bpr::new(config);
    let t0 = std::time::Instant::now();
    bpr.fit(&interactions);
    let bytes = reading_machine::core::persist::encode(bpr.model().expect("fitted"));
    std::fs::write(&model_path, &bytes).map_err(|e| e.to_string())?;
    println!(
        "trained BPR on {} interactions in {:.1?}; wrote {} bytes to {}",
        interactions.nnz(),
        t0.elapsed(),
        bytes.len(),
        model_path.display()
    );
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let corpus = load(&flags)?;
    let model_path = PathBuf::from(flags.required("model")?);
    let user: u32 = flags.required("user")?.parse().map_err(|_| "bad --user".to_owned())?;
    let k: usize = flags.parse_num("k", 20)?;
    if user as usize >= corpus.n_users() {
        return Err(format!("user {user} out of range (corpus has {})", corpus.n_users()));
    }
    let bytes = std::fs::read(&model_path).map_err(|e| e.to_string())?;
    let model = reading_machine::core::persist::decode(&bytes).map_err(|e| e.to_string())?;
    let interactions = Interactions::from_corpus(&corpus);
    let mut bpr = Bpr::new(BprConfig::default());
    bpr.install(model, &interactions);
    println!("top-{k} for user {user}:");
    for (rank, b) in bpr.recommend(UserIdx(user), k).into_iter().enumerate() {
        let book = &corpus.books[b as usize];
        println!("  {:>2}. {} — {}", rank + 1, book.title, book.authors.join(", "));
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let corpus = load(&flags)?;
    let k: usize = flags.parse_num("k", 20)?;
    let seed: u64 = flags.parse_num("seed", 42)?;
    let harness = Harness::from_corpus(corpus, &SplitConfig::default());
    let suite = TrainedSuite::train(&harness, BprConfig::default(), SummaryFields::BEST, seed);
    let cases = harness.test_cases();
    println!("KPIs @{k} over {} test users:", cases.len());
    for rec in [
        &suite.random as &(dyn Recommender + Sync),
        &suite.most_read,
        &suite.closest,
        &suite.bpr,
    ] {
        let m = evaluate_parallel(rec, &cases, k, default_threads());
        println!(
            "  {:<16} URR {:.2}  NRR {:.2}  P {:.3}  R {:.3}  FR {:.0}",
            rec.name(),
            m.urr,
            m.nrr,
            m.precision,
            m.recall,
            m.first_rank
        );
    }
    Ok(())
}
