//! `reading-machine` — the command-line face of the library.
//!
//! ```text
//! reading-machine generate --preset medium --seed 42 --out corpus/
//! reading-machine stats    --corpus corpus/
//! reading-machine train    --corpus corpus/ --model model.bpr [--factors 20] [--epochs 15]
//! reading-machine train    --out artifacts/ [--corpus corpus/] [--epoch 1]
//! reading-machine recommend --corpus corpus/ --model model.bpr --user 17 [--k 20]
//! reading-machine explain  --artifacts artifacts/ --user 17 [--corpus corpus/] [--k 10]
//! reading-machine evaluate [--corpus corpus/] [--k 20]
//! reading-machine serve-bench --artifacts artifacts/ [--corpus corpus/] [--requests 2000]
//! reading-machine metrics-dump --artifacts artifacts/ [--requests 1000]
//! ```
//!
//! `generate` writes the merged synthetic corpus as TSV; `train` persists a
//! BPR model with the binary codec (`--model FILE`) or the full serving
//! artifact set (`--out DIR`: BPR + Most Read counts + catalogue
//! embeddings + manifest); `recommend` serves top-k titles for a user;
//! `explain` serves one user through the candidate pipeline and prints the
//! provenance-backed reason behind every title ("because you borrowed X");
//! `evaluate` runs the paper's KPI comparison on a fresh split and prints
//! the per-stage pipeline timing report; `serve-bench` loads an artifact
//! directory into the serving engine and reports single vs batched
//! throughput with latency quantiles; `metrics-dump` replays a request
//! stream and prints the engine metrics in Prometheus text exposition
//! format. `train` and `serve-bench` accept `--trace FILE`, draining the
//! structured span/event log as JSONL after the run. Built with
//! `--features testing`, `serve-bench` also accepts `--chaos PLAN`
//! (`bpr-panic|bpr-error|bpr-latency|storm`), which replays the request
//! stream under injected faults and reports availability, per-slot fault
//! counters, and circuit-breaker activity. `serve-bench --loadgen MODE`
//! runs the Zipf load generator against an engine with admission control
//! and the brownout ladder enabled: `smoke` is the self-contained,
//! byte-stable overload gate (`--gate BENCH_serve.json`), `open`/`closed`
//! drive a real artifact directory on the wall clock.
//!
//! Commands that need a corpus accept either `--corpus DIR` or regenerate
//! it deterministically from `--preset`/`--seed` — so `train --out` and
//! `serve-bench` agree on the training interactions without shipping them
//! in the registry.

use reading_machine::dataset::io::{load_corpus, save_corpus};
use reading_machine::dataset::stats::{genre_shares, summarize};
use reading_machine::eval::harness::{run_timed_pipeline, Harness, PipelineTimer, TrainedSuite};
use reading_machine::eval::metrics::{default_threads, evaluate_parallel};
use reading_machine::prelude::*;
use reading_machine::util::clock::MonotonicClock;
use reading_machine::util::trace::Tracer;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    // Exit quietly when stdout closes early (`reading-machine stats | head`).
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage("missing command");
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "recommend" => cmd_recommend(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "serve-bench" => cmd_serve_bench(&args[1..]),
        "metrics-dump" => cmd_metrics_dump(&args[1..]),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => return usage(&format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  reading-machine generate  --out DIR [--preset paper|medium|tiny] [--seed N]\n  \
         reading-machine stats     --corpus DIR\n  \
         reading-machine train     --corpus DIR --model FILE [--factors N] [--epochs N] [--lr F] [--trace FILE]\n  \
         reading-machine train     --out DIR [--corpus DIR] [--epoch N] [--factors N] [--epochs N] [--quant i8|f16|off] [--trace FILE]\n  \
         reading-machine recommend --corpus DIR --model FILE --user N [--k N]\n  \
         reading-machine explain   --artifacts DIR --user N [--corpus DIR] [--k N]\n  \
         reading-machine evaluate  [--corpus DIR] [--k N] [--seed N]\n  \
         reading-machine serve-bench --artifacts DIR [--corpus DIR] [--k N] [--requests N] [--trace FILE] [--chaos PLAN]\n  \
         reading-machine serve-bench --loadgen smoke|open|closed [--artifacts DIR] [--preset tiny|medium|paper|paper_x100] [--rps F] [--burst F] [--phase-ms N] [--zipf F] [--seed N] [--out FILE] [--gate FILE]\n  \
         reading-machine metrics-dump --artifacts DIR [--corpus DIR] [--k N] [--requests N]\n\n\
         --trace FILE drains the structured span/event log as JSONL after the run\n\
         --chaos PLAN (bpr-panic|bpr-error|bpr-latency|storm) needs a build with --features testing\n\
         --loadgen smoke is self-contained (Tiny preset, fake clock) and byte-stable; --gate FILE enforces the committed SLO report\n\
         commands taking [--corpus DIR] regenerate the corpus from --preset/--seed when it is omitted"
    );
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    print_usage();
    ExitCode::from(2)
}

/// Minimal flag parser: `--name value` pairs.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got {flag}"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            out.push((name.to_owned(), value.clone()));
        }
        Ok(Self(out))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name}: {v}")),
        }
    }
}

/// A tracer for the run: recording when `--trace FILE` was given,
/// disabled (zero-cost) otherwise.
fn trace_sink(flags: &Flags) -> Arc<Tracer> {
    if flags.get("trace").is_some() {
        Arc::new(Tracer::enabled(1 << 16, Arc::new(MonotonicClock::new())))
    } else {
        Arc::new(Tracer::disabled())
    }
}

/// Drains the tracer to the `--trace FILE` as JSONL (no-op without the
/// flag).
fn flush_trace(flags: &Flags, tracer: &Tracer) -> Result<(), String> {
    let Some(path) = flags.get("trace") else {
        return Ok(());
    };
    let dropped = tracer.dropped();
    let jsonl = tracer.drain_jsonl();
    std::fs::write(path, &jsonl).map_err(|e| e.to_string())?;
    println!(
        "wrote {} trace events to {path}{}",
        jsonl.lines().count(),
        if dropped > 0 {
            format!(" ({dropped} oldest dropped by the ring)")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn preset_of(flags: &Flags) -> Result<Preset, String> {
    match flags.get("preset").unwrap_or("medium") {
        "paper_x100" => Ok(Preset::PaperX100),
        "paper" => Ok(Preset::Paper),
        "medium" => Ok(Preset::Medium),
        "tiny" => Ok(Preset::Tiny),
        other => Err(format!("unknown preset {other}")),
    }
}

fn load(flags: &Flags) -> Result<Corpus, String> {
    let dir = PathBuf::from(flags.required("corpus")?);
    load_corpus(&dir).map_err(|e| e.to_string())
}

/// The corpus from `--corpus DIR`, or regenerated deterministically from
/// `--preset`/`--seed` when the flag is absent.
fn corpus_of(flags: &Flags) -> Result<Corpus, String> {
    match flags.get("corpus") {
        Some(dir) => load_corpus(&PathBuf::from(dir)).map_err(|e| e.to_string()),
        None => {
            let seed: u64 = flags.parse_num("seed", 42)?;
            let preset = preset_of(flags)?;
            Ok(reading_machine::datagen::generate_corpus(seed, preset))
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = PathBuf::from(flags.required("out")?);
    let seed: u64 = flags.parse_num("seed", 42)?;
    let preset = preset_of(&flags)?;
    let corpus = reading_machine::datagen::generate_corpus(seed, preset);
    save_corpus(&corpus, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} books, {} users, {} readings to {}",
        corpus.n_books(),
        corpus.n_users(),
        corpus.n_readings(),
        out.display()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let corpus = load(&flags)?;
    let s = summarize(&corpus);
    println!("{s:#?}");
    println!("top genres:");
    for (label, share) in genre_shares(&corpus).into_iter().take(8) {
        println!("  {label:<40} {:.1}%", share * 100.0);
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if let Some(out) = flags.get("out") {
        return cmd_train_artifacts(&flags, PathBuf::from(out));
    }
    let corpus = load(&flags)?;
    let model_path = PathBuf::from(flags.required("model")?);
    let config = BprConfig {
        factors: flags.parse_num("factors", 20)?,
        epochs: flags.parse_num("epochs", 15)?,
        learning_rate: flags.parse_num("lr", 0.2)?,
        seed: flags.parse_num("seed", 42)?,
        ..BprConfig::default()
    };
    // Train on ALL readings (deployment mode — no held-out test).
    let tracer = trace_sink(&flags);
    let interactions = Interactions::from_corpus(&corpus);
    let mut bpr = Bpr::new(config);
    let t0 = std::time::Instant::now();
    let span = tracer.span("fit_bpr");
    bpr.fit(&interactions);
    span.finish(|f| {
        f.push("interactions", interactions.nnz());
    });
    let span = tracer.span("persist");
    let bytes = reading_machine::core::persist::encode(bpr.model().expect("fitted"));
    std::fs::write(&model_path, &bytes).map_err(|e| e.to_string())?;
    span.finish(|f| {
        f.push("bytes", bytes.len());
    });
    println!(
        "trained BPR on {} interactions in {:.1?}; wrote {} bytes to {}",
        interactions.nnz(),
        t0.elapsed(),
        bytes.len(),
        model_path.display()
    );
    flush_trace(&flags, &tracer)
}

/// `train --out DIR`: fit the full serving suite on every reading
/// (deployment mode) and persist it as an artifact registry.
fn cmd_train_artifacts(flags: &Flags, out: PathBuf) -> Result<(), String> {
    let corpus = corpus_of(flags)?;
    let train = Interactions::from_corpus(&corpus);
    let config = BprConfig {
        factors: flags.parse_num("factors", 20)?,
        epochs: flags.parse_num("epochs", 15)?,
        learning_rate: flags.parse_num("lr", 0.2)?,
        seed: flags.parse_num("seed", 42)?,
        ..BprConfig::default()
    };
    let fields = SummaryFields::BEST;
    let tracer = trace_sink(flags);
    let t0 = std::time::Instant::now();
    let span = tracer.span("fit_bpr");
    let mut bpr = Bpr::new(config);
    bpr.fit(&train);
    span.finish(|f| {
        f.push("interactions", train.nnz());
    });
    let span = tracer.span("fit_most_read");
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    drop(span);
    let span = tracer.span("embed");
    let mut closest = ClosestItems::from_corpus(&corpus, fields, EncoderConfig::default());
    closest.fit(&train);
    span.finish(|f| {
        f.push("books", corpus.n_books());
    });
    let manifest = Manifest {
        epoch: flags.parse_num("epoch", 1)?,
        fields,
    };
    // Build the sub-linear retrieval indexes over the fitted models: a
    // cosine IVF over the catalogue embeddings and a MIPS IVF over the
    // BPR item factors, both under the √n list-count heuristic. `--ann
    // off` skips publication (and scrubs any stale index on disk).
    let ann = if flags.get("ann").is_some_and(|v| v == "off") {
        None
    } else {
        let span = tracer.span("build_ann");
        let ivf_config = rm_embed::IvfConfig {
            seed: flags.parse_num("seed", 42)?,
            ..rm_embed::IvfConfig::for_catalogue(train.n_books())
        };
        let ann = rm_embed::AnnArtifact {
            content: Some(rm_embed::IvfIndex::build(closest.store(), &ivf_config)),
            cf: Some(rm_embed::IvfIndex::build_mips(
                &bpr.model().expect("fitted").item_factors,
                &ivf_config,
            )),
        };
        span.finish(|f| {
            f.push("nlist", ivf_config.nlist);
        });
        Some(ann)
    };
    // `--quant i8|f16` additionally publishes the factor matrices and
    // embeddings quantized for the low-memory serving path; `off` (the
    // default) skips publication and scrubs any stale quant artifact.
    let quant = match flags.get("quant") {
        None | Some("off") => None,
        Some(label) => {
            let mode = rm_core::quant::QuantMode::parse(label)
                .ok_or_else(|| format!("bad --quant {label} (i8|f16|off)"))?;
            let span = tracer.span("quantize");
            let artifact = rm_core::quant::QuantArtifact::quantize(
                mode,
                bpr.model().expect("fitted"),
                Some(closest.store()),
            );
            span.finish(|f| {
                f.push("payload_bytes", artifact.payload_bytes());
            });
            Some(artifact)
        }
    };
    let registry = ArtifactRegistry::new(&out);
    let span = tracer.span("save_artifacts");
    registry
        .save(
            &manifest,
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            ann.as_ref(),
            quant.as_ref(),
        )
        .map_err(|e| e.to_string())?;
    span.finish(|f| {
        f.push("epoch", manifest.epoch);
    });
    println!(
        "trained serving suite on {} interactions in {:.1?}; wrote epoch-{} artifacts to {}",
        train.nnz(),
        t0.elapsed(),
        manifest.epoch,
        out.display()
    );
    flush_trace(flags, &tracer)
}

/// `serve-bench`: load an artifact registry and measure single-call vs
/// batched serving throughput, printing the engine's request metrics.
fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if let Some(plan) = flags.get("chaos") {
        return cmd_serve_chaos(&flags, plan);
    }
    if let Some(mode) = flags.get("loadgen") {
        let mode = mode.to_owned();
        return cmd_serve_loadgen(&flags, &mode);
    }
    let registry = ArtifactRegistry::new(PathBuf::from(flags.required("artifacts")?));
    let corpus = corpus_of(&flags)?;
    let train = Interactions::from_corpus(&corpus);
    let k: usize = flags.parse_num("k", 10)?;
    let requests: usize = flags.parse_num("requests", 2000)?;
    let cache_capacity: usize = flags.parse_num("cache", 4096)?;

    // The request stream: all users, cycled until `requests` is reached,
    // so the cache sees realistic repeats.
    let users: Vec<UserIdx> = (0..requests)
        .map(|i| UserIdx((i % train.n_users()) as u32))
        .collect();

    // One tracer shared by every engine the bench builds, so the JSONL
    // drain covers the whole run in one stream.
    let tracer = trace_sink(&flags);
    let engine_with = |workers: usize| {
        let config = EngineConfig::builder()
            .workers(workers)
            .cache_capacity(cache_capacity)
            .tracer(Arc::clone(&tracer))
            .build()
            .map_err(|e| e.to_string())?;
        ServingEngine::load(&registry, &train, config).map_err(|e| e.to_string())
    };

    let probe = engine_with(1)?;
    println!(
        "serve-bench: {requests} requests over {} users, k={k}, epoch {}",
        train.n_users(),
        probe.epoch()
    );
    if probe.degraded().is_empty() {
        println!("all model slots healthy");
    } else {
        for (slot, reason) in probe.degraded() {
            println!("DEGRADED {}: {reason}", slot.label());
        }
    }

    // Single-call baseline: one thread, one request at a time.
    let single = engine_with(1)?;
    let t0 = std::time::Instant::now();
    for &u in &users {
        std::hint::black_box(single.recommend(u, k));
    }
    let single_qps = requests as f64 / t0.elapsed().as_secs_f64();

    let mut table = reading_machine::util::report::Table::new(["mode", "req/s", "speedup"]);
    table.push_row([
        "single".to_owned(),
        reading_machine::util::report::fmt_f64(single_qps, 0),
        "1.00".to_owned(),
    ]);
    let mut four_worker_metrics = None;
    for workers in [1usize, 4, 8] {
        let engine = engine_with(workers)?;
        let t0 = std::time::Instant::now();
        std::hint::black_box(engine.recommend_batch(&users, k));
        let qps = requests as f64 / t0.elapsed().as_secs_f64();
        table.push_row([
            format!("batch x{workers}"),
            reading_machine::util::report::fmt_f64(qps, 0),
            reading_machine::util::report::fmt_f64(qps / single_qps, 2),
        ]);
        if workers == 4 {
            four_worker_metrics = Some(engine.metrics());
        }
    }
    println!("{}", table.render());
    if let Some(m) = four_worker_metrics {
        println!("request metrics (batch x4 run):");
        println!("{}", m.render());
    }
    flush_trace(&flags, &tracer)
}

/// `serve-bench --loadgen MODE`: drive the engine through the Zipf load
/// generator with admission control and the brownout ladder enabled.
///
/// * `smoke` — self-contained deterministic run: trains the Tiny preset,
///   serves a 10× open-loop burst under a fake clock with simulated
///   per-level service costs, and renders a byte-stable JSON report.
///   With `--gate FILE` the report must match the committed file
///   byte-for-byte *and* meet its SLO — the standing overload gate.
/// * `open` / `closed` — wall-clock runs against `--artifacts DIR`.
fn cmd_serve_loadgen(flags: &Flags, mode: &str) -> Result<(), String> {
    use reading_machine::serve::loadgen::{self, ArrivalMode, LoadgenConfig};
    use reading_machine::serve::overload::OverloadConfig;
    use reading_machine::util::clock::FakeClock;
    use std::time::Duration;

    let arrivals = match mode {
        "smoke" | "open" => ArrivalMode::Open,
        "closed" => ArrivalMode::Closed,
        other => return Err(format!("bad --loadgen {other} (smoke|open|closed)")),
    };
    // `--preset NAME` sizes the schedule from the preset's nominal
    // serving population (Paper ≡ the 2 000-request / 200-rps reference
    // point; paper_x100 offers 100× the volume and rate). Explicit
    // `--requests`/`--rps` still win. Without the flag the historical
    // defaults apply — the smoke gate's committed BENCH_serve.json
    // stays byte-stable.
    let (default_requests, default_rps) = match flags.get("preset") {
        None => (400, 200.0),
        Some(_) => {
            let (users, _) = preset_of(flags)?.serving_scale();
            let scale = users as f64 / Preset::Paper.serving_scale().0 as f64;
            let requests = ((2_000.0 * scale).round() as usize).max(400);
            (requests, (200.0 * scale).max(50.0))
        }
    };
    let burst: f64 = flags.parse_num("burst", 10.0)?;
    let schedule = LoadgenConfig {
        requests: flags.parse_num("requests", default_requests)?,
        k: flags.parse_num("k", 10)?,
        zipf_exponent: flags.parse_num("zipf", 1.0)?,
        seed: flags.parse_num("seed", 42)?,
        base_rps: flags.parse_num("rps", default_rps)?,
        phases: vec![1.0, burst, 1.0, 1.0],
        phase_len: Duration::from_millis(flags.parse_num("phase-ms", 250)?),
        mode: arrivals,
        ..LoadgenConfig::default()
    };

    let report = if mode == "smoke" {
        // Self-contained: train the Tiny preset into a throwaway
        // registry, then run the burst entirely on simulated time. Every
        // quantity in the report is schedule-determined, so the JSON is
        // byte-identical on every machine — that's what lets
        // BENCH_serve.json act as a committed gate.
        let h = Harness::generate(11, Preset::Tiny);
        let train = h.split.train.clone();
        let mut bpr = Bpr::new(BprConfig {
            factors: 4,
            epochs: 2,
            ..BprConfig::default()
        });
        bpr.fit(&train);
        let mut most_read = MostReadItems::new();
        most_read.fit(&train);
        let mut closest =
            ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
        closest.fit(&train);
        let dir = std::env::temp_dir().join(format!("rm-loadgen-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ArtifactRegistry::new(dir.clone());
        registry
            .save(
                &Manifest {
                    epoch: 1,
                    fields: SummaryFields::BEST,
                },
                bpr.model().ok_or("BPR failed to fit")?,
                &most_read,
                closest.store(),
                // No ANN or quant in the smoke registry:
                // BENCH_serve.json's byte-identity gate pins the
                // exact-scan f32 schedule.
                None,
                None,
            )
            .map_err(|e| e.to_string())?;
        let overload = OverloadConfig {
            // Simulated per-level service cost: each brownout step sheds
            // real work, so each level is cheaper than the one above.
            service_cost: Some([
                Duration::from_micros(2_000),
                Duration::from_micros(1_500),
                Duration::from_micros(1_000),
                Duration::from_micros(700),
                Duration::from_micros(500),
            ]),
            ..OverloadConfig::default()
        };
        let config = EngineConfig::builder()
            .workers(1)
            .clock(Arc::new(FakeClock::new()))
            .overload(overload)
            .build()
            .map_err(|e| e.to_string())?;
        let engine = ServingEngine::load(&registry, &train, config).map_err(|e| e.to_string())?;
        let report = loadgen::run(&engine, &schedule).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_dir_all(&dir);
        report
    } else {
        let registry = ArtifactRegistry::new(PathBuf::from(flags.required("artifacts")?));
        let corpus = corpus_of(flags)?;
        let train = Interactions::from_corpus(&corpus);
        let config = EngineConfig::builder()
            .workers(1)
            .cache_capacity(flags.parse_num("cache", 4096)?)
            .overload(OverloadConfig::default())
            .build()
            .map_err(|e| e.to_string())?;
        let engine = ServingEngine::load(&registry, &train, config).map_err(|e| e.to_string())?;
        for (slot, reason) in engine.degraded() {
            eprintln!("DEGRADED {}: {reason}", slot.label());
        }
        loadgen::run(&engine, &schedule).map_err(|e| e.to_string())?
    };

    println!("{}", report.render_summary());
    let json = report.render_json();
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(gate) = flags.get("gate") {
        let committed = std::fs::read_to_string(gate).map_err(|e| e.to_string())?;
        if committed != json {
            return Err(format!(
                "loadgen report drifted from {gate}; regenerate with \
                 `serve-bench --loadgen smoke --out {gate}` and review the diff"
            ));
        }
        if !report.slo_met() {
            return Err(format!("SLO missed: {}", report.render_summary()));
        }
        println!("gate {gate}: report byte-identical and SLO met");
    }
    Ok(())
}

/// `metrics-dump`: replay a request stream through the engine and print
/// its metrics in Prometheus text exposition format (counters, latency
/// histogram with cumulative buckets, live breaker states).
fn cmd_metrics_dump(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let registry = ArtifactRegistry::new(PathBuf::from(flags.required("artifacts")?));
    let corpus = corpus_of(&flags)?;
    let train = Interactions::from_corpus(&corpus);
    let k: usize = flags.parse_num("k", 10)?;
    let requests: usize = flags.parse_num("requests", 1000)?;
    let config = EngineConfig::builder().build().map_err(|e| e.to_string())?;
    let engine = ServingEngine::load(&registry, &train, config).map_err(|e| e.to_string())?;
    for (slot, reason) in engine.degraded() {
        eprintln!("DEGRADED {}: {reason}", slot.label());
    }
    let users: Vec<UserIdx> = (0..requests)
        .map(|i| UserIdx((i % train.n_users()) as u32))
        .collect();
    std::hint::black_box(engine.recommend_batch(&users, k));
    print!("{}", engine.metrics_prometheus());
    Ok(())
}

/// `serve-bench --chaos` without the harness compiled in: refuse with a
/// pointer to the right build instead of silently benching fault-free.
#[cfg(not(feature = "testing"))]
fn cmd_serve_chaos(_flags: &Flags, _plan: &str) -> Result<(), String> {
    Err("--chaos needs the fault-injection harness; rebuild with \
         `cargo run -p reading-machine --features testing -- serve-bench ...`"
        .into())
}

/// `serve-bench --chaos PLAN`: replay the request stream with faults
/// injected into the engine and report availability, per-slot fault
/// counters, and circuit-breaker activity.
#[cfg(feature = "testing")]
fn cmd_serve_chaos(flags: &Flags, plan_name: &str) -> Result<(), String> {
    use reading_machine::serve::{CallWindow, FaultPlan};
    use std::time::Duration;

    let registry = ArtifactRegistry::new(PathBuf::from(flags.required("artifacts")?));
    let corpus = corpus_of(flags)?;
    let train = Interactions::from_corpus(&corpus);
    let k: usize = flags.parse_num("k", 10)?;
    let requests: usize = flags.parse_num("requests", 2000)?;
    // Cache off by default: a cache hit would mask the injected faults.
    let cache_capacity: usize = flags.parse_num("cache", 0)?;

    let stall = Duration::from_millis(10);
    let plan = match plan_name {
        "bpr-panic" => FaultPlan::none().panic_in(ModelSlot::Bpr, CallWindow::always()),
        "bpr-error" => FaultPlan::none().error_in(ModelSlot::Bpr, CallWindow::always()),
        "bpr-latency" => FaultPlan::none().latency(ModelSlot::Bpr, stall),
        "storm" => FaultPlan::none()
            .panic_in(ModelSlot::Bpr, CallWindow::always())
            .error_in(ModelSlot::ClosestItems, CallWindow::always())
            .latency(ModelSlot::MostRead, stall),
        other => {
            return Err(format!(
                "unknown chaos plan {other} (bpr-panic|bpr-error|bpr-latency|storm)"
            ))
        }
    };
    // Latency plans get a slot budget tight enough for the stall to trip
    // it, so timeouts and breaker trips show up in the report.
    let slot_budget =
        matches!(plan_name, "bpr-latency" | "storm").then(|| Duration::from_millis(2));

    // Injected panics are the point of the exercise: keep their reports
    // out of the output while real panics still print.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected fault"));
        if !injected {
            previous_hook(info);
        }
    }));

    let mut builder = EngineConfig::builder()
        .workers(4)
        .cache_capacity(cache_capacity);
    if let Some(budget) = slot_budget {
        builder = builder.slot_budget(budget);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let engine = ServingEngine::load_with_faults(&registry, &train, config, plan)
        .map_err(|e| e.to_string())?;

    let users: Vec<UserIdx> = (0..requests)
        .map(|i| UserIdx((i % train.n_users()) as u32))
        .collect();
    // Serve in small batches (as a kiosk frontend would) so the fault
    // counters see many slot calls and the breakers get to act.
    let batch: usize = flags.parse_num("batch", 64)?;
    let t0 = std::time::Instant::now();
    let mut answered = 0usize;
    for part in users.chunks(batch.max(1)) {
        answered += engine
            .recommend_batch(part, k)
            .iter()
            .filter(|a| !a.is_empty())
            .count();
    }
    let elapsed = t0.elapsed();

    let m = engine.metrics();
    println!(
        "serve-bench --chaos {plan_name}: {requests} requests over {} users, k={k}, {elapsed:.1?}",
        train.n_users()
    );
    println!(
        "availability {:.4} ({answered}/{requests} answered non-empty), worker panics {}",
        m.availability(),
        m.worker_panics
    );
    println!("{}", m.render());
    if let Some(states) = engine.breaker_states() {
        let rendered: Vec<String> = ModelSlot::ALL
            .iter()
            .map(|s| format!("{}={}", s.label(), states[s.index()].label()))
            .collect();
        println!("breaker states: {}", rendered.join("  "));
    }
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let corpus = load(&flags)?;
    let model_path = PathBuf::from(flags.required("model")?);
    let user: u32 = flags
        .required("user")?
        .parse()
        .map_err(|_| "bad --user".to_owned())?;
    let k: usize = flags.parse_num("k", 20)?;
    if user as usize >= corpus.n_users() {
        return Err(format!(
            "user {user} out of range (corpus has {})",
            corpus.n_users()
        ));
    }
    let bytes = std::fs::read(&model_path).map_err(|e| e.to_string())?;
    let model = reading_machine::core::persist::decode(&bytes).map_err(|e| e.to_string())?;
    let interactions = Interactions::from_corpus(&corpus);
    let mut bpr = Bpr::new(BprConfig::default());
    bpr.install(model, &interactions);
    println!("top-{k} for user {user}:");
    for (rank, b) in bpr.recommend(UserIdx(user), k).into_iter().enumerate() {
        let book = &corpus.books[b as usize];
        println!(
            "  {:>2}. {} — {}",
            rank + 1,
            book.title,
            book.authors.join(", ")
        );
    }
    Ok(())
}

/// `explain`: serve one user through the candidate pipeline and print
/// the provenance-backed reason behind every recommended title.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let registry = ArtifactRegistry::new(PathBuf::from(flags.required("artifacts")?));
    let corpus = corpus_of(&flags)?;
    let train = Interactions::from_corpus(&corpus);
    let user: u32 = flags
        .required("user")?
        .parse()
        .map_err(|_| "bad --user".to_owned())?;
    let k: usize = flags.parse_num("k", 10)?;
    if user as usize >= train.n_users() {
        return Err(format!(
            "user {user} out of range (corpus has {})",
            train.n_users()
        ));
    }
    // Genre lookup feeds genre-aware sources/filters; harmless otherwise.
    let config = EngineConfig::builder()
        .book_genres(Arc::new(BookGenres::from_corpus(&corpus)))
        .build()
        .map_err(|e| e.to_string())?;
    let engine = ServingEngine::load(&registry, &train, config).map_err(|e| e.to_string())?;
    for (slot, reason) in engine.degraded() {
        eprintln!("DEGRADED {}: {reason}", slot.label());
    }
    let (top, explanations) = engine.recommend_explained(UserIdx(user), k);
    if top.is_empty() {
        println!("no recommendations for user {user} (every slot degraded?)");
        return Ok(());
    }
    let title = |b: u32| corpus.books[b as usize].title.clone();
    println!("top-{k} for user {user} (epoch {}):", engine.epoch());
    for (rank, &b) in top.iter().enumerate() {
        let book = &corpus.books[b as usize];
        println!(
            "  {:>2}. {} — {}",
            rank + 1,
            book.title,
            book.authors.join(", ")
        );
        for ex in explanations.iter().filter(|ex| ex.book == b) {
            println!("      [{}] {}", ex.source.label(), ex.render(&title));
        }
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let k: usize = flags.parse_num("k", 20)?;
    let seed: u64 = flags.parse_num("seed", 42)?;
    if flags.get("corpus").is_none() {
        // No corpus on disk: run the whole timed pipeline, datagen
        // through eval, and report the per-stage breakdown.
        let preset = preset_of(&flags)?;
        let result = run_timed_pipeline(
            seed,
            preset,
            BprConfig::default(),
            SummaryFields::BEST,
            k,
            Arc::new(MonotonicClock::new()),
        );
        println!("KPIs @{k} over {} test users:", result.kpis[0].n_users);
        let names = ["Random Items", "Most Read Items", "Closest Items", "BPR"];
        for (name, m) in names.iter().zip(&result.kpis) {
            print_kpi_row(name, m);
        }
        println!("pipeline stages:");
        println!("{}", result.timer.table().render());
        return Ok(());
    }
    let corpus = load(&flags)?;
    let mut timer = PipelineTimer::real();
    let harness = timer.time("dataset_prep", || {
        Harness::from_corpus(corpus, &SplitConfig::default())
    });
    let suite = TrainedSuite::train_timed(
        &harness,
        BprConfig::default(),
        SummaryFields::BEST,
        seed,
        &mut timer,
    );
    let cases = harness.test_cases();
    println!("KPIs @{k} over {} test users:", cases.len());
    timer.time("eval", || {
        for rec in [
            &suite.random as &(dyn Recommender + Sync),
            &suite.most_read,
            &suite.closest,
            &suite.bpr,
        ] {
            let m = evaluate_parallel(rec, &cases, k, default_threads());
            print_kpi_row(rec.name(), &m);
        }
    });
    println!("pipeline stages:");
    println!("{}", timer.table().render());
    Ok(())
}

fn print_kpi_row(name: &str, m: &reading_machine::eval::Kpis) {
    println!(
        "  {:<16} URR {:.2}  NRR {:.2}  P {:.3}  R {:.3}  FR {:.0}",
        name, m.urr, m.nrr, m.precision, m.recall, m.first_rank
    );
}
