//! Prints the merged-corpus statistics for a preset, for calibration
//! against the paper's Section 3 numbers.
//!
//! Usage: `cargo run --release -p rm-datagen --example calibrate [paper|medium|tiny] [seed]`

use rm_datagen::Preset;
use rm_dataset::stats::{dominant_genre_share, genre_shares, reading_cdfs, summarize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let preset = match args.get(1).map(String::as_str) {
        Some("paper") => Preset::Paper,
        Some("tiny") => Preset::Tiny,
        _ => Preset::Medium,
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let t0 = std::time::Instant::now();
    let corpus = rm_datagen::generate_corpus(seed, preset);
    println!("generated {preset:?} corpus in {:.1?}", t0.elapsed());

    let s = summarize(&corpus);
    println!("{s:#?}");

    let (per_user, per_book) = reading_cdfs(&corpus);
    println!(
        "readings/user: p25={} p50={} p75={} p95={} max={:?}",
        per_user.quantile(0.25),
        per_user.quantile(0.5),
        per_user.quantile(0.75),
        per_user.quantile(0.95),
        per_user.max()
    );
    println!(
        "readings/book: p25={} p50={} p75={} p95={} max={:?}",
        per_book.quantile(0.25),
        per_book.quantile(0.5),
        per_book.quantile(0.75),
        per_book.quantile(0.95),
        per_book.max()
    );

    println!("top genre shares of readings:");
    for (label, share) in genre_shares(&corpus).into_iter().take(8) {
        println!("  {label:<28} {share:.3}");
    }
    println!(
        "users with 2 dominant genres (>=10x): {:.3}",
        dominant_genre_share(&corpus, 10.0, 10)
    );
}
