//! Italian-flavoured vocabulary generation.
//!
//! Titles, plots, and keywords need three properties: (a) they must read as
//! plausible Italian strings (the pipeline filters on language and tokenises
//! accents), (b) genre-specific vocabularies must exist so that plot/keyword
//! similarity carries signal between same-genre books (Fig. 5), and (c) the
//! vocabulary must be large enough that *titles* are mostly non-informative
//! (the paper finds title-only CB ≈ random). A seeded syllable generator
//! gives unbounded vocabulary; small curated pools anchor the style.

use rand::{Rng, RngExt};
use rm_util::rng::SeedTree;
use rm_util::sample::sample_weighted_once;

/// Syllable onsets for generated words.
const ONSETS: [&str; 20] = [
    "b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "tr", "st", "gr",
    "sc", "fr",
];

/// Syllable nuclei.
const NUCLEI: [&str; 8] = ["a", "e", "i", "o", "u", "ia", "io", "ie"];

/// Word endings typical of Italian nouns.
const ENDINGS: [&str; 8] = ["a", "o", "e", "i", "ina", "etto", "ore", "ione"];

/// Common Italian function words used to glue titles/plots together.
pub const FUNCTION_WORDS: [&str; 12] = [
    "il", "la", "le", "i", "un", "una", "di", "del", "della", "nel", "con", "per",
];

/// Curated first names for authors.
pub const FIRST_NAMES: [&str; 24] = [
    "Alessandro",
    "Giulia",
    "Marco",
    "Francesca",
    "Luca",
    "Elena",
    "Andrea",
    "Sara",
    "Matteo",
    "Chiara",
    "Davide",
    "Anna",
    "Stefano",
    "Laura",
    "Paolo",
    "Martina",
    "Simone",
    "Valentina",
    "Giorgio",
    "Silvia",
    "Antonio",
    "Elisa",
    "Roberto",
    "Irene",
];

/// Curated surname stems; the generator appends generated surnames too.
pub const SURNAMES: [&str; 24] = [
    "Rossi", "Bianchi", "Ferrari", "Russo", "Esposito", "Romano", "Colombo", "Ricci", "Marino",
    "Greco", "Bruno", "Gallo", "Conti", "DeLuca", "Mancini", "Costa", "Giordano", "Rizzo",
    "Lombardi", "Moretti", "Barbieri", "Fontana", "Santoro", "Mariani",
];

/// Generates one pseudo-Italian word of 2–4 syllables.
#[must_use]
pub fn generate_word<R: Rng + ?Sized>(rng: &mut R) -> String {
    let syllables = rng.random_range(2..=3usize);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
        w.push_str(NUCLEI[rng.random_range(0..NUCLEI.len())]);
    }
    w.push_str(ENDINGS[rng.random_range(0..ENDINGS.len())]);
    w
}

/// A fixed-size pool of generated words with Zipf-ish sampling weights,
/// deterministic from the seed tree node.
#[derive(Debug, Clone)]
pub struct WordPool {
    words: Vec<String>,
    weights: Vec<f64>,
}

impl WordPool {
    /// Generates `size` distinct words under `tree`'s seed.
    #[must_use]
    pub fn generate(tree: &SeedTree, size: usize) -> Self {
        let mut rng = tree.rng();
        let mut seen = std::collections::HashSet::with_capacity(size);
        let mut words = Vec::with_capacity(size);
        while words.len() < size {
            let w = generate_word(&mut rng);
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        let weights = (0..size).map(|r| 1.0 / (r + 1) as f64).collect();
        Self { words, weights }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Samples one word (Zipf-weighted).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.words[sample_weighted_once(rng, &self.weights)]
    }

    /// Word at a fixed index (for deterministic association, e.g. keyword
    /// `i` of a genre).
    #[must_use]
    pub fn word(&self, i: usize) -> &str {
        &self.words[i % self.words.len()]
    }
}

/// Per-genre vocabulary: a themed pool for plots/keywords plus a shared
/// generic pool for titles and filler.
#[derive(Debug, Clone)]
pub struct GenreLexicon {
    /// Genre-specific content words.
    pub themed: WordPool,
}

impl GenreLexicon {
    /// Builds the lexicon of genre `g`.
    #[must_use]
    pub fn generate(tree: &SeedTree, genre: usize, size: usize) -> Self {
        Self {
            themed: WordPool::generate(&tree.child("genre").child_idx(genre as u64), size),
        }
    }
}

/// Renders a title: 2–5 words, mostly from the generic pool with a small
/// chance of one themed word, interleaved with function words.
#[must_use]
pub fn render_title<R: Rng + ?Sized>(
    rng: &mut R,
    generic: &WordPool,
    themed: &WordPool,
    themed_prob: f64,
) -> String {
    let n_content = rng.random_range(1..=3usize);
    let mut parts: Vec<String> = Vec::with_capacity(2 * n_content);
    if rng.random_bool(0.6) {
        parts.push(FUNCTION_WORDS[rng.random_range(0..FUNCTION_WORDS.len())].to_owned());
    }
    for i in 0..n_content {
        if i > 0 && rng.random_bool(0.4) {
            parts.push(FUNCTION_WORDS[rng.random_range(0..FUNCTION_WORDS.len())].to_owned());
        }
        let pool = if rng.random_bool(themed_prob) {
            themed
        } else {
            generic
        };
        let mut w = pool.sample(rng).to_owned();
        if let Some(first) = w.get_mut(0..1) {
            first.make_ascii_uppercase();
        }
        parts.push(w);
    }
    parts.join(" ")
}

/// Renders a plot: `len` words, `themed_frac` of them from the genre pool.
#[must_use]
pub fn render_plot<R: Rng + ?Sized>(
    rng: &mut R,
    generic: &WordPool,
    themed: &WordPool,
    len: usize,
    themed_frac: f64,
) -> String {
    let mut parts = Vec::with_capacity(len);
    for i in 0..len {
        if i % 4 == 3 {
            parts.push(FUNCTION_WORDS[rng.random_range(0..FUNCTION_WORDS.len())].to_owned());
        }
        let pool = if rng.random_bool(themed_frac) {
            themed
        } else {
            generic
        };
        parts.push(pool.sample(rng).to_owned());
    }
    parts.join(" ")
}

/// Renders an author name.
///
/// Both parts mix curated Italian names with generated ones: a large
/// namespace keeps author identity a low-collision signal for the
/// content-based recommender (two authors sharing a first name would
/// otherwise look ~50 % similar to a bag-of-tokens encoder).
#[must_use]
pub fn render_author<R: Rng + ?Sized>(rng: &mut R, surname_pool: &WordPool) -> String {
    let first = if rng.random_bool(0.4) {
        FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())].to_owned()
    } else {
        let mut f = surname_pool.sample(rng).to_owned();
        if let Some(first_ch) = f.get_mut(0..1) {
            first_ch.make_ascii_uppercase();
        }
        // Distinguish generated first names from generated surnames.
        f.push('o');
        f
    };
    // Mostly generated surnames — a large namespace keeps author identity
    // a strong, low-collision signal (curated names only flavour it).
    let surname = if rng.random_bool(0.08) {
        SURNAMES[rng.random_range(0..SURNAMES.len())].to_owned()
    } else {
        let mut s = surname_pool.sample(rng).to_owned();
        if let Some(first_ch) = s.get_mut(0..1) {
            first_ch.make_ascii_uppercase();
        }
        s
    };
    format!("{first} {surname}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    #[test]
    fn words_are_plausible_and_deterministic() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(1);
        for _ in 0..50 {
            let wa = generate_word(&mut a);
            let wb = generate_word(&mut b);
            assert_eq!(wa, wb);
            assert!(wa.len() >= 3);
            assert!(wa.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn pool_has_distinct_words() {
        let pool = WordPool::generate(&SeedTree::new(2), 500);
        let set: std::collections::HashSet<_> = (0..pool.len()).map(|i| pool.word(i)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn pool_sampling_is_skewed_to_head() {
        let pool = WordPool::generate(&SeedTree::new(3), 100);
        let mut rng = rng_from_seed(4);
        let head = pool.word(0).to_owned();
        let head_count = (0..5000).filter(|_| pool.sample(&mut rng) == head).count();
        // Zipf head of 100 words carries ~1/H(100) ≈ 19 % of the mass.
        assert!(head_count > 500, "head sampled {head_count} of 5000");
    }

    #[test]
    fn genre_lexicons_differ() {
        let tree = SeedTree::new(5);
        let a = GenreLexicon::generate(&tree, 0, 50);
        let b = GenreLexicon::generate(&tree, 1, 50);
        let wa: std::collections::HashSet<_> =
            (0..50).map(|i| a.themed.word(i).to_owned()).collect();
        let wb: std::collections::HashSet<_> =
            (0..50).map(|i| b.themed.word(i).to_owned()).collect();
        let overlap = wa.intersection(&wb).count();
        assert!(overlap < 5, "genre lexicons overlap too much: {overlap}");
    }

    #[test]
    fn titles_render_capitalised_words() {
        let tree = SeedTree::new(6);
        let generic = WordPool::generate(&tree.child("g"), 200);
        let themed = WordPool::generate(&tree.child("t"), 50);
        let mut rng = rng_from_seed(7);
        for _ in 0..20 {
            let t = render_title(&mut rng, &generic, &themed, 0.2);
            assert!(!t.is_empty());
            assert!(t.chars().any(|c| c.is_ascii_uppercase()), "title {t}");
        }
    }

    #[test]
    fn plots_have_requested_length_scale() {
        let tree = SeedTree::new(8);
        let generic = WordPool::generate(&tree.child("g"), 200);
        let themed = WordPool::generate(&tree.child("t"), 50);
        let mut rng = rng_from_seed(9);
        let p = render_plot(&mut rng, &generic, &themed, 20, 0.5);
        let words = p.split_whitespace().count();
        assert!(words >= 20, "plot has {words} words");
    }

    #[test]
    fn authors_have_first_and_last_name() {
        let tree = SeedTree::new(10);
        let pool = WordPool::generate(&tree, 100);
        let mut rng = rng_from_seed(11);
        for _ in 0..20 {
            let a = render_author(&mut rng, &pool);
            assert_eq!(a.split(' ').count(), 2, "author {a}");
        }
    }
}
