//! Reading-event generation: loans (BCT) and ratings (Anobii).
//!
//! Each user's readings are sampled from a three-way mixture:
//!
//! * **author loyalty** — with probability `author_loyalty`, the next book
//!   is another book by an author the user has already read (the content
//!   signal the paper's best metadata summary, authors+genres, exploits);
//! * **genre popularity** — otherwise a genre is drawn from the user's
//!   profile and a popularity-weighted book of that genre is picked (the
//!   collaborative signal: users sharing dominant genres co-read);
//! * **catalogue bias** — each draw lands in the overlap catalogue with
//!   probability `overlap_bias`, in the source-exclusive catalogue
//!   otherwise (exercising the merge-time drop path).
//!
//! Readings are distinct per user; BCT additionally emits occasional
//! re-loans of the same book so the merge's deduplication path sees real
//! duplicates.

use crate::config::{GeneratorConfig, RatingModel, SourceConfig};
use crate::users::{sample_reading_genre, sample_reading_subcluster, SourceKind, UserProfile};
use crate::world::World;
use rand::{Rng, RngExt};
use rm_dataset::ids::Day;
use rm_dataset::tables::{LoanRow, LoansTable, RatingRow, RatingsTable};
use rm_util::rng::SeedTree;
use rm_util::sample::sample_weighted_once;
use std::collections::HashSet;

/// Observation window of the BCT loans (2012–2020).
const LOAN_DAYS: std::ops::Range<u32> = 0..(8 * Day::PER_YEAR);
/// Observation window of the Anobii ratings (2014–2021).
const RATING_DAYS: std::ops::Range<u32> = (2 * Day::PER_YEAR)..(9 * Day::PER_YEAR);

/// Probability that a BCT loan is repeated later (same user, same book).
const RELOAN_PROB: f64 = 0.05;

/// Author-loyalty chains anchor on one of the user's most recent readings.
const RECENCY_WINDOW: usize = 15;

/// Reader fatigue: a user completes at most this many books of one author
/// before moving on. Heavy readers therefore span many exploration-found
/// authors — whose scattered fan bases give collaborative filtering little
/// to work with, while author metadata still identifies them (Fig. 4).
const AUTHOR_FATIGUE: u32 = 3;

/// Interest drift: every ~ERA_LENGTH readings a user's tastes shift — the
/// preferred sub-communities are re-drawn and the secondary dominant genre
/// may change. A heavy reader's history therefore spans several eras that
/// a single CF user vector must average over, while author metadata keeps
/// matching era-locally.
const ERA_LENGTH: usize = 30;

/// Samples one user's distinct reading set (world book indices).
fn sample_user_books<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &SourceConfig,
    world: &World,
    user: &UserProfile,
    kind: SourceKind,
) -> Vec<u32> {
    let visible = kind.visible_classes();
    let exclusive = kind.exclusive_class();
    let view = user.pop_view;
    let n_subs = world.n_subclusters().max(1) as u8;
    let target = user.n_events as usize;
    let mut seen: HashSet<u32> = HashSet::with_capacity(target);
    let mut order: Vec<u32> = Vec::with_capacity(target);
    let mut author_counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let max_attempts = target.saturating_mul(12).max(32);
    let mut attempts = 0usize;
    let mut era_user = *user;
    let mut next_era = ERA_LENGTH;

    while order.len() < target && attempts < max_attempts {
        attempts += 1;
        if order.len() >= next_era {
            next_era += ERA_LENGTH;
            era_user.subclusters = [rng.random_range(0..n_subs), rng.random_range(0..n_subs)];
            if rng.random_bool(0.5) {
                era_user.dominant[1] = sample_reading_genre(rng, cfg, user);
            }
        }
        let user = &era_user;
        let candidate = if !order.is_empty() && rng.random_bool(cfg.author_loyalty) {
            // Follow a known author, anchored on a *recent* reading:
            // readers chain from what they just read, so seasoned readers
            // extend the obscure authors of their explored tail rather
            // than the popular authors of their early history. Fatigued
            // authors (already read AUTHOR_FATIGUE times) are not chained
            // further.
            let window = order.len().min(RECENCY_WINDOW);
            let start = order.len() - window;
            let anchor = order[start + rng.random_range(0..window)];
            let author = world.books[anchor as usize].author;
            if author_counts.get(&author).copied().unwrap_or(0) >= AUTHOR_FATIGUE {
                None
            } else {
                world.sample_same_author(rng, anchor, &visible)
            }
        } else {
            None
        };
        // A chained book the reader already has is a dead end, not a
        // candidate: without this the loop can livelock on a fully-read
        // small-catalogue author (loyalty re-proposes the same books and
        // the genre fallback below never runs).
        let candidate = candidate.filter(|b| !seen.contains(b));
        let candidate = candidate.or_else(|| {
            let genre = sample_reading_genre(rng, cfg, user);
            let class = if rng.random_bool(cfg.overlap_bias) {
                crate::world::Membership::Overlap
            } else {
                exclusive
            };
            // Experience-dependent exploration: seasoned readers
            // increasingly pick long-tail books of their genres.
            let n = order.len() as f64;
            let eps = cfg.exploration_max * n / (n + cfg.exploration_halflife);
            if rng.random_bool(eps.clamp(0.0, 1.0)) {
                world.sample_book_uniform(rng, genre, class)
            } else {
                let sub = sample_reading_subcluster(rng, cfg, user, n_subs);
                world.sample_book_sub(rng, genre, sub, class, view)
            }
        });
        let Some(book) = candidate else {
            continue;
        };
        if seen.insert(book) {
            *author_counts
                .entry(world.books[book as usize].author)
                .or_insert(0) += 1;
            order.push(book);
        }
    }
    order
}

/// Generates the BCT Loans table for a population.
#[must_use]
pub fn generate_loans(
    tree: &SeedTree,
    config: &GeneratorConfig,
    world: &World,
    users: &[UserProfile],
) -> LoansTable {
    let mut rows: Vec<LoanRow> = Vec::new();
    for user in users {
        let mut rng = tree.child_idx(u64::from(user.raw_id)).rng();
        let books = sample_user_books(&mut rng, &config.bct, world, user, SourceKind::Bct);
        for book in books {
            let Some(book_id) = world.books[book as usize].bct_id else {
                debug_assert!(false, "BCT-visible book without a BCT id");
                continue;
            };
            let date = Day(rng.random_range(LOAN_DAYS));
            rows.push(LoanRow {
                user_id: rm_dataset::ids::BctUserId(user.raw_id),
                book_id,
                date,
            });
            if rng.random_bool(RELOAN_PROB) {
                rows.push(LoanRow {
                    user_id: rm_dataset::ids::BctUserId(user.raw_id),
                    book_id,
                    date: Day(rng.random_range(LOAN_DAYS)),
                });
            }
        }
    }
    LoansTable { rows }
}

/// Samples a star rating from the model.
fn sample_rating<R: Rng + ?Sized>(rng: &mut R, model: &RatingModel) -> u8 {
    (sample_weighted_once(rng, &model.probs) + 1) as u8
}

/// Generates the Anobii Ratings table for a population.
#[must_use]
pub fn generate_ratings(
    tree: &SeedTree,
    config: &GeneratorConfig,
    world: &World,
    users: &[UserProfile],
) -> RatingsTable {
    let mut rows: Vec<RatingRow> = Vec::new();
    for user in users {
        let mut rng = tree.child_idx(u64::from(user.raw_id)).rng();
        let books = sample_user_books(&mut rng, &config.anobii, world, user, SourceKind::Anobii);
        for book in books {
            let Some(item_id) = world.books[book as usize].anobii_id else {
                debug_assert!(false, "Anobii-visible book without an item id");
                continue;
            };
            rows.push(RatingRow {
                user_id: rm_dataset::ids::AnobiiUserId(user.raw_id),
                item_id,
                rating: sample_rating(&mut rng, &config.rating),
                date: Day(rng.random_range(RATING_DAYS)),
            });
        }
    }
    RatingsTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Preset;
    use crate::users::generate_population;
    use rm_util::rng::rng_from_seed;

    fn setup() -> (GeneratorConfig, World, Vec<UserProfile>, Vec<UserProfile>) {
        let config = Preset::Tiny.generator_config();
        let world = World::generate(&SeedTree::new(1), &config);
        let bct = generate_population(
            &SeedTree::new(2),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        let anobii = generate_population(
            &SeedTree::new(3),
            &config.anobii,
            &world,
            SourceKind::Anobii,
            None,
        );
        (config, world, bct, anobii)
    }

    #[test]
    fn loans_reference_valid_bct_books() {
        let (config, world, bct, _) = setup();
        let loans = generate_loans(&SeedTree::new(4), &config, &world, &bct);
        let table = world.bct_books_table();
        assert!(!loans.rows.is_empty());
        for row in &loans.rows {
            assert!(row.book_id.index() < table.rows.len());
            assert!(LOAN_DAYS.contains(&row.date.0));
        }
    }

    #[test]
    fn ratings_reference_valid_items_with_valid_stars() {
        let (config, world, _, anobii) = setup();
        let ratings = generate_ratings(&SeedTree::new(5), &config, &world, &anobii);
        let table = world.anobii_items_table();
        assert!(!ratings.rows.is_empty());
        for row in &ratings.rows {
            assert!(row.item_id.index() < table.rows.len());
            assert!((1..=5).contains(&row.rating));
            assert!(RATING_DAYS.contains(&row.date.0));
        }
    }

    #[test]
    fn events_are_deterministic() {
        let (config, world, bct, _) = setup();
        let a = generate_loans(&SeedTree::new(6), &config, &world, &bct);
        let b = generate_loans(&SeedTree::new(6), &config, &world, &bct);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn loans_contain_some_reloans() {
        let (config, world, bct, _) = setup();
        let loans = generate_loans(&SeedTree::new(7), &config, &world, &bct);
        let mut pairs: Vec<(u32, u32)> = loans
            .rows
            .iter()
            .map(|r| (r.user_id.raw(), r.book_id.raw()))
            .collect();
        let total = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert!(pairs.len() < total, "expected duplicate (user, book) loans");
    }

    #[test]
    fn user_readings_are_distinct_and_bounded() {
        let (config, world, bct, _) = setup();
        let mut rng = rng_from_seed(8);
        for user in bct.iter().take(20) {
            let books = sample_user_books(&mut rng, &config.bct, &world, user, SourceKind::Bct);
            let set: HashSet<u32> = books.iter().copied().collect();
            assert_eq!(set.len(), books.len(), "duplicates in reading set");
            assert!(books.len() <= user.n_events as usize);
        }
    }

    #[test]
    fn author_loyalty_concentrates_readings() {
        // With loyalty 0.9 a user's readings should span far fewer authors
        // than with loyalty 0.0.
        let (mut config, world, _, _) = setup();
        let user = UserProfile {
            raw_id: 0,
            n_events: 30,
            dominant: [0, 1],
            split: 0.6,
            subclusters: [0, 1],
            pop_view: crate::world::PopView::Bct,
        };
        let mut authors_spanned = |loyalty: f64, seed: u64| {
            config.bct.author_loyalty = loyalty;
            let mut rng = rng_from_seed(seed);
            let books = sample_user_books(&mut rng, &config.bct, &world, &user, SourceKind::Bct);
            books
                .iter()
                .map(|&b| world.books[b as usize].author)
                .collect::<HashSet<_>>()
                .len()
        };
        let loyal: usize = (0..5).map(|s| authors_spanned(0.9, s)).sum();
        let free: usize = (0..5).map(|s| authors_spanned(0.0, s)).sum();
        assert!(loyal < free, "loyal {loyal} vs free {free}");
    }

    #[test]
    fn author_fatigue_forces_author_spread() {
        // A fully loyal reader would camp on one or two authors forever;
        // the fatigue cap forces chains to abandon an author after
        // AUTHOR_FATIGUE books, so a heavy reader must span many authors.
        let (config, world, _, _) = setup();
        let user = UserProfile {
            raw_id: 0,
            n_events: 40,
            dominant: [0, 1],
            split: 0.6,
            subclusters: [0, 1],
            pop_view: crate::world::PopView::Bct,
        };
        let mut cfg = config.bct.clone();
        cfg.author_loyalty = 1.0;
        cfg.exploration_max = 0.0;
        let mut rng = rng_from_seed(31);
        let books = sample_user_books(&mut rng, &cfg, &world, &user, SourceKind::Bct);
        let authors: std::collections::HashSet<u32> = books
            .iter()
            .map(|&b| world.books[b as usize].author)
            .collect();
        assert!(
            authors.len() as u32 * (AUTHOR_FATIGUE + 2) >= books.len() as u32,
            "{} books across only {} authors",
            books.len(),
            authors.len()
        );
        assert!(
            authors.len() >= 4,
            "full loyalty without fatigue would camp on 1-2 authors"
        );
    }

    #[test]
    fn exploration_grows_with_experience() {
        // With subcluster preference at 1.0 and no author loyalty, the
        // only way out of the two preferred sub-communities is the
        // experience-dependent exploration — so late readings must leave
        // the preferred cells more often than early ones.
        let (config, world, _, _) = setup();
        let mut cfg = config.bct.clone();
        cfg.author_loyalty = 0.0;
        cfg.subcluster_mass = 1.0;
        cfg.dominant_mass = 1.0;
        let mut early_in = 0usize;
        let mut early_n = 0usize;
        let mut late_in = 0usize;
        let mut late_n = 0usize;
        let mut rng = rng_from_seed(32);
        for raw_id in 0..25u32 {
            let user = UserProfile {
                raw_id,
                n_events: 60,
                dominant: [0, 1],
                split: 0.6,
                subclusters: [(raw_id % 4) as u8, ((raw_id + 1) % 4) as u8],
                pop_view: crate::world::PopView::Bct,
            };
            let books = sample_user_books(&mut rng, &cfg, &world, &user, SourceKind::Bct);
            let half = books.len() / 2;
            for (i, &b) in books.iter().enumerate() {
                let s = world.books[b as usize].subcluster;
                let in_pref = s == user.subclusters[0] || s == user.subclusters[1];
                if i < half {
                    early_n += 1;
                    early_in += usize::from(in_pref);
                } else {
                    late_n += 1;
                    late_in += usize::from(in_pref);
                }
            }
        }
        let early = early_in as f64 / early_n as f64;
        let late = late_in as f64 / late_n as f64;
        assert!(
            early > late + 0.03,
            "early {early:.3} should be more concentrated than late {late:.3}"
        );
    }

    #[test]
    fn rating_distribution_matches_model() {
        let model = RatingModel::default();
        let mut rng = rng_from_seed(9);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[(sample_rating(&mut rng, &model) - 1) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            assert!(
                (got - model.probs[s]).abs() < 0.01,
                "star {}: got {got} want {}",
                s + 1,
                model.probs[s]
            );
        }
    }
}
