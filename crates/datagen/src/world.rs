//! The shared book world: authors, books, catalogue views.
//!
//! Books are generated genre-by-popularity so the reading sampler can draw
//! "a popular book of genre g visible in source s" in O(1). The same world
//! book is rendered into both catalogue tables (with the same title and
//! author, which is the join key of the merge stage); each table
//! additionally receives noise rows — foreign-language editions, DVDs,
//! non-book items — that the Section 3 filters must remove.

use crate::config::{GeneratorConfig, WorldConfig};
use crate::lexicon::{render_author, render_plot, render_title, GenreLexicon, WordPool};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use rm_dataset::genre::{genre_id, GenreId, N_RAW_GENRES};
use rm_dataset::ids::{AnobiiItemId, BctBookId};
use rm_dataset::tables::{
    AnobiiItemRow, AnobiiItemsTable, BctBookRow, BctBooksTable, ItemType, Language,
};
use rm_util::rng::SeedTree;
use rm_util::sample::{sample_weighted_once, AliasTable, ZipfWeights};

/// Which catalogue(s) a world book appears in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// Present in both catalogues (merge candidate).
    Overlap,
    /// BCT exclusive.
    BctOnly,
    /// Anobii exclusive.
    AnobiiOnly,
}

/// Which source's popularity profile a draw follows. Within-genre
/// popularity diverges between the two publics (controlled by
/// [`crate::config::WorldConfig::popularity_divergence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopView {
    /// The library public's popularity.
    Bct,
    /// The Anobii community's popularity.
    Anobii,
}

/// One book of the world.
#[derive(Debug, Clone)]
pub struct WorldBook {
    /// Title (identical in both catalogue views).
    pub title: String,
    /// Index into [`World::authors`].
    pub author: u32,
    /// Sub-community within the primary genre (inherited from the
    /// author; invisible to metadata).
    pub subcluster: u8,
    /// Primary genre (raw taxonomy).
    pub primary_genre: u8,
    /// Secondary genre.
    pub secondary_genre: u8,
    /// Catalogue membership.
    pub membership: Membership,
    /// Plot synopsis (rendered into the Anobii view).
    pub plot: String,
    /// Keywords (Anobii view).
    pub keywords: Vec<String>,
    /// Crowd-sourced genre votes (Anobii view).
    pub genre_votes: Vec<(GenreId, u32)>,
    /// Row id in the generated BCT Books table, when present there.
    pub bct_id: Option<BctBookId>,
    /// Row id in the generated Anobii Items table, when present there.
    pub anobii_id: Option<AnobiiItemId>,
}

/// One author.
#[derive(Debug, Clone)]
pub struct Author {
    /// Display name (used in both catalogue views).
    pub name: String,
    /// The genre most of this author's books belong to.
    pub home_genre: u8,
    /// Sub-community within the home genre.
    pub subcluster: u8,
}

/// A weighted book pool.
#[derive(Debug, Clone)]
struct CellSampler {
    books: Vec<u32>,
    alias: AliasTable,
}

impl CellSampler {
    fn build(ids: Vec<u32>, weight_of: impl Fn(u32) -> f64) -> Option<Self> {
        if ids.is_empty() {
            return None;
        }
        let weights: Vec<f64> = ids.iter().map(|&i| weight_of(i)).collect();
        Some(Self {
            alias: AliasTable::new(&weights),
            books: ids,
        })
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.books[self.alias.sample(rng)]
    }
}

/// Samplers of one (view, class, genre) cell: the whole genre plus one
/// pool per sub-community.
#[derive(Debug, Clone)]
struct GenreSampler {
    all: CellSampler,
    by_sub: Vec<Option<CellSampler>>,
}

/// The generated world.
#[derive(Debug)]
pub struct World {
    /// All books (overlap first, then BCT-only, then Anobii-only).
    pub books: Vec<WorldBook>,
    /// All authors.
    pub authors: Vec<Author>,
    /// Books per author (indices into `books`).
    pub author_books: Vec<Vec<u32>>,
    /// `samplers[view][class][genre]`.
    samplers: [[Vec<Option<GenreSampler>>; 3]; 2],
    bct_table: BctBooksTable,
    anobii_table: AnobiiItemsTable,
}

fn class_index(m: Membership) -> usize {
    match m {
        Membership::Overlap => 0,
        Membership::BctOnly => 1,
        Membership::AnobiiOnly => 2,
    }
}

fn view_index(v: PopView) -> usize {
    match v {
        PopView::Bct => 0,
        PopView::Anobii => 1,
    }
}

impl World {
    /// Generates the world under `tree`'s seed.
    #[must_use]
    pub fn generate(tree: &SeedTree, config: &GeneratorConfig) -> Self {
        let wc = &config.world;
        let generic = WordPool::generate(&tree.child("generic"), wc.generic_lexicon_size);
        let surnames = WordPool::generate(&tree.child("surnames"), 2_000);
        let lexicons: Vec<GenreLexicon> = (0..N_RAW_GENRES)
            .map(|g| GenreLexicon::generate(tree, g, wc.genre_lexicon_size))
            .collect();

        let mut rng = tree.child("books").rng();
        let genre_alias = AliasTable::new(&wc.book_genre_shares);
        let pop = ZipfWeights::with_shift(wc.popularity_zipf, wc.popularity_shift);

        // --- Books, class by class so overlap books take the popular
        // within-genre ranks (libraries stock what is popular). ---
        let class_sizes = [
            (Membership::Overlap, wc.n_overlap_books),
            (Membership::BctOnly, wc.n_bct_only_books),
            (Membership::AnobiiOnly, wc.n_anobii_only_books),
        ];
        let mut books: Vec<WorldBook> =
            Vec::with_capacity(class_sizes.iter().map(|&(_, n)| n).sum());
        let mut genre_rank = vec![0usize; N_RAW_GENRES];
        let mut popularity: Vec<f64> = Vec::with_capacity(books.capacity());
        for (membership, n) in class_sizes {
            for _ in 0..n {
                let primary = genre_alias.sample(&mut rng) as u8;
                let secondary = loop {
                    let s = genre_alias.sample(&mut rng) as u8;
                    if s != primary {
                        break s;
                    }
                };
                let themed = &lexicons[primary as usize].themed;
                let title = render_title(&mut rng, &generic, themed, 0.15);
                let plot = render_plot(&mut rng, &generic, themed, wc.plot_len, 0.28);
                // Keywords are crowd-sourced and noisy: fewer than half
                // come from the genre's vocabulary, the rest are generic.
                let keywords: Vec<String> = (0..wc.n_keywords)
                    .map(|_| {
                        if rng.random_bool(0.4) {
                            themed.sample(&mut rng).to_owned()
                        } else {
                            generic.sample(&mut rng).to_owned()
                        }
                    })
                    .collect();
                let genre_votes = Self::sample_genre_votes(&mut rng, primary, secondary);
                let rank = genre_rank[primary as usize];
                genre_rank[primary as usize] += 1;
                popularity.push(pop.weight(rank));
                books.push(WorldBook {
                    title,
                    author: u32::MAX, // assigned below
                    subcluster: 0,    // inherited from the author below
                    primary_genre: primary,
                    secondary_genre: secondary,
                    membership,
                    plot,
                    keywords,
                    genre_votes,
                    bct_id: None,
                    anobii_id: None,
                });
            }
        }

        // --- Authors: per genre, enough authors for the genre's books at
        // the configured productivity; assignment is Zipf so head authors
        // carry long series. ---
        let mut author_rng = tree.child("authors").rng();
        let mut authors: Vec<Author> = Vec::new();
        let mut author_books: Vec<Vec<u32>> = Vec::new();
        let comics = genre_id("Comics").expect("Comics in taxonomy").0;
        for g in 0..N_RAW_GENRES {
            let genre_books: Vec<u32> = books
                .iter()
                .enumerate()
                .filter(|(_, b)| b.primary_genre == g as u8)
                .map(|(i, _)| i as u32)
                .collect();
            if genre_books.is_empty() {
                continue;
            }
            let bpa = if g as u8 == comics {
                wc.books_per_author * wc.comics_series_boost
            } else {
                wc.books_per_author
            };
            let n_authors = ((genre_books.len() as f64 / bpa).ceil() as usize).max(1);
            let base = authors.len();
            let n_subs = wc.subclusters_per_genre.max(1);
            for k in 0..n_authors {
                authors.push(Author {
                    name: render_author(&mut author_rng, &surnames),
                    home_genre: g as u8,
                    // Cycle sub-communities so each is populated even when
                    // the genre has few authors.
                    subcluster: (k % n_subs) as u8,
                });
                author_books.push(Vec::new());
            }
            let weights = ZipfWeights::new(1.0).weights(n_authors);
            let author_pick = AliasTable::new(&weights);
            for &b in &genre_books {
                let a = (base + author_pick.sample(&mut author_rng)) as u32;
                books[b as usize].author = a;
                books[b as usize].subcluster = authors[a as usize].subcluster;
                author_books[a as usize].push(b);
            }
        }
        debug_assert!(books.iter().all(|b| b.author != u32::MAX));

        // --- Catalogue tables with noise rows; assign table ids. ---
        let mut table_rng = tree.child("tables").rng();
        let (bct_table, anobii_table) = Self::render_tables(
            &mut table_rng,
            wc,
            &mut books,
            &authors,
            &generic,
            &surnames,
        );

        // --- Divergent per-view popularity: the BCT view blends the
        // Anobii weight with a within-genre permutation of the weights,
        // so the two publics agree partially on what is popular. ---
        let mut perm_rng = tree.child("bct-popularity").rng();
        let mut bct_popularity = popularity.clone();
        let d = wc.popularity_divergence.clamp(0.0, 1.0);
        if d > 0.0 {
            for g in 0..N_RAW_GENRES {
                let ids: Vec<usize> = books
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.primary_genre == g as u8)
                    .map(|(i, _)| i)
                    .collect();
                let mut shuffled = ids.clone();
                shuffled.shuffle(&mut perm_rng);
                for (&orig, &donor) in ids.iter().zip(&shuffled) {
                    bct_popularity[orig] = (1.0 - d) * popularity[orig] + d * popularity[donor];
                }
            }
        }

        // --- Popularity samplers per (view, class, genre, subcluster). ---
        let empty = || -> [Vec<Option<GenreSampler>>; 3] {
            [
                (0..N_RAW_GENRES).map(|_| None).collect(),
                (0..N_RAW_GENRES).map(|_| None).collect(),
                (0..N_RAW_GENRES).map(|_| None).collect(),
            ]
        };
        let mut samplers = [empty(), empty()];
        let n_subs = wc.subclusters_per_genre.max(1);
        for (view, weights) in [(0usize, &bct_popularity), (1, &popularity)] {
            for (class, per_class) in samplers[view].iter_mut().enumerate() {
                for (g, slot) in per_class.iter_mut().enumerate() {
                    let ids: Vec<u32> = books
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| {
                            class_index(b.membership) == class && b.primary_genre == g as u8
                        })
                        .map(|(i, _)| i as u32)
                        .collect();
                    let Some(all) = CellSampler::build(ids.clone(), |i| weights[i as usize]) else {
                        continue;
                    };
                    let by_sub = (0..n_subs)
                        .map(|s| {
                            let sub_ids: Vec<u32> = ids
                                .iter()
                                .copied()
                                .filter(|&i| books[i as usize].subcluster == s as u8)
                                .collect();
                            CellSampler::build(sub_ids, |i| weights[i as usize])
                        })
                        .collect();
                    *slot = Some(GenreSampler { all, by_sub });
                }
            }
        }

        Self {
            books,
            authors,
            author_books,
            samplers,
            bct_table,
            anobii_table,
        }
    }

    /// Crowd-sourced genre votes for one book: strong primary, weaker
    /// secondary, the near-universal *Fiction and Literature* shelf on most
    /// books, occasional rare shelves — matching the "4 genres per book on
    /// average" and the pruning behaviour of Section 3.
    fn sample_genre_votes<R: Rng + ?Sized>(
        rng: &mut R,
        primary: u8,
        secondary: u8,
    ) -> Vec<(GenreId, u32)> {
        let mut votes = vec![
            (GenreId(primary), 22 + rng.random_range(0..12u32)),
            (GenreId(secondary), 3 + rng.random_range(0..5u32)),
        ];
        if rng.random_bool(0.85) {
            let universal = genre_id("Fiction and Literature").expect("taxonomy");
            // Strictly fewer votes than the primary genre's minimum, so the
            // primary stays the top-voted label.
            votes.push((universal, 5 + rng.random_range(0..8u32)));
        }
        if rng.random_bool(0.5) {
            let other = GenreId(rng.random_range(0..N_RAW_GENRES as u8));
            if other.0 != primary && other.0 != secondary {
                votes.push((other, 1 + rng.random_range(0..2u32)));
            }
        }
        for rare in ["Textbooks", "References", "Self Help"] {
            if rng.random_bool(0.03) {
                votes.push((genre_id(rare).expect("taxonomy"), 1));
            }
        }
        votes
    }

    #[allow(clippy::too_many_lines)]
    fn render_tables<R: Rng + ?Sized>(
        rng: &mut R,
        wc: &WorldConfig,
        books: &mut [WorldBook],
        authors: &[Author],
        generic: &WordPool,
        surnames: &WordPool,
    ) -> (BctBooksTable, AnobiiItemsTable) {
        let mut bct_rows: Vec<BctBookRow> = Vec::new();
        let mut anobii_rows: Vec<AnobiiItemRow> = Vec::new();

        let foreign_langs = [
            Language::English,
            Language::French,
            Language::German,
            Language::Spanish,
        ];

        for (i, book) in books.iter_mut().enumerate() {
            let author_name = authors[book.author as usize].name.clone();
            if matches!(book.membership, Membership::Overlap | Membership::BctOnly) {
                let id = BctBookId(bct_rows.len() as u32);
                book.bct_id = Some(id);
                bct_rows.push(BctBookRow {
                    book_id: id,
                    authors: vec![author_name.clone()],
                    title: book.title.clone(),
                    item_type: if i % 17 == 0 {
                        ItemType::Manuscript
                    } else {
                        ItemType::Monograph
                    },
                    language: Language::Italian,
                });
            }
            if matches!(
                book.membership,
                Membership::Overlap | Membership::AnobiiOnly
            ) {
                let id = AnobiiItemId(anobii_rows.len() as u32);
                book.anobii_id = Some(id);
                anobii_rows.push(AnobiiItemRow {
                    item_id: id,
                    authors: vec![author_name],
                    title: book.title.clone(),
                    language: Language::Italian,
                    plot: book.plot.clone(),
                    keywords: book.keywords.clone(),
                    genre_votes: book.genre_votes.clone(),
                    is_book: true,
                });
            }
        }

        // Noise rows: foreign editions and non-book items that the filters
        // must drop. Titles/authors are freshly generated so they do not
        // collide with real catalogue entries.
        let n_bct = bct_rows.len();
        let n_foreign_bct = (n_bct as f64 * wc.foreign_fraction) as usize;
        let n_nonbook_bct = (n_bct as f64 * wc.non_book_fraction) as usize;
        for k in 0..(n_foreign_bct + n_nonbook_bct) {
            let id = BctBookId(bct_rows.len() as u32);
            let title = render_title(rng, generic, generic, 0.0);
            let author = render_author(rng, surnames);
            let (item_type, language) = if k < n_foreign_bct {
                (ItemType::Monograph, foreign_langs[k % foreign_langs.len()])
            } else {
                (
                    if k % 2 == 0 {
                        ItemType::Dvd
                    } else {
                        ItemType::Periodical
                    },
                    Language::Italian,
                )
            };
            bct_rows.push(BctBookRow {
                book_id: id,
                authors: vec![author],
                title,
                item_type,
                language,
            });
        }

        let n_anobii = anobii_rows.len();
        let n_foreign_a = (n_anobii as f64 * wc.foreign_fraction) as usize;
        let n_nonbook_a = (n_anobii as f64 * wc.non_book_fraction) as usize;
        for k in 0..(n_foreign_a + n_nonbook_a) {
            let id = AnobiiItemId(anobii_rows.len() as u32);
            let title = render_title(rng, generic, generic, 0.0);
            let author = render_author(rng, surnames);
            let (language, is_book) = if k < n_foreign_a {
                (foreign_langs[k % foreign_langs.len()], true)
            } else {
                (Language::Italian, false)
            };
            anobii_rows.push(AnobiiItemRow {
                item_id: id,
                authors: vec![author],
                title,
                language,
                plot: String::new(),
                keywords: Vec::new(),
                genre_votes: Vec::new(),
                is_book,
            });
        }

        (
            BctBooksTable { rows: bct_rows },
            AnobiiItemsTable { rows: anobii_rows },
        )
    }

    /// The generated BCT Books table.
    #[must_use]
    pub fn bct_books_table(&self) -> BctBooksTable {
        self.bct_table.clone()
    }

    /// The generated Anobii Items table.
    #[must_use]
    pub fn anobii_items_table(&self) -> AnobiiItemsTable {
        self.anobii_table.clone()
    }

    /// Number of world books.
    #[must_use]
    pub fn n_books(&self) -> usize {
        self.books.len()
    }

    /// Number of sub-communities per genre (uniform across genres).
    #[must_use]
    pub fn n_subclusters(&self) -> usize {
        self.samplers[0][0]
            .iter()
            .flatten()
            .map(|s| s.by_sub.len())
            .next()
            .unwrap_or(1)
    }

    /// Samples a popularity-weighted book of `genre` in membership class
    /// `m` under popularity view `v`; `None` when that (genre, class) has
    /// no books.
    #[must_use]
    pub fn sample_book<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        genre: u8,
        m: Membership,
        v: PopView,
    ) -> Option<u32> {
        let sampler = self.samplers[view_index(v)][class_index(m)][genre as usize].as_ref()?;
        Some(sampler.all.sample(rng))
    }

    /// Samples a popularity-weighted book of `genre` within sub-community
    /// `sub`, falling back to the whole genre when the sub-community pool
    /// is empty in this (class, view) cell, and to the overlap class when
    /// the preferred class has no books of the genre at all.
    #[must_use]
    pub fn sample_book_sub<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        genre: u8,
        sub: u8,
        preferred: Membership,
        v: PopView,
    ) -> Option<u32> {
        for class in [preferred, Membership::Overlap] {
            if let Some(sampler) =
                self.samplers[view_index(v)][class_index(class)][genre as usize].as_ref()
            {
                if let Some(cell) = sampler.by_sub.get(sub as usize).and_then(Option::as_ref) {
                    return Some(cell.sample(rng));
                }
                return Some(sampler.all.sample(rng));
            }
            if class == preferred && preferred == Membership::Overlap {
                break;
            }
        }
        None
    }

    /// Samples a book of `genre` uniformly (no popularity, no
    /// sub-community), falling back to the overlap class when the
    /// preferred class has no books of the genre.
    #[must_use]
    pub fn sample_book_uniform<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        genre: u8,
        preferred: Membership,
    ) -> Option<u32> {
        for class in [preferred, Membership::Overlap] {
            // Book lists are identical across views; use view 0's.
            if let Some(sampler) = self.samplers[0][class_index(class)][genre as usize].as_ref() {
                let books = &sampler.all.books;
                return Some(books[rng.random_range(0..books.len())]);
            }
        }
        None
    }

    /// Samples any popularity-weighted book of `genre`, falling back to
    /// the overlap class when the preferred class is empty.
    #[must_use]
    pub fn sample_book_with_fallback<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        genre: u8,
        preferred: Membership,
        v: PopView,
    ) -> Option<u32> {
        self.sample_book(rng, genre, preferred, v)
            .or_else(|| self.sample_book(rng, genre, Membership::Overlap, v))
    }

    /// Picks uniformly one *other* book by the same author as `book`,
    /// restricted to books visible in `source_classes`; `None` when the
    /// author has no other visible book.
    #[must_use]
    pub fn sample_same_author<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        book: u32,
        source_classes: &[Membership],
    ) -> Option<u32> {
        let author = self.books[book as usize].author;
        let candidates: Vec<u32> = self.author_books[author as usize]
            .iter()
            .copied()
            .filter(|&b| b != book && source_classes.contains(&self.books[b as usize].membership))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        }
    }

    /// Samples a genre from unnormalised `shares`.
    #[must_use]
    pub fn sample_genre<R: Rng + ?Sized>(rng: &mut R, shares: &[f64]) -> u8 {
        sample_weighted_once(rng, shares) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Preset;

    fn tiny_world() -> World {
        let config = Preset::Tiny.generator_config();
        World::generate(&SeedTree::new(42), &config)
    }

    #[test]
    fn world_is_deterministic() {
        let config = Preset::Tiny.generator_config();
        let a = World::generate(&SeedTree::new(7), &config);
        let b = World::generate(&SeedTree::new(7), &config);
        assert_eq!(a.n_books(), b.n_books());
        for (x, y) in a.books.iter().zip(&b.books) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.author, y.author);
            assert_eq!(x.primary_genre, y.primary_genre);
        }
    }

    #[test]
    fn class_sizes_match_config() {
        let config = Preset::Tiny.generator_config();
        let w = World::generate(&SeedTree::new(42), &config);
        let count = |m: Membership| w.books.iter().filter(|b| b.membership == m).count();
        assert_eq!(count(Membership::Overlap), config.world.n_overlap_books);
        assert_eq!(count(Membership::BctOnly), config.world.n_bct_only_books);
        assert_eq!(
            count(Membership::AnobiiOnly),
            config.world.n_anobii_only_books
        );
    }

    #[test]
    fn table_ids_round_trip() {
        let w = tiny_world();
        let bct = w.bct_books_table();
        let anobii = w.anobii_items_table();
        for b in &w.books {
            if let Some(id) = b.bct_id {
                assert_eq!(bct.rows[id.index()].title, b.title);
            }
            if let Some(id) = b.anobii_id {
                assert_eq!(anobii.rows[id.index()].title, b.title);
            }
            match b.membership {
                Membership::Overlap => assert!(b.bct_id.is_some() && b.anobii_id.is_some()),
                Membership::BctOnly => assert!(b.bct_id.is_some() && b.anobii_id.is_none()),
                Membership::AnobiiOnly => assert!(b.bct_id.is_none() && b.anobii_id.is_some()),
            }
        }
    }

    #[test]
    fn tables_contain_noise_rows() {
        let w = tiny_world();
        let bct = w.bct_books_table();
        assert!(bct.rows.iter().any(|r| r.language != Language::Italian));
        assert!(bct.rows.iter().any(|r| !r.item_type.is_kept()));
        let anobii = w.anobii_items_table();
        assert!(anobii.rows.iter().any(|r| !r.is_book));
        assert!(anobii.rows.iter().any(|r| r.language != Language::Italian));
    }

    #[test]
    fn every_book_has_an_author_with_books_list() {
        let w = tiny_world();
        for (i, b) in w.books.iter().enumerate() {
            assert!(w.author_books[b.author as usize].contains(&(i as u32)));
        }
    }

    #[test]
    fn genre_votes_include_primary_with_most_votes() {
        let w = tiny_world();
        for b in &w.books {
            let max = b.genre_votes.iter().max_by_key(|&&(_, v)| v).unwrap();
            assert_eq!(max.0 .0, b.primary_genre);
        }
    }

    #[test]
    fn sampling_respects_class_and_genre() {
        let w = tiny_world();
        let mut rng = SeedTree::new(9).rng();
        for _ in 0..100 {
            if let Some(b) = w.sample_book(
                &mut rng,
                w.books[0].primary_genre,
                Membership::Overlap,
                PopView::Bct,
            ) {
                assert_eq!(w.books[b as usize].membership, Membership::Overlap);
                assert_eq!(w.books[b as usize].primary_genre, w.books[0].primary_genre);
            }
        }
    }

    #[test]
    fn popularity_views_diverge() {
        // With divergence 1.0 (tiny preset), the popularity *ordering* of
        // a genre under the BCT view must differ from the Anobii view.
        // (Small cells share most of their top-set, so compare orders.)
        let w = tiny_world();
        // Pick the genre with the most overlap books.
        let mut per_genre = std::collections::HashMap::new();
        for b in &w.books {
            if b.membership == Membership::Overlap {
                *per_genre.entry(b.primary_genre).or_insert(0usize) += 1;
            }
        }
        let genre = per_genre.into_iter().max_by_key(|&(_, c)| c).unwrap().0;
        let mut rng = SeedTree::new(77).rng();
        let mut draw_order = |view: PopView| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..30_000 {
                if let Some(b) = w.sample_book(&mut rng, genre, Membership::Overlap, view) {
                    *counts.entry(b).or_insert(0usize) += 1;
                }
            }
            let mut v: Vec<(u32, usize)> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter().map(|(b, _)| b).take(10).collect::<Vec<u32>>()
        };
        let bct = draw_order(PopView::Bct);
        let anobii = draw_order(PopView::Anobii);
        assert_ne!(bct, anobii, "popularity orderings should diverge");
    }

    #[test]
    fn subcluster_sampling_respects_cell() {
        let w = tiny_world();
        let mut rng = SeedTree::new(78).rng();
        let genre = w.books[0].primary_genre;
        let sub = w.books[0].subcluster;
        let mut hits = 0;
        for _ in 0..100 {
            if let Some(b) =
                w.sample_book_sub(&mut rng, genre, sub, Membership::Overlap, PopView::Anobii)
            {
                let book = &w.books[b as usize];
                assert_eq!(book.primary_genre, genre);
                // Falls back to the whole genre only when the cell is
                // empty, which cannot happen here (book 0 is in it).
                assert_eq!(book.subcluster, sub);
                hits += 1;
            }
        }
        assert!(hits > 0);
    }

    #[test]
    fn uniform_sampling_ignores_popularity() {
        let w = tiny_world();
        let mut rng = SeedTree::new(79).rng();
        let genre = w.books[0].primary_genre;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..6000 {
            if let Some(b) = w.sample_book_uniform(&mut rng, genre, Membership::Overlap) {
                assert_eq!(w.books[b as usize].primary_genre, genre);
                *counts.entry(b).or_insert(0usize) += 1;
            }
        }
        // Uniform: min and max counts within a loose factor.
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(max < min * 5 + 20, "uniform draw too skewed: {min}..{max}");
    }

    #[test]
    fn books_inherit_author_subcluster() {
        let w = tiny_world();
        for b in &w.books {
            assert_eq!(b.subcluster, w.authors[b.author as usize].subcluster);
            assert!((b.subcluster as usize) < w.n_subclusters());
        }
    }

    #[test]
    fn same_author_sampling_excludes_self_and_respects_visibility() {
        let w = tiny_world();
        let mut rng = SeedTree::new(10).rng();
        // Find an author with at least two overlap books.
        let author = w
            .author_books
            .iter()
            .position(|bs| {
                bs.iter()
                    .filter(|&&b| w.books[b as usize].membership == Membership::Overlap)
                    .count()
                    >= 2
            })
            .expect("some author has two overlap books");
        let book = *w.author_books[author]
            .iter()
            .find(|&&b| w.books[b as usize].membership == Membership::Overlap)
            .unwrap();
        for _ in 0..50 {
            let other = w
                .sample_same_author(&mut rng, book, &[Membership::Overlap])
                .expect("another overlap book exists");
            assert_ne!(other, book);
            assert_eq!(
                w.books[other as usize].author,
                w.books[book as usize].author
            );
            assert_eq!(w.books[other as usize].membership, Membership::Overlap);
        }
    }
}
