//! User populations.
//!
//! Every user gets (a) a heavy-tailed target activity and (b) a genre
//! profile consisting of two dominant genres carrying most of their reading
//! mass — the paper observes that 99 % of users read two genres at least
//! ten times more than all the others together. Dominant genres are drawn
//! from the source's genre-share vector, so aggregate reading shares match
//! the configured mix (Fig. 2).

use crate::config::SourceConfig;
use crate::world::{Membership, PopView, World};
use rand::RngExt;
use rm_util::rng::SeedTree;
use rm_util::sample::{sample_weighted_once, LogNormal};

/// Which source a population belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Turin public libraries (loans).
    Bct,
    /// Anobii (ratings).
    Anobii,
}

impl SourceKind {
    /// The membership classes visible to this source's users.
    #[must_use]
    pub fn visible_classes(self) -> [Membership; 2] {
        match self {
            Self::Bct => [Membership::Overlap, Membership::BctOnly],
            Self::Anobii => [Membership::Overlap, Membership::AnobiiOnly],
        }
    }

    /// The source-exclusive membership class.
    #[must_use]
    pub fn exclusive_class(self) -> Membership {
        match self {
            Self::Bct => Membership::BctOnly,
            Self::Anobii => Membership::AnobiiOnly,
        }
    }

    /// The popularity view this source's users follow.
    #[must_use]
    pub fn pop_view(self) -> PopView {
        match self {
            Self::Bct => PopView::Bct,
            Self::Anobii => PopView::Anobii,
        }
    }
}

/// One generated user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserProfile {
    /// The user's id in the source's user space.
    pub raw_id: u32,
    /// Target number of reading events.
    pub n_events: u32,
    /// The two dominant genres.
    pub dominant: [u8; 2],
    /// Fraction of the dominant mass on `dominant[0]` (the rest goes to
    /// `dominant[1]`).
    pub split: f64,
    /// The two preferred sub-communities (applied within whichever genre a
    /// reading draws).
    pub subclusters: [u8; 2],
    /// Which within-genre popularity profile this user follows.
    pub pop_view: PopView,
}

/// Generates a source's population.
///
/// Dominant genres are redrawn (up to a few attempts) when the world has no
/// overlap books of that genre, so every user can actually read inside the
/// merge candidate catalogue.
///
/// `library_shares`, when given (the Anobii population passes the BCT
/// genre shares), is the genre-preference vector used for *library-like*
/// members of this population — the minority of Anobii readers whose
/// tastes match the library public (both popularity view and genre mix).
#[must_use]
pub fn generate_population(
    tree: &SeedTree,
    cfg: &SourceConfig,
    world: &World,
    kind: SourceKind,
    library_shares: Option<&[f64]>,
) -> Vec<UserProfile> {
    let mut rng = tree.rng();
    let activity = LogNormal::new(cfg.activity.mu, cfg.activity.sigma);
    let mut users = Vec::with_capacity(cfg.n_users);
    let view = kind.pop_view();
    let n_subs = world.n_subclusters().max(1) as u8;

    let draw_genre =
        |rng: &mut rm_util::rng::SeedableStdRng, shares: &[f64], exclude: Option<u8>| -> u8 {
            for _ in 0..16 {
                let g = sample_weighted_once(rng, shares) as u8;
                if Some(g) == exclude {
                    continue;
                }
                // Require the genre to be readable inside the overlap
                // catalogue; otherwise this user could never contribute
                // merged readings.
                if world
                    .sample_book(rng, g, Membership::Overlap, view)
                    .is_some()
                {
                    return g;
                }
            }
            // Fallback: the globally most-preferred genre.
            shares
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite shares"))
                .map(|(g, _)| g as u8)
                .unwrap_or(0)
        };

    for raw_id in 0..cfg.n_users as u32 {
        let n_events = activity.sample_count(&mut rng, cfg.activity.min, cfg.activity.max) as u32;
        let pop_view = if rng.random_bool(cfg.bct_like_fraction.clamp(0.0, 1.0)) {
            PopView::Bct
        } else {
            PopView::Anobii
        };
        let shares: &[f64] = match (pop_view, library_shares) {
            (PopView::Bct, Some(lib)) => lib,
            _ => &cfg.genre_shares,
        };
        let first = draw_genre(&mut rng, shares, None);
        let second = draw_genre(&mut rng, shares, Some(first));
        let split = 0.55 + rng.random::<f64>() * 0.3;
        let sub_a = rng.random_range(0..n_subs);
        let sub_b = if n_subs > 1 {
            (sub_a + 1 + rng.random_range(0..n_subs - 1)) % n_subs
        } else {
            sub_a
        };
        users.push(UserProfile {
            raw_id,
            n_events,
            dominant: [first, second],
            split,
            subclusters: [sub_a, sub_b],
            pop_view,
        });
    }
    users
}

/// Samples the genre of one reading for `user`: a dominant genre with
/// probability `dominant_mass`, otherwise a tail draw from the source's
/// genre shares.
#[must_use]
pub fn sample_reading_genre<R: rand::Rng + ?Sized>(
    rng: &mut R,
    cfg: &SourceConfig,
    user: &UserProfile,
) -> u8 {
    if rng.random_bool(cfg.dominant_mass) {
        if rng.random_bool(user.split) {
            user.dominant[0]
        } else {
            user.dominant[1]
        }
    } else {
        sample_weighted_once(rng, &cfg.genre_shares) as u8
    }
}

/// Samples the sub-community of one reading for `user`: one of the two
/// preferred sub-communities with probability `subcluster_mass`, otherwise
/// uniform over all of them.
#[must_use]
pub fn sample_reading_subcluster<R: rand::Rng + ?Sized>(
    rng: &mut R,
    cfg: &SourceConfig,
    user: &UserProfile,
    n_subs: u8,
) -> u8 {
    if n_subs <= 1 {
        return 0;
    }
    if rng.random_bool(cfg.subcluster_mass) {
        user.subclusters[usize::from(rng.random_bool(0.5))]
    } else {
        rng.random_range(0..n_subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Preset;
    use rm_util::rng::rng_from_seed;

    fn setup() -> (crate::config::GeneratorConfig, World) {
        let config = Preset::Tiny.generator_config();
        let world = World::generate(&SeedTree::new(1), &config);
        (config, world)
    }

    #[test]
    fn population_size_and_determinism() {
        let (config, world) = setup();
        let a = generate_population(
            &SeedTree::new(2),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        let b = generate_population(
            &SeedTree::new(2),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        assert_eq!(a.len(), config.bct.n_users);
        assert_eq!(a, b);
    }

    #[test]
    fn activity_respects_bounds() {
        let (config, world) = setup();
        let users = generate_population(
            &SeedTree::new(3),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        for u in &users {
            assert!(u64::from(u.n_events) >= config.bct.activity.min);
            assert!(u64::from(u.n_events) <= config.bct.activity.max);
        }
    }

    #[test]
    fn dominant_genres_are_distinct_and_readable() {
        let (config, world) = setup();
        let users = generate_population(
            &SeedTree::new(4),
            &config.anobii,
            &world,
            SourceKind::Anobii,
            None,
        );
        let mut rng = rng_from_seed(5);
        for u in users.iter().take(50) {
            assert_ne!(u.dominant[0], u.dominant[1]);
            for g in u.dominant {
                assert!(
                    world
                        .sample_book(&mut rng, g, Membership::Overlap, PopView::Anobii)
                        .is_some(),
                    "dominant genre {g} has no overlap books"
                );
            }
        }
    }

    #[test]
    fn reading_genres_concentrate_on_dominants() {
        let (config, world) = setup();
        let users = generate_population(
            &SeedTree::new(6),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        let u = &users[0];
        let mut rng = rng_from_seed(7);
        let n = 2000;
        let dominant_hits = (0..n)
            .filter(|_| {
                let g = sample_reading_genre(&mut rng, &config.bct, u);
                g == u.dominant[0] || g == u.dominant[1]
            })
            .count();
        let share = dominant_hits as f64 / n as f64;
        assert!(
            share > config.bct.dominant_mass - 0.05,
            "dominant share {share}"
        );
    }

    #[test]
    fn pop_view_fractions_follow_config() {
        let (config, world) = setup();
        // Tiny preset: BCT fully library-view, Anobii 30% library-like.
        let bct = generate_population(
            &SeedTree::new(21),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        assert!(bct.iter().all(|u| u.pop_view == PopView::Bct));
        let mut cfg = config.anobii.clone();
        cfg.n_users = 2000;
        let anobii =
            generate_population(&SeedTree::new(22), &cfg, &world, SourceKind::Anobii, None);
        let like = anobii.iter().filter(|u| u.pop_view == PopView::Bct).count();
        let share = like as f64 / anobii.len() as f64;
        assert!(
            (share - cfg.bct_like_fraction).abs() < 0.05,
            "library-like share {share} vs {}",
            cfg.bct_like_fraction
        );
    }

    #[test]
    fn library_like_users_use_library_genre_shares() {
        let (config, world) = setup();
        let mut cfg = config.anobii.clone();
        cfg.n_users = 3000;
        let lib_shares = config.bct.genre_shares.clone();
        let users = generate_population(
            &SeedTree::new(23),
            &cfg,
            &world,
            SourceKind::Anobii,
            Some(&lib_shares),
        );
        let comics = rm_dataset::genre::genre_id("Comics").unwrap().0;
        let comics_share = |view: PopView| {
            let group: Vec<_> = users.iter().filter(|u| u.pop_view == view).collect();
            group.iter().filter(|u| u.dominant[0] == comics).count() as f64 / group.len() as f64
        };
        // Anobii-view users are comics-led; library-like ones are not.
        assert!(
            comics_share(PopView::Anobii) > 2.0 * comics_share(PopView::Bct),
            "anobii {} vs library-like {}",
            comics_share(PopView::Anobii),
            comics_share(PopView::Bct)
        );
    }

    #[test]
    fn subclusters_are_in_range_and_distinct() {
        let (config, world) = setup();
        let users = generate_population(
            &SeedTree::new(24),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        let n_subs = world.n_subclusters() as u8;
        for u in &users {
            assert!(u.subclusters[0] < n_subs);
            assert!(u.subclusters[1] < n_subs);
            if n_subs > 1 {
                assert_ne!(u.subclusters[0], u.subclusters[1]);
            }
        }
    }

    #[test]
    fn subcluster_sampling_concentrates_on_preferences() {
        let (config, world) = setup();
        let users = generate_population(
            &SeedTree::new(25),
            &config.bct,
            &world,
            SourceKind::Bct,
            None,
        );
        let u = &users[0];
        let n_subs = world.n_subclusters() as u8;
        let mut rng = rng_from_seed(26);
        let n = 4000;
        let preferred = (0..n)
            .filter(|_| {
                let s = sample_reading_subcluster(&mut rng, &config.bct, u, n_subs);
                s == u.subclusters[0] || s == u.subclusters[1]
            })
            .count();
        let share = preferred as f64 / n as f64;
        assert!(
            share > config.bct.subcluster_mass - 0.05,
            "preferred-subcluster share {share}"
        );
    }

    #[test]
    fn visible_classes_match_source() {
        assert_eq!(
            SourceKind::Bct.visible_classes(),
            [Membership::Overlap, Membership::BctOnly]
        );
        assert_eq!(SourceKind::Anobii.exclusive_class(), Membership::AnobiiOnly);
    }
}
