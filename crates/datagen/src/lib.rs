//! Seeded synthetic generators for the raw BCT and Anobii tables.
//!
//! The paper's data is proprietary (nine years of Turin library loans and
//! the Anobii ratings feed), so this crate generates the closest synthetic
//! equivalent: raw tables whose *marginal statistics* match everything
//! Section 3 reports, and whose *co-reading structure* carries the signals
//! the recommenders exploit —
//!
//! * a shared world of books with authors, genres, and Zipf popularity
//!   ([`world`]), rendered into both sources' catalogues with
//!   per-source noise rows so the filters and the catalogue join have real
//!   work to do;
//! * user populations with two dominant genres each (the paper reports
//!   99 % of users have two ≥ 10×-dominant genres), heavy-tailed activity,
//!   and author loyalty ([`users`]);
//! * reading events sampled from a mixture of author-loyalty and
//!   genre-popularity draws ([`events`]), so collaborative structure
//!   (genre communities) and content structure (authors, genres) both
//!   exist, with different strengths — the lever behind the paper's
//!   CB-vs-CF comparison;
//! * Italian-flavoured text for titles, plots, and keywords ([`lexicon`]),
//!   with genre-specific vocabularies so plot/keyword similarity carries a
//!   weaker but real signal (Fig. 5's ordering).
//!
//! Everything is deterministic given the seed; presets ([`presets`])
//! provide paper-scale, medium, and tiny configurations together with the
//! matching pipeline thresholds.

pub mod config;
pub mod events;
pub mod lexicon;
pub mod presets;
pub mod users;
pub mod world;

pub use config::GeneratorConfig;
pub use presets::Preset;

use rm_dataset::merge::build_corpus;
use rm_dataset::tables::{AnobiiItemsTable, BctBooksTable, LoansTable, RatingsTable};

/// The four raw tables, as the two source systems would export them.
#[derive(Debug, Clone)]
pub struct RawTables {
    /// BCT Books table.
    pub bct_books: BctBooksTable,
    /// BCT Loans table.
    pub loans: LoansTable,
    /// Anobii Items table.
    pub anobii_items: AnobiiItemsTable,
    /// Anobii Ratings table.
    pub ratings: RatingsTable,
}

/// Generates the raw tables for a configuration.
#[must_use]
pub fn generate(seed: u64, config: &GeneratorConfig) -> RawTables {
    let tree = rm_util::rng::SeedTree::new(seed);
    let world = world::World::generate(&tree.child("world"), config);
    let bct_users = users::generate_population(
        &tree.child("bct-users"),
        &config.bct,
        &world,
        users::SourceKind::Bct,
        None,
    );
    let anobii_users = users::generate_population(
        &tree.child("anobii-users"),
        &config.anobii,
        &world,
        users::SourceKind::Anobii,
        Some(&config.bct.genre_shares),
    );
    let loans = events::generate_loans(&tree.child("loans"), config, &world, &bct_users);
    let ratings = events::generate_ratings(&tree.child("ratings"), config, &world, &anobii_users);
    RawTables {
        bct_books: world.bct_books_table(),
        loans,
        anobii_items: world.anobii_items_table(),
        ratings,
    }
}

/// Generates the raw tables for a preset and runs the full preparation
/// pipeline, returning the merged corpus.
#[must_use]
pub fn generate_corpus(seed: u64, preset: Preset) -> rm_dataset::Corpus {
    let config = preset.generator_config();
    let tables = generate(seed, &config);
    build_corpus(
        &tables.bct_books,
        &tables.loans,
        &tables.anobii_items,
        &tables.ratings,
        &preset.merge_config(),
    )
}
