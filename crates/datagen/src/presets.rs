//! Calibrated configuration presets.
//!
//! * [`Preset::Paper`] — full scale: calibrated so the *merged, pruned*
//!   corpus approximates the paper's Section 3 statistics (≈ 2.3 k books,
//!   ≈ 43 k users with a ≈ 6 k / 37 k BCT/Anobii split, ≈ 1 M readings,
//!   Comics ≈ 44 % of readings). Used by the `repro-*` binaries.
//! * [`Preset::Medium`] — ≈ 10× smaller population over a ≈ 4× smaller
//!   catalogue; pipeline thresholds scaled to keep the pruning fractions
//!   comparable. Used by integration tests and examples.
//! * [`Preset::Tiny`] — milliseconds-scale fixture for unit tests.

use crate::config::{
    genre_share_vector, ActivityParams, GeneratorConfig, RatingModel, SourceConfig, WorldConfig,
};
use rm_dataset::filter::FilterConfig;
use rm_dataset::genre::GenreConfig;
use rm_dataset::merge::{MergeConfig, MinBookReadings, MinUserReadings, PruneMode};

/// A named scale of the generator + pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Million-user capacity-planning scale: every population count of
    /// [`Preset::Paper`] times 100 (≈ 4.3 M merged users over a ≈ 230 k
    /// book catalogue). Used by the memory-gate benchmarks; generating
    /// the full corpus at this scale is expensive — prefer
    /// [`Preset::serving_scale`] for synthetic sizing.
    PaperX100,
    /// Full paper-scale corpus.
    Paper,
    /// Integration-test scale.
    Medium,
    /// Unit-test scale.
    Tiny,
}

/// Near-zero pins that keep book/reading mass off the genres the pipeline
/// drops by name (books whose *primary* genre would be dropped would lose
/// their genre profile entirely).
const DROPPED_PINS: [(&str, f64); 4] = [
    ("Fiction and Literature", 1e-4),
    ("Textbooks", 1e-4),
    ("References", 1e-4),
    ("Self Help", 1e-4),
];

fn with_dropped_pins(pinned: &[(&str, f64)], decay: f64) -> Vec<f64> {
    let mut all: Vec<(&str, f64)> = pinned.to_vec();
    all.extend_from_slice(&DROPPED_PINS);
    genre_share_vector(&all, decay)
}

/// Catalogue genre mix: Comics has an outsized catalogue presence (series
/// volumes), literary genres follow.
fn book_genre_shares() -> Vec<f64> {
    with_dropped_pins(
        &[
            ("Comics", 0.22),
            ("Thriller", 0.11),
            ("Fantasy", 0.10),
            ("Mystery", 0.07),
            ("Historical Fiction", 0.06),
        ],
        0.82,
    )
}

/// BCT readers: broader, more literary mix (the library public).
fn bct_genre_shares() -> Vec<f64> {
    with_dropped_pins(
        &[
            ("Thriller", 0.17),
            ("Fantasy", 0.13),
            ("Comics", 0.12),
            ("Mystery", 0.09),
            ("Historical Fiction", 0.07),
        ],
        0.85,
    )
}

/// Anobii readers: comics-heavy (the community that drives the merged
/// corpus to 44 % Comics readings, Fig. 2).
fn anobii_genre_shares() -> Vec<f64> {
    with_dropped_pins(
        &[("Comics", 0.60), ("Thriller", 0.12), ("Fantasy", 0.10)],
        0.80,
    )
}

impl Preset {
    /// The generator configuration for this scale.
    #[must_use]
    pub fn generator_config(self) -> GeneratorConfig {
        match self {
            Self::PaperX100 => {
                let mut c = Self::Paper.generator_config();
                c.world.n_overlap_books *= 100;
                c.world.n_bct_only_books *= 100;
                c.world.n_anobii_only_books *= 100;
                c.bct.n_users *= 100;
                c.anobii.n_users *= 100;
                c
            }
            Self::Paper => GeneratorConfig {
                world: WorldConfig {
                    n_overlap_books: 2_700,
                    n_bct_only_books: 10_000,
                    n_anobii_only_books: 16_000,
                    book_genre_shares: book_genre_shares(),
                    books_per_author: 5.0,
                    comics_series_boost: 5.0,
                    subclusters_per_genre: 16,
                    popularity_divergence: 1.0,
                    popularity_zipf: 1.0,
                    popularity_shift: 16.0,
                    foreign_fraction: 0.12,
                    non_book_fraction: 0.08,
                    plot_len: 24,
                    n_keywords: 5,
                    genre_lexicon_size: 300,
                    generic_lexicon_size: 2_500,
                },
                bct: SourceConfig {
                    n_users: 19_000,
                    activity: ActivityParams {
                        mu: 2.40,
                        sigma: 0.80,
                        min: 1,
                        max: 650,
                    },
                    genre_shares: bct_genre_shares(),
                    dominant_mass: 0.96,
                    author_loyalty: 0.62,
                    overlap_bias: 0.80,
                    subcluster_mass: 0.45,
                    exploration_max: 0.95,
                    exploration_halflife: 10.0,
                    bct_like_fraction: 1.0,
                },
                anobii: SourceConfig {
                    n_users: 126_000,
                    activity: ActivityParams {
                        mu: 2.30,
                        sigma: 1.05,
                        min: 1,
                        max: 650,
                    },
                    genre_shares: anobii_genre_shares(),
                    dominant_mass: 0.96,
                    author_loyalty: 0.52,
                    overlap_bias: 0.85,
                    subcluster_mass: 0.45,
                    exploration_max: 0.95,
                    exploration_halflife: 10.0,
                    bct_like_fraction: 0.30,
                },
                rating: RatingModel::default(),
            },
            Self::Medium => GeneratorConfig {
                world: WorldConfig {
                    n_overlap_books: 675,
                    n_bct_only_books: 2_500,
                    n_anobii_only_books: 4_000,
                    book_genre_shares: book_genre_shares(),
                    books_per_author: 5.0,
                    comics_series_boost: 5.0,
                    subclusters_per_genre: 16,
                    popularity_divergence: 1.0,
                    popularity_zipf: 1.0,
                    popularity_shift: 16.0,
                    foreign_fraction: 0.12,
                    non_book_fraction: 0.08,
                    plot_len: 20,
                    n_keywords: 4,
                    genre_lexicon_size: 200,
                    generic_lexicon_size: 1_200,
                },
                bct: SourceConfig {
                    n_users: 1_900,
                    activity: ActivityParams {
                        mu: 2.40,
                        sigma: 0.80,
                        min: 1,
                        max: 650,
                    },
                    genre_shares: bct_genre_shares(),
                    dominant_mass: 0.96,
                    author_loyalty: 0.62,
                    overlap_bias: 0.80,
                    subcluster_mass: 0.45,
                    exploration_max: 0.95,
                    exploration_halflife: 10.0,
                    bct_like_fraction: 1.0,
                },
                anobii: SourceConfig {
                    n_users: 12_600,
                    activity: ActivityParams {
                        mu: 2.30,
                        sigma: 1.05,
                        min: 1,
                        max: 650,
                    },
                    genre_shares: anobii_genre_shares(),
                    dominant_mass: 0.96,
                    author_loyalty: 0.52,
                    overlap_bias: 0.85,
                    subcluster_mass: 0.45,
                    exploration_max: 0.95,
                    exploration_halflife: 10.0,
                    bct_like_fraction: 0.30,
                },
                rating: RatingModel::default(),
            },
            Self::Tiny => GeneratorConfig {
                world: WorldConfig {
                    n_overlap_books: 120,
                    n_bct_only_books: 60,
                    n_anobii_only_books: 90,
                    book_genre_shares: book_genre_shares(),
                    books_per_author: 5.0,
                    comics_series_boost: 4.0,
                    subclusters_per_genre: 6,
                    popularity_divergence: 1.0,
                    popularity_zipf: 0.7,
                    popularity_shift: 2.0,
                    foreign_fraction: 0.10,
                    non_book_fraction: 0.10,
                    plot_len: 12,
                    n_keywords: 3,
                    genre_lexicon_size: 60,
                    generic_lexicon_size: 300,
                },
                bct: SourceConfig {
                    n_users: 150,
                    activity: ActivityParams {
                        mu: 2.48,
                        sigma: 0.7,
                        min: 1,
                        max: 100,
                    },
                    genre_shares: bct_genre_shares(),
                    dominant_mass: 0.96,
                    author_loyalty: 0.62,
                    overlap_bias: 0.80,
                    subcluster_mass: 0.45,
                    exploration_max: 0.95,
                    exploration_halflife: 10.0,
                    bct_like_fraction: 1.0,
                },
                anobii: SourceConfig {
                    n_users: 350,
                    activity: ActivityParams {
                        mu: 2.48,
                        sigma: 0.7,
                        min: 1,
                        max: 100,
                    },
                    genre_shares: anobii_genre_shares(),
                    dominant_mass: 0.96,
                    author_loyalty: 0.52,
                    overlap_bias: 0.85,
                    subcluster_mass: 0.45,
                    exploration_max: 0.95,
                    exploration_halflife: 10.0,
                    bct_like_fraction: 0.30,
                },
                rating: RatingModel::default(),
            },
        }
    }

    /// The matching pipeline (merge + pruning) configuration. Activity
    /// thresholds scale with the preset so the pruning removes a
    /// comparable *fraction* of the corpus at every scale.
    #[must_use]
    pub fn merge_config(self) -> MergeConfig {
        let (min_user, min_book) = match self {
            Self::PaperX100 | Self::Paper => (10, 100),
            Self::Medium => (10, 45),
            Self::Tiny => (5, 8),
        };
        MergeConfig {
            filter: FilterConfig::default(),
            genre: GenreConfig::default(),
            prune: PruneMode::SinglePass,
            min_user_readings: MinUserReadings(min_user),
            min_book_readings: MinBookReadings(min_book),
        }
    }

    /// The nominal *post-merge* serving scale `(users, books)` at this
    /// preset: the population the pipeline leaves after pruning,
    /// rounded to the paper's Section 3 statistics (and their
    /// multiples). Capacity planning and the synthetic memory-gate
    /// benchmarks size from these numbers instead of generating and
    /// merging a full corpus.
    #[must_use]
    pub fn serving_scale(self) -> (usize, usize) {
        match self {
            Self::PaperX100 => (4_300_000, 230_000),
            Self::Paper => (43_000, 2_300),
            Self::Medium => (4_300, 600),
            Self::Tiny => (330, 150),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_have_valid_share_vectors() {
        for preset in [
            Preset::PaperX100,
            Preset::Paper,
            Preset::Medium,
            Preset::Tiny,
        ] {
            let c = preset.generator_config();
            for shares in [
                &c.world.book_genre_shares,
                &c.bct.genre_shares,
                &c.anobii.genre_shares,
            ] {
                let total: f64 = shares.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "{preset:?}: sum {total}");
                assert!(shares.iter().all(|&s| s >= 0.0));
            }
        }
    }

    #[test]
    fn dropped_genres_carry_negligible_mass() {
        let c = Preset::Paper.generator_config();
        for (name, _) in DROPPED_PINS {
            let id = rm_dataset::genre::genre_id(name).unwrap();
            assert!(c.world.book_genre_shares[id.0 as usize] < 1e-3);
        }
    }

    #[test]
    fn anobii_is_comics_heavier_than_bct() {
        let c = Preset::Paper.generator_config();
        let comics = rm_dataset::genre::genre_id("Comics").unwrap().0 as usize;
        assert!(c.anobii.genre_shares[comics] > 3.0 * c.bct.genre_shares[comics]);
    }

    #[test]
    fn paper_x100_is_a_literal_hundredfold_paper() {
        let paper = Preset::Paper.generator_config();
        let x100 = Preset::PaperX100.generator_config();
        assert_eq!(
            x100.world.n_overlap_books,
            100 * paper.world.n_overlap_books
        );
        assert_eq!(
            x100.world.n_bct_only_books,
            100 * paper.world.n_bct_only_books
        );
        assert_eq!(
            x100.world.n_anobii_only_books,
            100 * paper.world.n_anobii_only_books
        );
        assert_eq!(x100.bct.n_users, 100 * paper.bct.n_users);
        assert_eq!(x100.anobii.n_users, 100 * paper.anobii.n_users);
        assert_eq!(
            Preset::PaperX100.merge_config().min_book_readings.0,
            Preset::Paper.merge_config().min_book_readings.0
        );
        let (u, b) = Preset::Paper.serving_scale();
        assert_eq!(Preset::PaperX100.serving_scale(), (100 * u, 100 * b));
    }

    #[test]
    fn serving_scale_orders_with_preset_size() {
        let scales: Vec<(usize, usize)> = [
            Preset::Tiny,
            Preset::Medium,
            Preset::Paper,
            Preset::PaperX100,
        ]
        .iter()
        .map(|p| p.serving_scale())
        .collect();
        assert!(scales
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn merge_thresholds_scale_down() {
        assert!(
            Preset::Tiny.merge_config().min_book_readings.0
                < Preset::Paper.merge_config().min_book_readings.0
        );
    }
}
