//! Generator configuration.
//!
//! Every knob the calibration (DESIGN.md §3) tunes is explicit here;
//! [`crate::presets`] provides the tuned value sets. The defaults on the
//! individual structs are sensible mid-scale values, but experiments should
//! go through a preset.

use rm_dataset::genre::{genre_id, N_RAW_GENRES};

/// Heavy-tailed per-user activity: a log-normal, clamped and rounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityParams {
    /// Mean of the underlying normal (median activity = exp(mu)).
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
    /// Minimum events per user.
    pub min: u64,
    /// Maximum events per user (the paper's merged corpus tops out at
    /// ~480 readings per user).
    pub max: u64,
}

/// One source's user-population parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceConfig {
    /// Number of users to generate (before any pipeline pruning).
    pub n_users: usize,
    /// Per-user activity distribution.
    pub activity: ActivityParams,
    /// Reading-preference share per raw genre (length [`N_RAW_GENRES`],
    /// sums to 1). Users draw their two dominant genres from this.
    pub genre_shares: Vec<f64>,
    /// Probability mass a user puts on their two dominant genres
    /// (the paper: 99 % of users have two genres ≥ 10× the rest, i.e.
    /// mass ≥ 10/11 ≈ 0.91).
    pub dominant_mass: f64,
    /// Probability that the next reading follows a previously-read author
    /// instead of a fresh genre-popularity draw.
    pub author_loyalty: f64,
    /// Probability that a reading lands in the overlap catalogue (books
    /// present in both sources) rather than in this source's exclusive
    /// catalogue.
    pub overlap_bias: f64,
    /// Probability that a genre-popularity reading stays inside one of the
    /// user's two preferred sub-communities (see
    /// [`WorldConfig::subclusters_per_genre`]).
    pub subcluster_mass: f64,
    /// Ceiling of the experience-dependent exploration probability: the
    /// chance that a genre-popularity draw ignores popularity and
    /// sub-community entirely and picks uniformly within the genre.
    /// Exploration grows with the number of books already read —
    /// `ε(n) = exploration_max · n / (n + exploration_halflife)` — so
    /// voracious readers drift into the catalogue's long tail, where
    /// co-reading statistics are thin (hurting CF) but author/genre
    /// metadata still works (Fig. 4's crossover).
    pub exploration_max: f64,
    /// History size at which exploration reaches half its ceiling.
    pub exploration_halflife: f64,
    /// Fraction of this population that follows the *library public's*
    /// within-genre popularity view instead of the Anobii community's.
    /// BCT populations set 1.0; the Anobii population sets a minority
    /// share — those like-minded Anobii readers are what makes the merged
    /// training data genuinely predictive for BCT users (full BPR ≫ BPR
    /// BCT-only) even though global popularity misleads (Most Read below
    /// Random).
    pub bct_like_fraction: f64,
}

/// The shared book world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Books present in both catalogues (merge candidates).
    pub n_overlap_books: usize,
    /// Books present only in the BCT catalogue.
    pub n_bct_only_books: usize,
    /// Items present only in the Anobii catalogue.
    pub n_anobii_only_books: usize,
    /// Share of *books* per raw genre (length [`N_RAW_GENRES`], sums
    /// to 1). Distinct from reading shares: comics draw far more readings
    /// per book than they have catalogue share.
    pub book_genre_shares: Vec<f64>,
    /// Mean books per author.
    pub books_per_author: f64,
    /// Extra productivity multiplier for the Comics genre (series volumes
    /// share an author, which concentrates author-loyalty readings).
    pub comics_series_boost: f64,
    /// Sub-communities per genre. Authors (and hence their books) belong
    /// to one sub-community; users prefer two. Sub-communities are
    /// invisible to book metadata, so they are a purely collaborative
    /// signal — the structural reason BPR outperforms the content-based
    /// recommender except for long-history users (Fig. 4).
    pub subclusters_per_genre: usize,
    /// How much the BCT within-genre popularity ranking diverges from the
    /// Anobii one (0 = identical, 1 = independent). The merged training
    /// popularity is Anobii-dominated, so divergence makes the Most Read
    /// baseline mislead for BCT users — the paper's Table 1 inversion
    /// (Most Read below Random).
    pub popularity_divergence: f64,
    /// Zipf exponent of within-genre book popularity.
    pub popularity_zipf: f64,
    /// Zipf–Mandelbrot shift flattening the popularity head.
    pub popularity_shift: f64,
    /// Fraction of additional noise rows with a non-Italian language in
    /// each source table (exercises the language filter).
    pub foreign_fraction: f64,
    /// Fraction of additional noise rows that are DVDs/periodicals (BCT)
    /// or non-book items (Anobii).
    pub non_book_fraction: f64,
    /// Plot length in words.
    pub plot_len: usize,
    /// Keywords per book.
    pub n_keywords: usize,
    /// Themed vocabulary size per genre.
    pub genre_lexicon_size: usize,
    /// Shared generic vocabulary size.
    pub generic_lexicon_size: usize,
}

/// Anobii star-rating distribution (1–5). Ratings below 3 are negative
/// feedback the pipeline drops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingModel {
    /// P(rating = s) for s = 1..=5.
    pub probs: [f64; 5],
}

impl Default for RatingModel {
    fn default() -> Self {
        // ~13 % negative feedback, mode at 4 stars.
        Self {
            probs: [0.04, 0.09, 0.22, 0.36, 0.29],
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// The shared book world.
    pub world: WorldConfig,
    /// BCT population.
    pub bct: SourceConfig,
    /// Anobii population.
    pub anobii: SourceConfig,
    /// Anobii rating-value model.
    pub rating: RatingModel,
}

/// Builds a genre-share vector: named genres get the given shares, the
/// remainder is spread geometrically (ratio `decay`) over all other
/// non-pinned genres.
///
/// # Panics
///
/// Panics if a name is unknown or the pinned shares exceed 1.
#[must_use]
pub fn genre_share_vector(pinned: &[(&str, f64)], decay: f64) -> Vec<f64> {
    let mut shares = vec![0.0f64; N_RAW_GENRES];
    let mut pinned_total = 0.0;
    for &(name, share) in pinned {
        let id = genre_id(name).unwrap_or_else(|| panic!("unknown genre {name}"));
        shares[id.0 as usize] = share;
        pinned_total += share;
    }
    assert!(
        pinned_total <= 1.0 + 1e-9,
        "pinned shares exceed 1: {pinned_total}"
    );
    let rest = 1.0 - pinned_total;
    let free: Vec<usize> = (0..N_RAW_GENRES).filter(|&g| shares[g] == 0.0).collect();
    if !free.is_empty() && rest > 0.0 {
        // Geometric weights over the free genres.
        let weights: Vec<f64> = (0..free.len()).map(|i| decay.powi(i as i32)).collect();
        let total: f64 = weights.iter().sum();
        for (i, &g) in free.iter().enumerate() {
            shares[g] = rest * weights[i] / total;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_vector_sums_to_one() {
        let v = genre_share_vector(
            &[("Comics", 0.44), ("Thriller", 0.14), ("Fantasy", 0.12)],
            0.8,
        );
        assert_eq!(v.len(), N_RAW_GENRES);
        let total: f64 = v.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!((v[0] - 0.44).abs() < 1e-12);
    }

    #[test]
    fn unpinned_shares_decay() {
        let v = genre_share_vector(&[("Comics", 0.5)], 0.7);
        let free: Vec<f64> = v.iter().copied().filter(|&s| s > 0.0 && s != 0.5).collect();
        for w in free.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "unknown genre")]
    fn unknown_genre_panics() {
        let _ = genre_share_vector(&[("Nope", 0.1)], 0.8);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overweight_panics() {
        let _ = genre_share_vector(&[("Comics", 0.7), ("Thriller", 0.5)], 0.8);
    }

    #[test]
    fn rating_model_probs_sum_to_one() {
        let m = RatingModel::default();
        let total: f64 = m.probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
