//! Tokenisation: lowercasing, accent folding, word and character n-grams.
//!
//! The corpus is Italian, so accent folding matters (`perché` / `perche`
//! must collide) and inflection is heavy (`lettore` / `lettori`), which the
//! boundary-marked character n-grams absorb.

/// Folds the Latin-1/Latin-Extended accents that occur in Italian text and
/// lowercases everything else. Characters outside the alphanumeric range map
/// to separators.
#[must_use]
pub fn fold_char(c: char) -> Option<char> {
    let c = c.to_lowercase().next().unwrap_or(c);
    match c {
        'à' | 'á' | 'â' | 'ä' | 'ã' | 'å' => Some('a'),
        'è' | 'é' | 'ê' | 'ë' => Some('e'),
        'ì' | 'í' | 'î' | 'ï' => Some('i'),
        'ò' | 'ó' | 'ô' | 'ö' | 'õ' => Some('o'),
        'ù' | 'ú' | 'û' | 'ü' => Some('u'),
        'ç' => Some('c'),
        'ñ' => Some('n'),
        _ if c.is_alphanumeric() => Some(c),
        _ => None,
    }
}

/// Splits `text` into normalised word tokens.
///
/// A token is a maximal run of alphanumeric characters after accent folding;
/// single-character tokens are kept (initials matter for author names).
#[must_use]
pub fn tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match fold_char(c) {
            Some(f) => cur.push(f),
            None => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Character n-grams of a single token, wrapped in boundary markers
/// (`^token$`), for `n` in `[lo, hi]`. Tokens shorter than `lo` (after
/// wrapping) yield the wrapped token itself.
#[must_use]
pub fn char_ngrams(token: &str, lo: usize, hi: usize) -> Vec<String> {
    debug_assert!(lo >= 2 && lo <= hi);
    let wrapped: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    let mut out = Vec::new();
    if wrapped.len() <= lo {
        out.push(wrapped.iter().collect());
        return out;
    }
    for n in lo..=hi.min(wrapped.len()) {
        for win in wrapped.windows(n) {
            out.push(win.iter().collect());
        }
    }
    out
}

/// The Italian stop-word list applied before weighting.
///
/// Deliberately short: IDF already downweights common words; this list only
/// removes the closed-class words so frequent that they would dominate term
/// frequencies in very short fields (titles).
pub const STOPWORDS: &[&str] = &[
    "di", "a", "da", "in", "con", "su", "per", "tra", "fra", "il", "lo", "la", "i", "gli", "le",
    "un", "uno", "una", "e", "ed", "o", "che", "non", "si", "del", "della", "dei", "delle",
    "dello", "al", "alla", "ai", "alle", "nel", "nella", "sul", "sulla", "un'", "l", "d",
];

/// True when `token` is a stop word.
#[must_use]
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_folds_accents() {
        assert_eq!(tokens("Perché NO"), vec!["perche", "no"]);
        assert_eq!(tokens("Città d'Autunno"), vec!["citta", "d", "autunno"]);
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokens("Il nome... della-rosa (1980)"),
            vec!["il", "nome", "della", "rosa", "1980"]
        );
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokens("").is_empty());
        assert!(tokens("!!! --- ***").is_empty());
    }

    #[test]
    fn ngrams_have_boundaries() {
        let grams = char_ngrams("ab", 3, 4);
        assert!(grams.contains(&"^ab".to_owned()));
        assert!(grams.contains(&"ab$".to_owned()));
        assert!(grams.contains(&"^ab$".to_owned()));
    }

    #[test]
    fn short_token_yields_wrapped_self() {
        assert_eq!(char_ngrams("a", 3, 5), vec!["^a$".to_owned()]);
    }

    #[test]
    fn ngram_count_matches_formula() {
        // "rosa" wrapped = 6 chars; 3-grams: 4, 4-grams: 3 => 7 total.
        assert_eq!(char_ngrams("rosa", 3, 4).len(), 7);
    }

    #[test]
    fn stopwords_detected() {
        assert!(is_stopword("della"));
        assert!(!is_stopword("rosa"));
    }

    #[test]
    fn shared_stem_shares_ngrams() {
        let a: std::collections::HashSet<_> = char_ngrams("lettore", 3, 5).into_iter().collect();
        let b: std::collections::HashSet<_> = char_ngrams("lettori", 3, 5).into_iter().collect();
        let c: std::collections::HashSet<_> = char_ngrams("zanzara", 3, 5).into_iter().collect();
        let ab = a.intersection(&b).count();
        let ac = a.intersection(&c).count();
        assert!(
            ab > ac,
            "inflected forms should overlap more ({ab} vs {ac})"
        );
    }
}
