//! Embedding store: the catalogue's encoded metadata summaries plus batch
//! similarity and exact k-NN.
//!
//! All rows are unit vectors (or zero for empty texts), so cosine similarity
//! reduces to a dot product and a full catalogue scan for one query is a
//! single matrix–vector product — fast enough that approximate indexes are
//! unnecessary at the paper's catalogue size (2 332 books).

use crate::encoder::{EncoderScratch, SemanticEncoder};
use rm_sparse::vecops;
use rm_sparse::DenseMatrix;
use rm_util::topk::{top_k_of, Scored};

/// Dense store of item embeddings, one row per item.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    matrix: DenseMatrix,
}

impl EmbeddingStore {
    /// Encodes `texts` with `encoder` into a store, writing each embedding
    /// straight into its matrix row and reusing one [`EncoderScratch`]
    /// across the catalogue — steady-state encoding allocates nothing
    /// per text.
    #[must_use]
    pub fn encode_all<S: AsRef<str>>(encoder: &SemanticEncoder, texts: &[S]) -> Self {
        let dim = encoder.dim();
        let mut data = vec![0.0f32; texts.len() * dim];
        let mut scratch = EncoderScratch::default();
        for (t, row) in texts.iter().zip(data.chunks_exact_mut(dim)) {
            encoder.encode_into_with(t.as_ref(), &mut scratch, row);
        }
        Self {
            matrix: DenseMatrix::from_vec(texts.len(), dim, data),
        }
    }

    /// Wraps pre-computed embeddings. Rows are L2-normalised in place
    /// (zero rows stay zero).
    #[must_use]
    pub fn from_matrix(mut matrix: DenseMatrix) -> Self {
        for r in 0..matrix.rows() {
            vecops::normalize(matrix.row_mut(r));
        }
        Self { matrix }
    }

    /// Wraps rows that are *already* unit (or zero) vectors — e.g. decoded
    /// from a persisted artifact — without renormalising, so restored
    /// embeddings are bit-identical to the stored ones.
    #[must_use]
    pub fn from_unit_matrix(matrix: DenseMatrix) -> Self {
        #[cfg(debug_assertions)]
        for r in 0..matrix.rows() {
            let norm_sq: f32 = matrix.row(r).iter().map(|v| v * v).sum();
            debug_assert!(
                norm_sq == 0.0 || (norm_sq - 1.0).abs() < 1e-3,
                "row {r} is not a unit vector (|v|^2 = {norm_sq})"
            );
        }
        Self { matrix }
    }

    /// Number of stored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// True when the store holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matrix.rows() == 0
    }

    /// Embedding dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Embedding of item `i`.
    #[must_use]
    pub fn embedding(&self, i: usize) -> &[f32] {
        self.matrix.row(i)
    }

    /// Cosine similarity between items `i` and `j` (dot of unit rows).
    #[must_use]
    pub fn similarity(&self, i: usize, j: usize) -> f32 {
        vecops::dot(self.matrix.row(i), self.matrix.row(j))
    }

    /// Similarity of `query` against every stored item.
    ///
    /// `query` need not be normalised; pass a unit vector (e.g. another
    /// stored row or a normalised centroid) to get true cosines.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim`.
    #[must_use]
    pub fn similarities(&self, query: &[f32]) -> Vec<f32> {
        self.matrix.matvec(query)
    }

    /// [`EmbeddingStore::similarities`] writing into `out` (cleared and
    /// refilled), so batch callers can reuse one allocation.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim`.
    pub fn similarities_into(&self, query: &[f32], out: &mut Vec<f32>) {
        self.matrix.matvec_into(query, out);
    }

    /// Mean of the embeddings at `indices`, L2-normalised.
    ///
    /// Because rows are unit vectors, the dot of a candidate with this
    /// normalised centroid ranks candidates identically to the *average
    /// cosine similarity* to the set (Eq. 1 of the paper) up to the shared
    /// positive factor `‖Σ e_i‖ / |N_u|` — the fast path Closest Items uses.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    #[must_use]
    pub fn centroid(&self, indices: &[u32]) -> Vec<f32> {
        let mut c = Vec::new();
        self.mean_embedding_into(indices, &mut c);
        vecops::normalize(&mut c);
        c
    }

    /// Unnormalised mean of the embeddings at `indices` — exactly
    /// `(Σ e_i) / |N_u|`, so a dot with it equals the paper's Eq. 1 average
    /// similarity for unit candidate vectors.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    #[must_use]
    pub fn mean_embedding(&self, indices: &[u32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.mean_embedding_into(indices, &mut out);
        out
    }

    /// [`EmbeddingStore::mean_embedding`] writing into `out` (cleared and
    /// refilled). Accumulates rows in place — no row-pointer list, no
    /// per-call result vector — so per-user query building on the serve
    /// and eval paths is allocation-free once `out` has capacity `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn mean_embedding_into(&self, indices: &[u32], out: &mut Vec<f32>) {
        assert!(!indices.is_empty(), "mean of empty set");
        out.clear();
        out.resize(self.dim(), 0.0);
        for &i in indices {
            vecops::axpy(1.0, self.matrix.row(i as usize), out);
        }
        vecops::scale(1.0 / indices.len() as f32, out);
    }

    /// Exact k nearest neighbours of item `i` (excluding itself),
    /// best-first.
    #[must_use]
    pub fn nearest(&self, i: usize, k: usize) -> Vec<Scored> {
        let sims = self.similarities(self.matrix.row(i));
        top_k_of(
            sims.into_iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, s)| (j as u32, s)),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;

    fn store() -> EmbeddingStore {
        let enc = SemanticEncoder::new(EncoderConfig::default());
        EmbeddingStore::encode_all(
            &enc,
            &[
                "umberto eco giallo storico medioevo",
                "umberto eco romanzo storico pendolo",
                "manga robot spaziale battaglia",
                "manga robot mecha pilota",
                "",
            ],
        )
    }

    #[test]
    fn dimensions() {
        let s = store();
        assert_eq!(s.len(), 5);
        assert_eq!(s.dim(), 256);
        assert!(!s.is_empty());
    }

    #[test]
    fn self_similarity_is_one() {
        let s = store();
        for i in 0..4 {
            assert!((s.similarity(i, i) - 1.0).abs() < 1e-5);
        }
        // Zero (empty-text) row has zero self-similarity.
        assert_eq!(s.similarity(4, 4), 0.0);
    }

    #[test]
    fn related_items_closer_than_unrelated() {
        let s = store();
        assert!(s.similarity(0, 1) > s.similarity(0, 2));
        assert!(s.similarity(2, 3) > s.similarity(1, 3));
    }

    #[test]
    fn nearest_excludes_self_and_orders() {
        let s = store();
        let nn = s.nearest(0, 2);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].item, 1);
        assert!(nn[0].score >= nn[1].score);
        assert!(nn.iter().all(|sc| sc.item != 0));
    }

    #[test]
    fn similarities_match_pairwise() {
        let s = store();
        let sims = s.similarities(s.embedding(1));
        for (j, &sim) in sims.iter().enumerate() {
            assert!((sim - s.similarity(1, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn centroid_is_unit_and_between() {
        let s = store();
        let c = s.centroid(&[0, 1]);
        assert!((rm_sparse::vecops::norm2(&c) - 1.0).abs() < 1e-5);
        let sim0 = rm_sparse::vecops::dot(&c, s.embedding(0));
        let sim2 = rm_sparse::vecops::dot(&c, s.embedding(2));
        assert!(sim0 > sim2);
    }

    #[test]
    fn mean_embedding_ranks_like_average_similarity() {
        let s = store();
        let seen = [0u32, 1];
        let mean = s.mean_embedding(&seen);
        // Brute-force Eq. 1 for candidates 2 and 3.
        let avg = |b: usize| {
            seen.iter()
                .map(|&i| s.similarity(b, i as usize))
                .sum::<f32>()
                / seen.len() as f32
        };
        let dot2 = rm_sparse::vecops::dot(&mean, s.embedding(2));
        let dot3 = rm_sparse::vecops::dot(&mean, s.embedding(3));
        assert!((dot2 - avg(2)).abs() < 1e-5);
        assert!((dot3 - avg(3)).abs() < 1e-5);
    }

    #[test]
    fn mean_embedding_into_matches_and_reuses_buffer() {
        let s = store();
        let mut buf = Vec::new();
        s.mean_embedding_into(&[0, 1, 2], &mut buf);
        assert_eq!(buf, s.mean_embedding(&[0, 1, 2]));
        let ptr = buf.as_ptr();
        s.mean_embedding_into(&[2, 3], &mut buf);
        assert_eq!(buf, s.mean_embedding(&[2, 3]));
        assert_eq!(ptr, buf.as_ptr(), "query buffer must be reused");
    }

    #[test]
    fn from_matrix_normalises_rows() {
        let m = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        let s = EmbeddingStore::from_matrix(m);
        assert!((rm_sparse::vecops::norm2(s.embedding(0)) - 1.0).abs() < 1e-6);
        assert_eq!(s.embedding(1), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn centroid_of_empty_panics() {
        let _ = store().centroid(&[]);
    }
}
