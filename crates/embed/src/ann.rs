//! Approximate nearest-neighbour search over an [`EmbeddingStore`].
//!
//! The paper-scale catalogue (2 332 books) is comfortably brute-forceable,
//! but a production deployment over a full library catalogue (290 k books
//! in raw BCT) is not. [`SignLshIndex`] is the classic random-hyperplane
//! LSH for cosine similarity: each item is hashed to a `bits`-wide sign
//! signature; a query probes its own bucket plus all buckets within a
//! small Hamming radius, then ranks the candidates exactly. Deterministic
//! given the seed; recall grows with the probe radius (radius = `bits`
//! degenerates to exact brute force).

use crate::store::EmbeddingStore;
use rm_sparse::vecops::{cosine, dot};
use rm_util::rng::{derive_seed, rng_from_seed};
use rm_util::sample::standard_normal;
use rm_util::topk::{top_k_of, Scored};
use std::collections::BTreeMap;

/// Random-hyperplane LSH index.
#[derive(Debug, Clone)]
pub struct SignLshIndex {
    /// Hyperplane normals, one per signature bit (row-major `bits × dim`).
    planes: Vec<Vec<f32>>,
    /// Bucket table: signature → item indices. Ordered so bucket
    /// iteration (and therefore candidate emission) is deterministic.
    buckets: BTreeMap<u32, Vec<u32>>,
    /// Signature width in bits (≤ 24 keeps the probe enumeration cheap).
    bits: u32,
}

impl SignLshIndex {
    /// Builds an index over all items of `store`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or above 24.
    #[must_use]
    pub fn build(store: &EmbeddingStore, bits: u32, seed: u64) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        let dim = store.dim();
        let planes: Vec<Vec<f32>> = (0..bits)
            .map(|b| {
                let mut rng = rng_from_seed(derive_seed(seed, u64::from(b)));
                (0..dim).map(|_| standard_normal(&mut rng) as f32).collect()
            })
            .collect();
        let mut index = Self {
            planes,
            buckets: BTreeMap::new(),
            bits,
        };
        for i in 0..store.len() {
            let sig = index.signature(store.embedding(i));
            index.buckets.entry(sig).or_default().push(i as u32);
        }
        index
    }

    /// Signature width.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of non-empty buckets.
    #[must_use]
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The sign signature of a vector.
    #[must_use]
    pub fn signature(&self, v: &[f32]) -> u32 {
        let mut sig = 0u32;
        for (b, plane) in self.planes.iter().enumerate() {
            if dot(plane, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Candidate items within Hamming `radius` of the query's signature.
    #[must_use]
    pub fn candidates(&self, query: &[f32], radius: u32) -> Vec<u32> {
        let sig = self.signature(query);
        let mut out = Vec::new();
        // Enumerate signatures by Hamming distance 0..=radius.
        for mask in masks_up_to(self.bits, radius) {
            if let Some(items) = self.buckets.get(&(sig ^ mask)) {
                out.extend_from_slice(items);
            }
        }
        out
    }

    /// Approximate top-k most similar items to `query`, excluding
    /// `exclude` (e.g. the query item itself). Candidates come from the
    /// probed buckets; ranking among them is exact *cosine* — the metric
    /// this module documents and `exact.rs` ranks by — so a non-unit
    /// query (an unnormalised mean embedding, say) still ranks the same
    /// as its normalised counterpart, and radius = `bits` reproduces the
    /// brute-force cosine ranking bit-for-bit.
    #[must_use]
    pub fn search(
        &self,
        store: &EmbeddingStore,
        query: &[f32],
        k: usize,
        radius: u32,
        exclude: Option<u32>,
    ) -> Vec<Scored> {
        let candidates = self.candidates(query, radius);
        top_k_of(
            candidates
                .into_iter()
                .filter(|&i| Some(i) != exclude)
                .map(|i| (i, cosine(query, store.embedding(i as usize)))),
            k,
        )
    }
}

/// All bit masks of `bits`-wide words with population count ≤ `radius`,
/// distance-0 first.
fn masks_up_to(bits: u32, radius: u32) -> Vec<u32> {
    let mut masks = vec![0u32];
    let mut frontier = vec![0u32];
    for _ in 0..radius.min(bits) {
        let mut next = Vec::new();
        for &m in &frontier {
            // Only set bits above the highest set bit to avoid duplicates.
            let start = 32 - m.leading_zeros();
            for b in start..bits {
                next.push(m | (1 << b));
            }
        }
        masks.extend_from_slice(&next);
        frontier = next;
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, SemanticEncoder};

    fn store() -> EmbeddingStore {
        let enc = SemanticEncoder::new(EncoderConfig::default());
        let texts: Vec<String> = (0..120)
            .map(|i| match i % 3 {
                0 => format!("giallo mistero detective caso{i}"),
                1 => format!("fantasia drago magia regno{i}"),
                _ => format!("storia guerra memoria secolo{i}"),
            })
            .collect();
        EmbeddingStore::encode_all(&enc, &texts)
    }

    #[test]
    fn masks_enumerate_hamming_balls() {
        assert_eq!(masks_up_to(4, 0), vec![0]);
        let r1 = masks_up_to(4, 1);
        assert_eq!(r1.len(), 1 + 4);
        let r2 = masks_up_to(4, 2);
        assert_eq!(r2.len(), 1 + 4 + 6);
        // All distinct.
        let set: std::collections::HashSet<_> = r2.iter().collect();
        assert_eq!(set.len(), r2.len());
    }

    #[test]
    fn index_is_deterministic() {
        let s = store();
        let a = SignLshIndex::build(&s, 10, 5);
        let b = SignLshIndex::build(&s, 10, 5);
        assert_eq!(a.signature(s.embedding(7)), b.signature(s.embedding(7)));
        let c = SignLshIndex::build(&s, 10, 6);
        // Different seed, different planes (signatures differ somewhere).
        let differs =
            (0..s.len()).any(|i| a.signature(s.embedding(i)) != c.signature(s.embedding(i)));
        assert!(differs);
    }

    /// Brute-force cosine top-k over the whole store — the reference
    /// `search` must reproduce when every bucket is probed.
    fn brute_force_cosine(
        s: &EmbeddingStore,
        query: &[f32],
        k: usize,
        exclude: u32,
    ) -> Vec<Scored> {
        top_k_of(
            (0..s.len() as u32)
                .filter(|&i| i != exclude)
                .map(|i| (i, cosine(query, s.embedding(i as usize)))),
            k,
        )
    }

    #[test]
    fn full_radius_recovers_exact_top_k() {
        let s = store();
        let idx = SignLshIndex::build(&s, 8, 1);
        let exact: Vec<u32> = brute_force_cosine(&s, s.embedding(0), 5, 0)
            .into_iter()
            .map(|r| r.item)
            .collect();
        let approx: Vec<u32> = idx
            .search(&s, s.embedding(0), 5, 8, Some(0))
            .into_iter()
            .map(|r| r.item)
            .collect();
        assert_eq!(exact, approx, "probing every bucket must equal brute force");
    }

    #[test]
    fn full_radius_is_bit_identical_to_brute_force_cosine() {
        // radius = bits degenerates to exact search: every bucket is
        // probed, so the candidate set is the full catalogue and the
        // ranking — scores included — must match brute-force cosine
        // bit-for-bit. Exercised with a deliberately *non-unit* query (an
        // unnormalised mean embedding) so raw-dot ranking, which scales
        // with the query norm, could not pass by accident.
        let s = store();
        let idx = SignLshIndex::build(&s, 8, 3);
        let seen: Vec<u32> = vec![0, 3, 6];
        let query = s.mean_embedding(&seen);
        for k in [1usize, 5, 20] {
            let exact = brute_force_cosine(&s, &query, k, u32::MAX);
            let approx = idx.search(&s, &query, k, idx.bits(), None);
            assert_eq!(exact.len(), approx.len());
            for (e, a) in exact.iter().zip(&approx) {
                assert_eq!(e.item, a.item, "k={k}: item order diverged");
                assert_eq!(
                    e.score.to_bits(),
                    a.score.to_bits(),
                    "k={k}: score for item {} not bit-identical",
                    e.item
                );
            }
        }
    }

    #[test]
    fn recall_grows_with_radius() {
        let s = store();
        let idx = SignLshIndex::build(&s, 12, 9);
        let recall_at = |radius: u32| {
            let mut hit = 0usize;
            let mut total = 0usize;
            for q in 0..30usize {
                let exact: std::collections::HashSet<u32> =
                    s.nearest(q, 5).into_iter().map(|r| r.item).collect();
                let approx: std::collections::HashSet<u32> = idx
                    .search(&s, s.embedding(q), 5, radius, Some(q as u32))
                    .into_iter()
                    .map(|r| r.item)
                    .collect();
                hit += exact.intersection(&approx).count();
                total += exact.len();
            }
            hit as f64 / total as f64
        };
        let r0 = recall_at(0);
        let r2 = recall_at(2);
        let r4 = recall_at(4);
        assert!(r2 >= r0, "recall r2 {r2} < r0 {r0}");
        assert!(r4 >= r2, "recall r4 {r4} < r2 {r2}");
        assert!(r4 > 0.6, "radius-4 recall too low: {r4}");
    }

    #[test]
    fn candidates_prefer_same_topic() {
        // With a moderate radius, same-topic items should dominate the
        // candidate set for a topical query.
        let s = store();
        let idx = SignLshIndex::build(&s, 12, 11);
        let cands = idx.candidates(s.embedding(0), 2);
        assert!(!cands.is_empty());
        let same_topic = cands.iter().filter(|&&i| i % 3 == 0).count();
        assert!(
            same_topic * 2 >= cands.len(),
            "same-topic {same_topic} of {}",
            cands.len()
        );
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_rejected() {
        let _ = SignLshIndex::build(&store(), 0, 1);
    }
}
