//! The feature-hashed semantic encoder (SBERT substitute).
//!
//! A text is reduced to a weighted bag of features — word tokens plus
//! boundary-marked character n-grams — each feature hashed to one coordinate
//! of a `dim`-dimensional vector with a pseudo-random sign. This is a signed
//! random projection of the sparse TF-IDF vector: by the
//! Johnson–Lindenstrauss argument, cosine between two projected vectors
//! approximates cosine between the underlying TF-IDF bags, with error
//! shrinking as `dim` grows. Encoding is training-free and deterministic
//! given the configuration's hash seed; the optional IDF model is the only
//! fitted state.

use crate::idf::IdfModel;
use crate::tokenize::{fold_char, is_stopword, tokens};

/// Configuration of a [`SemanticEncoder`].
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderConfig {
    /// Output dimensionality. 256 balances JL distortion (< ~0.1 cosine
    /// error at catalogue scale) against the O(catalog × dim) similarity
    /// scans in Closest Items.
    pub dim: usize,
    /// Character n-gram range `(lo, hi)`; `None` disables n-gram features.
    pub char_ngrams: Option<(usize, usize)>,
    /// Relative weight of the n-gram features of a token versus the token
    /// itself. Small values keep word identity dominant while still linking
    /// inflected forms.
    pub ngram_weight: f32,
    /// Drop Italian stop words before weighting.
    pub drop_stopwords: bool,
    /// Use sublinear term frequency `1 + ln(tf)` instead of raw counts.
    pub sublinear_tf: bool,
    /// Seed of the hashing trick; changing it re-randomises the projection.
    pub hash_seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            dim: 256,
            char_ngrams: Some((3, 4)),
            ngram_weight: 0.5,
            drop_stopwords: true,
            sublinear_tf: true,
            hash_seed: 0x5EED_EE0D_F00D_CAFE,
        }
    }
}

/// Reusable per-text temporaries for [`SemanticEncoder::encode_into_with`].
///
/// Encoding a text needs a folded copy of its characters, token spans,
/// term counts, and an n-gram window buffer. Holding them here lets a
/// batch encoder (e.g. `EmbeddingStore::encode_all`) hoist one scratch
/// over the whole catalogue: after the first few texts the buffers stop
/// growing and encoding allocates nothing per item.
#[derive(Debug, Clone, Default)]
pub struct EncoderScratch {
    /// Accent-folded token characters, concatenated.
    folded: String,
    /// Byte spans of each surviving token in `folded`.
    spans: Vec<(u32, u32)>,
    /// `(representative span index, count)` per unique token, in
    /// lexicographic token order — the deterministic accumulation order.
    counted: Vec<(u32, u32)>,
    /// Boundary-wrapped token (`^token$`) for n-gram windows.
    wrapped: String,
    /// Char-boundary byte offsets of `wrapped` (plus the end offset).
    offsets: Vec<u32>,
}

impl EncoderScratch {
    /// Folds `text` into tokens (spans over `folded`), dropping stop
    /// words when asked — the buffer-reusing equivalent of
    /// [`crate::tokenize::tokens`].
    fn tokenize(&mut self, text: &str, drop_stopwords: bool) {
        self.folded.clear();
        self.spans.clear();
        let mut start = 0u32;
        for c in text.chars() {
            match fold_char(c) {
                Some(f) => self.folded.push(f),
                None => {
                    if self.folded.len() as u32 > start {
                        self.spans.push((start, self.folded.len() as u32));
                    }
                    start = self.folded.len() as u32;
                }
            }
        }
        if self.folded.len() as u32 > start {
            self.spans.push((start, self.folded.len() as u32));
        }
        if drop_stopwords {
            let folded = &self.folded;
            self.spans
                .retain(|&(a, b)| !is_stopword(&folded[a as usize..b as usize]));
        }
    }

    /// Sorts the token spans lexicographically and run-length counts
    /// them into `counted` — the allocation-free replacement for the
    /// old per-call `HashMap` + sort.
    fn count_terms(&mut self) {
        self.counted.clear();
        let folded = &self.folded;
        self.spans.sort_unstable_by(|&(a1, b1), &(a2, b2)| {
            folded[a1 as usize..b1 as usize].cmp(&folded[a2 as usize..b2 as usize])
        });
        let mut i = 0;
        while i < self.spans.len() {
            let (a, b) = self.spans[i];
            let tok = &folded[a as usize..b as usize];
            let mut j = i + 1;
            while j < self.spans.len() {
                let (c, d) = self.spans[j];
                if &folded[c as usize..d as usize] != tok {
                    break;
                }
                j += 1;
            }
            self.counted.push((i as u32, (j - i) as u32));
            i = j;
        }
    }
}

/// Deterministic text → unit-vector encoder.
#[derive(Debug, Clone, Default)]
pub struct SemanticEncoder {
    config: EncoderConfig,
    idf: Option<IdfModel>,
}

impl SemanticEncoder {
    /// Creates an encoder with no IDF weighting (all terms weigh equally).
    #[must_use]
    pub fn new(config: EncoderConfig) -> Self {
        assert!(config.dim > 0, "encoder dimension must be positive");
        if let Some((lo, hi)) = config.char_ngrams {
            assert!(lo >= 2 && lo <= hi, "invalid n-gram range");
        }
        Self { config, idf: None }
    }

    /// Creates an encoder and fits its IDF model over a document corpus.
    #[must_use]
    pub fn fit<S: AsRef<str>>(config: EncoderConfig, corpus: &[S]) -> Self {
        let mut enc = Self::new(config);
        let tokenised: Vec<Vec<String>> = corpus
            .iter()
            .map(|doc| enc.normalised_tokens(doc.as_ref()))
            .collect();
        enc.idf = Some(IdfModel::fit(
            tokenised.iter().map(|doc| doc.iter().map(String::as_str)),
        ));
        enc
    }

    /// The configured output dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Whether an IDF model is fitted.
    #[must_use]
    pub fn has_idf(&self) -> bool {
        self.idf.is_some()
    }

    fn normalised_tokens(&self, text: &str) -> Vec<String> {
        let mut toks = tokens(text);
        if self.config.drop_stopwords {
            toks.retain(|t| !is_stopword(t));
        }
        toks
    }

    fn idf_weight(&self, token: &str) -> f32 {
        self.idf.as_ref().map_or(1.0, |m| m.idf(token))
    }

    /// Encodes a text into a unit vector. An empty / all-stopword text
    /// yields the zero vector.
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.config.dim];
        self.encode_into(text, &mut out);
        out
    }

    /// [`SemanticEncoder::encode`] writing into a caller-provided buffer
    /// (zeroed first), so batch encoders fill their matrix rows directly
    /// instead of allocating a vector per text.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn encode_into(&self, text: &str, out: &mut [f32]) {
        self.encode_into_with(text, &mut EncoderScratch::default(), out);
    }

    /// [`SemanticEncoder::encode_into`] with a caller-held
    /// [`EncoderScratch`]: all per-text temporaries live in `scratch`,
    /// so a batch loop allocates only while the buffers grow to the
    /// longest text. Output is bit-identical to the other entry points
    /// — accumulation runs over unique tokens in lexicographic order,
    /// the same deterministic order the per-call path used.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn encode_into_with(&self, text: &str, scratch: &mut EncoderScratch, out: &mut [f32]) {
        assert_eq!(out.len(), self.config.dim, "encode buffer dimension");
        out.fill(0.0);
        scratch.tokenize(text, self.config.drop_stopwords);
        if scratch.spans.is_empty() {
            return;
        }
        scratch.count_terms();

        for ci in 0..scratch.counted.len() {
            let (si, count) = scratch.counted[ci];
            let (a, b) = scratch.spans[si as usize];
            let tok = &scratch.folded[a as usize..b as usize];
            let tf_w = if self.config.sublinear_tf {
                1.0 + (count as f32).ln()
            } else {
                count as f32
            };
            let w = tf_w * self.idf_weight(tok);
            self.splat(tok.as_bytes(), w, out);
            let Some((lo, hi)) = self.config.char_ngrams else {
                continue;
            };
            scratch.wrapped.clear();
            scratch.wrapped.push('^');
            scratch
                .wrapped
                .push_str(&scratch.folded[a as usize..b as usize]);
            scratch.wrapped.push('$');
            scratch.offsets.clear();
            scratch
                .offsets
                .extend(scratch.wrapped.char_indices().map(|(i, _)| i as u32));
            scratch.offsets.push(scratch.wrapped.len() as u32);
            let nchars = scratch.offsets.len() - 1;
            if nchars <= lo {
                // The whole wrapped token is the single n-gram.
                let gw = w * self.config.ngram_weight;
                self.splat(scratch.wrapped.as_bytes(), gw, out);
                continue;
            }
            // 1/sqrt(n) scaling keeps the *L2 mass* of a token's n-gram
            // block at `w * ngram_weight` regardless of token length
            // (grams are near-orthogonal under hashing), so long words
            // don't get extra weight.
            let n_grams: usize = (lo..=hi.min(nchars)).map(|n| nchars - n + 1).sum();
            let gw = w * self.config.ngram_weight / (n_grams as f32).sqrt();
            for n in lo..=hi.min(nchars) {
                for s in 0..=(nchars - n) {
                    let gram = &scratch.wrapped.as_bytes()
                        [scratch.offsets[s] as usize..scratch.offsets[s + n] as usize];
                    self.splat(gram, gw, out);
                }
            }
        }

        rm_sparse::vecops::normalize(out);
    }

    /// Cosine similarity of two texts under this encoder.
    #[must_use]
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        rm_sparse::vecops::cosine(&self.encode(a), &self.encode(b))
    }

    /// Adds feature `bytes` with weight `w` into the accumulator.
    #[inline]
    fn splat(&self, bytes: &[u8], w: f32, acc: &mut [f32]) {
        let h = hash_feature(self.config.hash_seed, bytes);
        let idx = (h % self.config.dim as u64) as usize;
        // Sign from a high bit uncorrelated with the index bits.
        let sign = if h & (1 << 62) == 0 { 1.0 } else { -1.0 };
        acc[idx] += sign * w;
    }
}

/// Seeded FNV-1a over the feature bytes, finished with a SplitMix64-style
/// avalanche so low bits (used for the index) and high bits (used for the
/// sign) are both well mixed.
#[inline]
#[must_use]
fn hash_feature(seed: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> SemanticEncoder {
        SemanticEncoder::new(EncoderConfig::default())
    }

    #[test]
    fn encoding_is_deterministic_and_unit() {
        let e = enc();
        let v1 = e.encode("Il nome della rosa");
        let v2 = e.encode("Il nome della rosa");
        assert_eq!(v1, v2);
        let norm = rm_sparse::vecops::norm2(&v1);
        assert!((norm - 1.0).abs() < 1e-5, "norm {norm}");
    }

    #[test]
    fn encode_into_matches_encode_and_clears_stale_data() {
        let e = enc();
        let mut buf = vec![f32::NAN; e.dim()];
        e.encode_into("il nome della rosa", &mut buf);
        assert_eq!(buf, e.encode("il nome della rosa"));
        // A previously-used buffer must be fully overwritten, even by an
        // all-stopword text that encodes to zero.
        e.encode_into("il la di e", &mut buf);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "encode buffer dimension")]
    fn encode_into_rejects_wrong_dim() {
        let e = enc();
        let mut buf = vec![0.0f32; e.dim() + 1];
        e.encode_into("x", &mut buf);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = enc();
        assert!(e.encode("").iter().all(|&v| v == 0.0));
        assert!(e.encode("il la di e").iter().all(|&v| v == 0.0)); // all stopwords
    }

    #[test]
    fn identical_texts_similarity_one() {
        let e = enc();
        let s = e.similarity("delitto e castigo", "delitto e castigo");
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shared_vocabulary_beats_disjoint() {
        let e = enc();
        let shared = e.similarity("umberto eco giallo storico", "umberto eco romanzo storico");
        let disjoint = e.similarity(
            "umberto eco giallo storico",
            "manga avventura spaziale robot",
        );
        assert!(
            shared > disjoint + 0.2,
            "shared {shared} vs disjoint {disjoint}"
        );
    }

    #[test]
    fn word_order_is_ignored() {
        let e = enc();
        let s = e.similarity("rossi fantasy magia", "magia fantasy rossi");
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn idf_downweights_common_terms() {
        // "romanzo" appears in every doc, "duneide" in one. With IDF the
        // pair sharing only "romanzo" must score below the pair sharing
        // only "duneide".
        let corpus: Vec<String> = (0..50)
            .map(|i| format!("romanzo storia autore{i}"))
            .chain(std::iter::once("romanzo duneide".to_owned()))
            .collect();
        let e = SemanticEncoder::fit(EncoderConfig::default(), &corpus);
        let common_only = e.similarity("romanzo alfa", "romanzo beta");
        let rare_only = e.similarity("duneide alfa", "duneide beta");
        assert!(
            rare_only > common_only,
            "rare {rare_only} vs common {common_only}"
        );
    }

    #[test]
    fn ngrams_link_inflected_forms() {
        let cfg = EncoderConfig::default();
        let e = SemanticEncoder::new(cfg);
        let inflected = e.similarity("vampiro", "vampiri");
        let unrelated = e.similarity("vampiro", "giardino");
        assert!(
            inflected > unrelated + 0.05,
            "inflected {inflected} vs unrelated {unrelated}"
        );
    }

    #[test]
    fn different_seeds_give_different_projections() {
        let a = SemanticEncoder::new(EncoderConfig {
            hash_seed: 1,
            ..EncoderConfig::default()
        });
        let b = SemanticEncoder::new(EncoderConfig {
            hash_seed: 2,
            ..EncoderConfig::default()
        });
        assert_ne!(
            a.encode("la storia infinita"),
            b.encode("la storia infinita")
        );
    }

    #[test]
    fn accents_fold_before_hashing() {
        let e = enc();
        let s = e.similarity("perché città", "perche citta");
        assert!((s - 1.0).abs() < 1e-5);
    }

    proptest::proptest! {
        #[test]
        fn encoding_never_panics_and_is_unit_or_zero(text in "[a-zA-Z0-9 àèìòù.,!-]{0,120}") {
            let e = enc();
            let v = e.encode(&text);
            proptest::prop_assert_eq!(v.len(), e.dim());
            let norm = rm_sparse::vecops::norm2(&v);
            proptest::prop_assert!(
                norm.abs() < 1e-6 || (norm - 1.0).abs() < 1e-4,
                "norm {}", norm
            );
        }

        #[test]
        fn self_similarity_is_one_or_zero(text in "[a-z ]{1,60}") {
            let e = enc();
            let s = e.similarity(&text, &text);
            proptest::prop_assert!(s.abs() < 1e-6 || (s - 1.0).abs() < 1e-4);
        }

        #[test]
        fn similarity_is_symmetric(a in "[a-z ]{1,40}", b in "[a-z ]{1,40}") {
            let e = enc();
            let ab = e.similarity(&a, &b);
            let ba = e.similarity(&b, &a);
            proptest::prop_assert!((ab - ba).abs() < 1e-6);
        }
    }

    /// The old per-call encoder (HashMap term counts + `char_ngrams`
    /// string allocation), kept as a reference: the scratch-based path
    /// must reproduce it bit for bit.
    fn encode_reference(e: &SemanticEncoder, text: &str) -> Vec<f32> {
        use crate::tokenize::char_ngrams;
        let mut out = vec![0.0f32; e.dim()];
        let toks = e.normalised_tokens(text);
        if toks.is_empty() {
            return out;
        }
        let mut tf: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        for t in &toks {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        let mut tf: Vec<(&str, u32)> = tf.into_iter().collect();
        tf.sort_unstable_by_key(|&(tok, _)| tok);
        for &(tok, count) in &tf {
            let tf_w = if e.config.sublinear_tf {
                1.0 + (count as f32).ln()
            } else {
                count as f32
            };
            let w = tf_w * e.idf_weight(tok);
            e.splat(tok.as_bytes(), w, &mut out);
            if let Some((lo, hi)) = e.config.char_ngrams {
                let grams = char_ngrams(tok, lo, hi);
                let gw = w * e.config.ngram_weight / (grams.len() as f32).sqrt();
                for g in &grams {
                    e.splat(g.as_bytes(), gw, &mut out);
                }
            }
        }
        rm_sparse::vecops::normalize(&mut out);
        out
    }

    #[test]
    fn scratch_path_is_bit_identical_to_reference() {
        let e = enc();
        let mut scratch = EncoderScratch::default();
        let mut buf = vec![0.0f32; e.dim()];
        for text in [
            "Il nome della rosa",
            "perché città perché",
            "a b a b a ripetizione",
            "",
            "il la di e",
            "Ōoku: le stanze proibite — 大奥",
        ] {
            e.encode_into_with(text, &mut scratch, &mut buf);
            assert_eq!(buf, encode_reference(&e, text), "text {text:?}");
        }
    }

    #[test]
    fn scratch_buffers_are_pointer_stable_after_warmup() {
        let e = enc();
        let mut scratch = EncoderScratch::default();
        let mut buf = vec![0.0f32; e.dim()];
        // Warm up on the longest text; later texts must reuse every
        // buffer in place — encode_all over a catalogue allocates
        // nothing per item once warmed.
        let longest = "il gattopardo e la storia infinita della biblioteca sconfinata";
        e.encode_into_with(longest, &mut scratch, &mut buf);
        let fingerprint = (
            scratch.folded.as_ptr(),
            scratch.spans.as_ptr(),
            scratch.counted.as_ptr(),
            scratch.wrapped.as_ptr(),
            scratch.offsets.as_ptr(),
        );
        for text in ["delitto e castigo", "rosa", "perché no", longest] {
            e.encode_into_with(text, &mut scratch, &mut buf);
            let now = (
                scratch.folded.as_ptr(),
                scratch.spans.as_ptr(),
                scratch.counted.as_ptr(),
                scratch.wrapped.as_ptr(),
                scratch.offsets.as_ptr(),
            );
            assert_eq!(now, fingerprint, "scratch reallocated on {text:?}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_rejected() {
        let _ = SemanticEncoder::new(EncoderConfig {
            dim: 0,
            ..EncoderConfig::default()
        });
    }
}
