//! Smooth inverse-document-frequency weighting.
//!
//! Fitted once over the book catalogue's metadata summaries; at encode time
//! each token's term frequency is multiplied by its IDF so that terms shared
//! by most of the catalogue ("romanzo", series markers) contribute little to
//! similarity while discriminative terms (author surnames, genre names)
//! dominate — the behaviour the Fig. 5 ablation depends on.

use std::collections::{HashMap, HashSet};

/// Smooth IDF model: `idf(t) = ln((1 + N) / (1 + df(t))) + 1`.
///
/// Unknown tokens receive the maximum possible weight (`df = 0`), which is
/// the right default for rare proper nouns that appear after fitting.
#[derive(Debug, Clone, Default)]
pub struct IdfModel {
    n_docs: usize,
    df: HashMap<String, u32>,
}

impl IdfModel {
    /// Fits document frequencies over an iterator of token lists.
    pub fn fit<'a, I, T>(docs: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = &'a str>,
    {
        let mut df: HashMap<String, u32> = HashMap::new();
        let mut n_docs = 0usize;
        let mut seen: HashSet<&str> = HashSet::new();
        for doc in docs {
            n_docs += 1;
            seen.clear();
            for tok in doc {
                if seen.insert(tok) {
                    *df.entry(tok.to_owned()).or_insert(0) += 1;
                }
            }
        }
        Self { n_docs, df }
    }

    /// Number of fitted documents.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Document frequency of a token (0 for unseen).
    #[must_use]
    pub fn df(&self, token: &str) -> u32 {
        self.df.get(token).copied().unwrap_or(0)
    }

    /// Smooth IDF weight of a token.
    #[must_use]
    pub fn idf(&self, token: &str) -> f32 {
        let n = (1 + self.n_docs) as f32;
        let d = (1 + self.df(token)) as f32;
        (n / d).ln() + 1.0
    }

    /// Number of distinct tokens observed.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.df.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IdfModel {
        IdfModel::fit(vec![
            vec!["rosa", "nome", "rosa"],
            vec!["rosa", "pendolo"],
            vec!["isola", "pendolo"],
        ])
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let m = model();
        assert_eq!(m.n_docs(), 3);
        assert_eq!(m.df("rosa"), 2); // appears twice in doc 0 but counts once
        assert_eq!(m.df("pendolo"), 2);
        assert_eq!(m.df("nome"), 1);
        assert_eq!(m.df("ignoto"), 0);
    }

    #[test]
    fn rare_tokens_weigh_more() {
        let m = model();
        assert!(m.idf("nome") > m.idf("rosa"));
        assert!(m.idf("ignoto") > m.idf("nome"));
    }

    #[test]
    fn idf_is_positive_even_for_ubiquitous_tokens() {
        let m = IdfModel::fit(vec![vec!["x"], vec!["x"], vec!["x"]]);
        assert!(m.idf("x") > 0.0);
    }

    #[test]
    fn empty_model_gives_uniform_max() {
        let m = IdfModel::default();
        assert_eq!(m.n_docs(), 0);
        assert_eq!(m.vocab_size(), 0);
        assert!((m.idf("a") - m.idf("b")).abs() < 1e-6);
    }

    #[test]
    fn vocab_size_counts_distinct() {
        assert_eq!(model().vocab_size(), 4);
    }
}
