//! Exact sparse TF-IDF encoding — the reference the hashed encoder
//! approximates.
//!
//! [`crate::SemanticEncoder`] projects the TF-IDF bag into a fixed-width
//! dense vector via feature hashing; DESIGN.md claims the resulting cosine
//! distortion is small at the default dimension. This module provides the
//! ground truth to *measure* that claim: a vocabulary-backed sparse
//! encoder whose cosine is exact, plus [`mean_cosine_distortion`], which
//! quantifies the hashed approximation error over a corpus (asserted in
//! tests, reported by the encoder-dimension study).
//!
//! The exact encoder deliberately mirrors the hashed one's pipeline
//! (tokenisation, stop words, sublinear TF, smooth IDF, n-gram weighting)
//! so the only difference under measurement is the projection itself.

use crate::encoder::{EncoderConfig, SemanticEncoder};
use crate::idf::IdfModel;
use crate::tokenize::{char_ngrams, is_stopword, tokens};
use std::collections::{BTreeMap, HashMap};

/// A sparse L2-normalised vector over a shared term vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    /// Term ids, strictly ascending.
    pub indices: Vec<u32>,
    /// Matching weights.
    pub values: Vec<f32>,
}

impl SparseVec {
    /// Number of non-zero terms.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Dot product of two sparse vectors (merge join).
    #[must_use]
    pub fn dot(&self, other: &Self) -> f32 {
        let mut sum = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity (vectors are stored normalised, so this is `dot`;
    /// kept for symmetry with the dense API).
    #[must_use]
    pub fn cosine(&self, other: &Self) -> f32 {
        self.dot(other)
    }
}

/// Vocabulary-backed exact TF-IDF encoder.
#[derive(Debug, Clone)]
pub struct ExactEncoder {
    config: EncoderConfig,
    idf: IdfModel,
    vocab: HashMap<String, u32>,
}

impl ExactEncoder {
    /// Fits vocabulary and IDF over a corpus, mirroring
    /// [`SemanticEncoder::fit`]'s preprocessing.
    #[must_use]
    pub fn fit<S: AsRef<str>>(config: EncoderConfig, corpus: &[S]) -> Self {
        let tokenised: Vec<Vec<String>> = corpus
            .iter()
            .map(|doc| Self::normalised_tokens(&config, doc.as_ref()))
            .collect();
        let idf = IdfModel::fit(tokenised.iter().map(|doc| doc.iter().map(String::as_str)));
        let mut vocab = HashMap::new();
        let mut next = 0u32;
        for doc in &tokenised {
            for tok in doc {
                for feature in Self::features_of(&config, tok) {
                    vocab.entry(feature).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                }
            }
        }
        Self { config, idf, vocab }
    }

    fn normalised_tokens(config: &EncoderConfig, text: &str) -> Vec<String> {
        let mut toks = tokens(text);
        if config.drop_stopwords {
            toks.retain(|t| !is_stopword(t));
        }
        toks
    }

    /// All features a token contributes: itself plus its n-grams
    /// (namespaced so a gram never collides with a whole word).
    fn features_of(config: &EncoderConfig, token: &str) -> Vec<String> {
        let mut out = vec![format!("w:{token}")];
        if let Some((lo, hi)) = config.char_ngrams {
            out.extend(
                char_ngrams(token, lo, hi)
                    .into_iter()
                    .map(|g| format!("g:{g}")),
            );
        }
        out
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes a text into a normalised sparse vector. Features unseen at
    /// fit time are dropped (the hashed encoder keeps them; over a fitted
    /// catalogue the two see identical features).
    #[must_use]
    pub fn encode(&self, text: &str) -> SparseVec {
        let toks = Self::normalised_tokens(&self.config, text);
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in &toks {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        // Deterministic accumulation order: shared n-gram features receive
        // float contributions from several tokens, and HashMap iteration
        // order varies per process (same invariant as the hashed encoder).
        let mut tf: Vec<(&str, u32)> = tf.into_iter().collect();
        tf.sort_unstable_by_key(|&(tok, _)| tok);
        // BTreeMap so the drain below is already sorted by feature id —
        // deterministic output order with no post-hoc sort.
        let mut acc: BTreeMap<u32, f32> = BTreeMap::new();
        for &(tok, count) in &tf {
            let tf_w = if self.config.sublinear_tf {
                1.0 + (count as f32).ln()
            } else {
                count as f32
            };
            let w = tf_w * self.idf.idf(tok);
            let features = Self::features_of(&self.config, tok);
            for (fi, feature) in features.iter().enumerate() {
                let Some(&id) = self.vocab.get(feature) else {
                    continue;
                };
                let weight = if fi == 0 {
                    w
                } else {
                    // Same n-gram block scaling as the hashed encoder.
                    w * self.config.ngram_weight / ((features.len() - 1) as f32).sqrt()
                };
                *acc.entry(id).or_insert(0.0) += weight;
            }
        }
        let mut pairs: Vec<(u32, f32)> = acc.into_iter().collect();
        let norm: f32 = pairs.iter().map(|&(_, v)| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut pairs {
                *v /= norm;
            }
        }
        let (indices, values) = pairs.into_iter().unzip();
        SparseVec { indices, values }
    }

    /// Exact cosine between two texts.
    #[must_use]
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        self.encode(a).cosine(&self.encode(b))
    }
}

/// Mean absolute cosine error of the hashed encoder against the exact one
/// over all pairs of the first `sample` corpus texts. Both encoders must
/// have been fitted on the same corpus with the same config (bar `dim`).
#[must_use]
pub fn mean_cosine_distortion<S: AsRef<str>>(
    hashed: &SemanticEncoder,
    exact: &ExactEncoder,
    texts: &[S],
    sample: usize,
) -> f64 {
    let texts: Vec<&str> = texts.iter().take(sample).map(AsRef::as_ref).collect();
    let dense: Vec<Vec<f32>> = texts.iter().map(|t| hashed.encode(t)).collect();
    let sparse: Vec<SparseVec> = texts.iter().map(|t| exact.encode(t)).collect();
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..texts.len() {
        for j in (i + 1)..texts.len() {
            let approx = rm_sparse::vecops::cosine(&dense[i], &dense[j]);
            let truth = sparse[i].cosine(&sparse[j]);
            total += f64::from((approx - truth).abs());
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        (0..60)
            .map(|i| match i % 3 {
                0 => format!("giallo mistero detective indagine caso{i} marco neri"),
                1 => format!("drago magia incantesimo regno torre{i} luisa blu"),
                _ => format!("guerra memoria secolo famiglia diario{i} anna verdi"),
            })
            .collect()
    }

    #[test]
    fn sparse_dot_merge_join() {
        let a = SparseVec {
            indices: vec![1, 3, 7],
            values: vec![0.5, 0.5, 0.5],
        };
        let b = SparseVec {
            indices: vec![3, 7, 9],
            values: vec![1.0, 2.0, 3.0],
        };
        assert!((a.dot(&b) - (0.5 + 1.0)).abs() < 1e-6);
        let empty = SparseVec {
            indices: vec![],
            values: vec![],
        };
        assert_eq!(a.dot(&empty), 0.0);
    }

    #[test]
    fn exact_encoder_self_similarity_is_one() {
        let c = corpus();
        let e = ExactEncoder::fit(EncoderConfig::default(), &c);
        assert!((e.similarity(&c[0], &c[0]) - 1.0).abs() < 1e-5);
        assert!(e.vocab_size() > 100);
    }

    #[test]
    fn exact_orders_same_topic_above_cross_topic() {
        let c = corpus();
        let e = ExactEncoder::fit(EncoderConfig::default(), &c);
        let same = e.similarity(&c[0], &c[3]); // both giallo
        let cross = e.similarity(&c[0], &c[1]); // giallo vs drago
        assert!(same > cross + 0.2, "same {same} vs cross {cross}");
    }

    #[test]
    fn distortion_shrinks_with_dimension() {
        let c = corpus();
        let exact = ExactEncoder::fit(EncoderConfig::default(), &c);
        let distortion_at = |dim: usize| {
            let hashed = SemanticEncoder::fit(
                EncoderConfig {
                    dim,
                    ..EncoderConfig::default()
                },
                &c,
            );
            mean_cosine_distortion(&hashed, &exact, &c, 30)
        };
        let d32 = distortion_at(32);
        let d256 = distortion_at(256);
        let d2048 = distortion_at(2048);
        assert!(d256 < d32, "d256 {d256} vs d32 {d32}");
        assert!(d2048 < d256, "d2048 {d2048} vs d256 {d256}");
        // The DESIGN.md claim: small distortion at the default dimension.
        assert!(d256 < 0.1, "default-dim distortion too high: {d256}");
    }

    #[test]
    fn hashed_and_exact_agree_on_ranking() {
        // The orderings the recommenders rely on must survive hashing:
        // same-topic neighbours rank above cross-topic ones under both.
        let c = corpus();
        let exact = ExactEncoder::fit(EncoderConfig::default(), &c);
        let hashed = SemanticEncoder::fit(EncoderConfig::default(), &c);
        let mut agree = 0;
        let total = 20;
        for q in 0..total {
            let same = (q + 3) % c.len();
            let cross = (q + 1) % c.len();
            let exact_pref = exact.similarity(&c[q], &c[same]) > exact.similarity(&c[q], &c[cross]);
            let hashed_pref =
                hashed.similarity(&c[q], &c[same]) > hashed.similarity(&c[q], &c[cross]);
            if exact_pref == hashed_pref {
                agree += 1;
            }
        }
        assert!(agree >= total - 2, "ranking agreement {agree}/{total}");
    }
}
