//! Deterministic IVF (inverted-file) approximate nearest-neighbour index.
//!
//! The sub-linear retrieval layer of ROADMAP item 2: a seeded spherical
//! k-means coarse quantizer partitions the catalogue into `nlist`
//! posting lists; a query ranks the centroids, scans only the `nprobe`
//! best lists, and re-scores those candidates *exactly* with the same
//! kernels the brute-force paths use. Recall is tunable through
//! `nprobe`, and `nprobe = nlist` degenerates to the exact scan
//! bit-for-bit (the candidate set becomes the whole catalogue and
//! [`rm_util::TopK`]'s strict total order makes top-k selection
//! insertion-order independent).
//!
//! Determinism guarantees, in the workspace's usual terms:
//!
//! * centroid init draws from [`rng_from_seed`]`(`[`derive_seed`]`(seed,
//!   …))` streams — two builds from the same rows and config are
//!   identical;
//! * k-means runs a *fixed* iteration count over a stride-sampled
//!   training subset (no convergence test, no data-dependent stopping);
//! * posting lists live in a `BTreeMap` and are filled in ascending
//!   item order, so iteration order — and therefore candidate emission
//!   and the persisted artifact bytes — never depends on hash state.
//!
//! Two retrieval modes share the structure:
//!
//! * **Cosine** ([`IvfIndex::build`]) over an [`EmbeddingStore`]'s unit
//!   rows — the content-similar path;
//! * **Max-inner-product** ([`IvfIndex::build_mips`]) over BPR item
//!   factors via the augmented-dimension reduction: each row `x` gains
//!   a coordinate `sqrt(M² − ‖x‖²)` (`M` = max row norm), making every
//!   augmented row the same length, so cosine order among augmented
//!   rows equals inner-product order among the originals. A query `q`
//!   needs *no* augmentation — its extra coordinate would be zero — so
//!   centroids are probed with `dot(q, centroid[..L])` and candidates
//!   are re-scored with the caller's raw `dot(q, x)`, keeping
//!   `nprobe = nlist` bit-identical to the exact BPR scan.

use crate::store::EmbeddingStore;
use rm_sparse::vecops::{axpy, dot, normalize, scale};
use rm_sparse::DenseMatrix;
use rm_util::rng::derive_seed;
use rm_util::topk::TopK;
use std::collections::BTreeMap;

/// Seed-stream label for centroid initialisation.
const SEED_INIT: u64 = 0x6976_665F_696E_6974; // "ivf_init"

/// Build-time configuration for an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of coarse clusters (posting lists). Clamped to the item
    /// count at build time.
    pub nlist: usize,
    /// Fixed k-means iteration count (no convergence test, so builds
    /// are deterministic and their cost is predictable).
    pub iters: usize,
    /// Seed of the centroid-initialisation stream.
    pub seed: u64,
    /// Maximum items the k-means iterations train on; the full
    /// catalogue is still assigned to lists afterwards. `0` trains on
    /// everything. Sampling is a deterministic stride, not a draw.
    pub train_sample: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 64,
            iters: 6,
            seed: 0xA11C_E5ED,
            train_sample: 100_000,
        }
    }
}

impl IvfConfig {
    /// The default tuning for a catalogue of `n_items`: `nlist ≈ √n`
    /// (the classic IVF balance point between probe cost and list
    /// length), everything else as [`IvfConfig::default`].
    #[must_use]
    pub fn for_catalogue(n_items: usize) -> Self {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let nlist = ((n_items as f64).sqrt() as usize).max(1);
        Self {
            nlist,
            ..Self::default()
        }
    }
}

/// Reusable buffers for [`IvfIndex::search_into`]: once grown to steady
/// state, a search allocates nothing.
#[derive(Debug)]
pub struct IvfScratch {
    probes: TopK,
    probe_order: Vec<u32>,
    top: TopK,
}

impl IvfScratch {
    /// Fresh (empty) scratch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            probes: TopK::new(1),
            probe_order: Vec::new(),
            top: TopK::new(1),
        }
    }
}

impl Default for IvfScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Row access shared by the build paths (an embedding store's unit rows
/// or an augmented factor matrix).
trait Rows {
    fn n(&self) -> usize;
    fn dim(&self) -> usize;
    fn row(&self, i: usize) -> &[f32];
}

impl Rows for EmbeddingStore {
    fn n(&self) -> usize {
        self.len()
    }
    fn dim(&self) -> usize {
        EmbeddingStore::dim(self)
    }
    fn row(&self, i: usize) -> &[f32] {
        self.embedding(i)
    }
}

impl Rows for DenseMatrix {
    fn n(&self) -> usize {
        self.rows()
    }
    fn dim(&self) -> usize {
        self.cols()
    }
    fn row(&self, i: usize) -> &[f32] {
        DenseMatrix::row(self, i)
    }
}

/// A built IVF index: unit centroids plus ordered posting lists.
///
/// The index stores *no vectors* — only the partition. Searches
/// re-score candidates through a caller-supplied closure against the
/// original data, which is what makes the `nprobe = nlist`
/// exact-equivalence guarantee possible: the approximate path and the
/// brute-force path run the very same scoring kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    /// `nlist × dim` coarse centroids, unit rows (a centroid that never
    /// owned an item stays zero and owns no posting list).
    centroids: DenseMatrix,
    /// Posting lists: centroid id → item ids in ascending order. Only
    /// non-empty lists are present; together they partition
    /// `0..n_items`.
    lists: BTreeMap<u32, Vec<u32>>,
    /// Number of indexed items.
    n_items: u32,
}

impl IvfIndex {
    /// Builds a cosine IVF index over the store's (unit) embedding rows.
    #[must_use]
    pub fn build(store: &EmbeddingStore, config: &IvfConfig) -> Self {
        Self::build_rows(store, config)
    }

    /// Builds a max-inner-product IVF index over BPR item factors via
    /// the augmented-dimension MIPS→cosine reduction. The returned
    /// index has `dim() == item_factors.cols() + 1`; probe it with the
    /// *unaugmented* user factor (its extra coordinate would be zero)
    /// and re-score candidates with the raw `dot` against the original
    /// factors.
    #[must_use]
    pub fn build_mips(item_factors: &DenseMatrix, config: &IvfConfig) -> Self {
        let n = item_factors.rows();
        let l = item_factors.cols();
        let mut max_sq = 0.0f32;
        for i in 0..n {
            let r = item_factors.row(i);
            max_sq = max_sq.max(dot(r, r));
        }
        let mut aug = DenseMatrix::zeros(n, l + 1);
        for i in 0..n {
            let src = item_factors.row(i);
            let row = aug.row_mut(i);
            row[..l].copy_from_slice(src);
            row[l] = (max_sq - dot(src, src)).max(0.0).sqrt();
            normalize(row);
        }
        Self::build_rows(&aug, config)
    }

    fn build_rows(rows: &impl Rows, config: &IvfConfig) -> Self {
        let n = rows.n();
        let dim = rows.dim();
        if n == 0 {
            return Self {
                centroids: DenseMatrix::zeros(0, dim),
                lists: BTreeMap::new(),
                n_items: 0,
            };
        }
        // Deterministic stride sample for the k-means iterations; the
        // final assignment pass still covers every item.
        let sample: Vec<u32> = if config.train_sample == 0 || n <= config.train_sample {
            (0..n as u32).collect()
        } else {
            let step = n / config.train_sample;
            (0..config.train_sample as u32)
                .map(|i| i * step as u32)
                .collect()
        };
        let nlist = config.nlist.clamp(1, sample.len());

        // Seeded init: nlist distinct sample rows become the starting
        // centroids. Picks come from the SplitMix64 [`derive_seed`]
        // stream (re-draws on collision), so the choice depends only on
        // the seed and the sample size.
        let init_seed = derive_seed(config.seed, SEED_INIT);
        let mut chosen: Vec<u32> = Vec::with_capacity(nlist);
        let mut draw = 0u64;
        while chosen.len() < nlist {
            let pick = sample[(derive_seed(init_seed, draw) % sample.len() as u64) as usize];
            draw += 1;
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        let mut centroids = DenseMatrix::zeros(nlist, dim);
        for (c, &i) in chosen.iter().enumerate() {
            let row = centroids.row_mut(c);
            row.copy_from_slice(rows.row(i as usize));
            normalize(row);
        }

        // Fixed-count spherical k-means on the sample: assign by best
        // dot (rows and centroids are unit, so dot order = cosine
        // order; ties go to the lower centroid id), then recentre and
        // renormalise. A cluster that loses all members keeps its
        // previous centroid.
        let mut sums = vec![0.0f32; nlist * dim];
        let mut counts = vec![0u32; nlist];
        for _ in 0..config.iters {
            sums.fill(0.0);
            counts.fill(0);
            for &i in &sample {
                let r = rows.row(i as usize);
                let c = Self::nearest_centroid(&centroids, r);
                axpy(1.0, r, &mut sums[c * dim..(c + 1) * dim]);
                counts[c] += 1;
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    let row = centroids.row_mut(c);
                    row.copy_from_slice(&sums[c * dim..(c + 1) * dim]);
                    scale(1.0 / counts[c] as f32, row);
                    normalize(row);
                }
            }
        }

        // Full assignment pass, ascending item order — posting lists
        // come out sorted without a post-hoc sort.
        let mut lists: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for i in 0..n {
            let c = Self::nearest_centroid(&centroids, rows.row(i)) as u32;
            lists.entry(c).or_default().push(i as u32);
        }
        Self {
            centroids,
            lists,
            n_items: u32::try_from(n).expect("catalogue fits u32"),
        }
    }

    /// The centroid nearest to `r` by dot product; ties break toward
    /// the lower centroid id.
    fn nearest_centroid(centroids: &DenseMatrix, r: &[f32]) -> usize {
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for c in 0..centroids.rows() {
            let s = dot(centroids.row(c), r);
            if s > best_score {
                best = c;
                best_score = s;
            }
        }
        best
    }

    /// Reassembles an index from persisted parts, validating that the
    /// lists form an exact partition of `0..n_items` (every id once,
    /// in ascending order, under a known centroid). `None` on any
    /// inconsistency — the decoder maps that to a corrupt-artifact
    /// error instead of panicking.
    #[must_use]
    pub fn from_parts(
        centroids: DenseMatrix,
        lists: BTreeMap<u32, Vec<u32>>,
        n_items: u32,
    ) -> Option<Self> {
        let nlist = u32::try_from(centroids.rows()).ok()?;
        let mut total = 0usize;
        let mut seen = vec![false; n_items as usize];
        for (&c, items) in &lists {
            if c >= nlist || items.is_empty() {
                return None;
            }
            let mut prev: Option<u32> = None;
            for &i in items {
                if i >= n_items || prev.is_some_and(|p| p >= i) {
                    return None;
                }
                if std::mem::replace(&mut seen[i as usize], true) {
                    return None;
                }
                prev = Some(i);
            }
            total += items.len();
        }
        (total == n_items as usize).then_some(Self {
            centroids,
            lists,
            n_items,
        })
    }

    /// Number of coarse centroids the index was built with.
    #[must_use]
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Number of *non-empty* posting lists (the effective `nprobe`
    /// ceiling).
    #[must_use]
    pub fn n_lists(&self) -> usize {
        self.lists.len()
    }

    /// Number of indexed items.
    #[must_use]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Centroid dimensionality (embedding dim, or `L + 1` for a MIPS
    /// index).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    /// The centroid matrix (persistence).
    #[must_use]
    pub fn centroids(&self) -> &DenseMatrix {
        &self.centroids
    }

    /// The posting lists (persistence).
    #[must_use]
    pub fn lists(&self) -> &BTreeMap<u32, Vec<u32>> {
        &self.lists
    }

    /// Top-`k` items for `query`, best first, excluding the (sorted,
    /// deduplicated) `exclude` set; candidates come from the `nprobe`
    /// posting lists whose centroids score highest against `query`, and
    /// are ranked exactly by the caller's `score` closure. Allocating
    /// variant of [`IvfIndex::search_into`].
    ///
    /// `query` may be *shorter* than [`IvfIndex::dim`]: a MIPS index is
    /// probed with the unaugmented user factor, scoring centroids on
    /// the first `query.len()` coordinates (the query's missing
    /// augmented coordinate is implicitly zero).
    #[must_use]
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exclude: &[u32],
        score: impl FnMut(u32) -> f32,
    ) -> Vec<u32> {
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        self.search_into(query, k, nprobe, exclude, score, &mut scratch, &mut out);
        out
    }

    /// [`IvfIndex::search`] with caller-owned scratch: `scratch` is
    /// re-armed and `out` cleared and refilled in place, so batch
    /// callers (the serve sources) search every user without per-user
    /// allocation. Contents are identical to the plain variant.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` exceeds [`IvfIndex::dim`].
    // Every argument is a distinct retrieval knob the batch callers set
    // per call; bundling them into a params struct would only move the
    // field list one hop away from the call site.
    #[allow(clippy::too_many_arguments)]
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exclude: &[u32],
        mut score: impl FnMut(u32) -> f32,
        scratch: &mut IvfScratch,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        if k == 0 || self.lists.is_empty() {
            return;
        }
        let qd = query.len();
        assert!(
            qd <= self.dim(),
            "query dim {qd} exceeds index dim {}",
            self.dim()
        );
        // Rank the non-empty lists' centroids; TopK's strict total
        // order makes the probe set deterministic and monotone in
        // nprobe (a larger nprobe probes a superset of lists).
        let nprobe = nprobe.clamp(1, self.lists.len());
        scratch.probes.reset(nprobe);
        for &c in self.lists.keys() {
            scratch
                .probes
                .push(c, dot(query, &self.centroids.row(c as usize)[..qd]));
        }
        scratch.probes.drain_sorted_into(&mut scratch.probe_order);
        scratch.top.reset(k);
        for &c in &scratch.probe_order {
            for &i in &self.lists[&c] {
                if exclude.binary_search(&i).is_ok() {
                    continue;
                }
                scratch.top.push(i, score(i));
            }
        }
        scratch.top.drain_sorted_into(out);
    }
}

/// The persisted ANN artifact: one IVF index per accelerated retrieval
/// path. Either half may be absent (e.g. a registry trained before the
/// corresponding model existed); the serve pipeline falls back to the
/// exact scan for a missing or invalid half.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnArtifact {
    /// Cosine index over the catalogue embeddings (content-similar
    /// candidates).
    pub content: Option<IvfIndex>,
    /// MIPS index over the BPR item factors (CF-neighbour candidates);
    /// `dim() == factors + 1` from the augmentation.
    pub cf: Option<IvfIndex>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, SemanticEncoder};
    use rm_util::topk::top_k_of;

    fn store(n: usize) -> EmbeddingStore {
        let enc = SemanticEncoder::new(EncoderConfig::default());
        let texts: Vec<String> = (0..n)
            .map(|i| match i % 3 {
                0 => format!("giallo mistero detective caso{i}"),
                1 => format!("fantasia drago magia regno{i}"),
                _ => format!("storia guerra memoria secolo{i}"),
            })
            .collect();
        EmbeddingStore::encode_all(&enc, &texts)
    }

    fn config() -> IvfConfig {
        IvfConfig {
            nlist: 8,
            iters: 4,
            seed: 7,
            train_sample: 0,
        }
    }

    /// Exact cosine-scan reference: same scoring closure as the index
    /// search, over every item.
    fn exact_top(s: &EmbeddingStore, query: &[f32], k: usize, exclude: &[u32]) -> Vec<u32> {
        top_k_of(
            (0..s.len() as u32)
                .filter(|i| exclude.binary_search(i).is_err())
                .map(|i| (i, dot(query, s.embedding(i as usize)))),
            k,
        )
        .into_iter()
        .map(|r| r.item)
        .collect()
    }

    #[test]
    fn build_is_deterministic_and_partitions() {
        let s = store(120);
        let a = IvfIndex::build(&s, &config());
        let b = IvfIndex::build(&s, &config());
        assert_eq!(a, b);
        let total: usize = a.lists().values().map(Vec::len).sum();
        assert_eq!(total, s.len());
        assert_eq!(a.n_items(), 120);
        for items in a.lists().values() {
            assert!(items.windows(2).all(|w| w[0] < w[1]), "lists sorted");
        }
        let c = IvfIndex::build(
            &s,
            &IvfConfig {
                seed: 8,
                ..config()
            },
        );
        assert_ne!(a, c, "different seed, different partition");
    }

    #[test]
    fn full_nprobe_is_bit_identical_to_exact_scan() {
        let s = store(120);
        let idx = IvfIndex::build(&s, &config());
        let seen: Vec<u32> = vec![2, 5, 40];
        let query = s.mean_embedding(&seen);
        for k in [1usize, 10, 50] {
            let exact = exact_top(&s, &query, k, &seen);
            let approx = idx.search(&query, k, idx.n_lists(), &seen, |i| {
                dot(&query, s.embedding(i as usize))
            });
            assert_eq!(exact, approx, "k={k}");
        }
    }

    #[test]
    fn partial_nprobe_recall_is_reasonable() {
        let s = store(300);
        let idx = IvfIndex::build(&s, &config());
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..30usize {
            let query = s.embedding(q).to_vec();
            let exclude = [q as u32];
            let exact = exact_top(&s, &query, 10, &exclude);
            let approx = idx.search(&query, 10, 2, &exclude, |i| {
                dot(&query, s.embedding(i as usize))
            });
            hit += exact.iter().filter(|e| approx.contains(e)).count();
            total += exact.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.5, "nprobe=2 recall too low: {recall}");
    }

    #[test]
    fn mips_full_nprobe_matches_exact_inner_product_scan() {
        use rm_util::rng::rng_from_seed;
        let mut rng = rng_from_seed(11);
        let items = DenseMatrix::gaussian(200, 8, 1.0, &mut rng);
        let users = DenseMatrix::gaussian(5, 8, 1.0, &mut rng);
        let idx = IvfIndex::build_mips(&items, &config());
        assert_eq!(idx.dim(), 9, "augmented dimension");
        for u in 0..users.rows() {
            let q = users.row(u);
            let exact: Vec<u32> = top_k_of(
                (0..items.rows() as u32).map(|i| (i, dot(q, items.row(i as usize)))),
                10,
            )
            .into_iter()
            .map(|r| r.item)
            .collect();
            let approx = idx.search(q, 10, idx.n_lists(), &[], |i| dot(q, items.row(i as usize)));
            assert_eq!(exact, approx, "user {u}");
        }
    }

    #[test]
    fn search_into_matches_search_and_reuses_buffers() {
        let s = store(150);
        let idx = IvfIndex::build(&s, &config());
        let query = s.embedding(3).to_vec();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        idx.search_into(
            &query,
            10,
            3,
            &[3],
            |i| dot(&query, s.embedding(i as usize)),
            &mut scratch,
            &mut out,
        );
        let plain = idx.search(&query, 10, 3, &[3], |i| {
            dot(&query, s.embedding(i as usize))
        });
        assert_eq!(out, plain);
        let ptr = out.as_ptr();
        let query2 = s.embedding(4).to_vec();
        idx.search_into(
            &query2,
            10,
            3,
            &[4],
            |i| dot(&query2, s.embedding(i as usize)),
            &mut scratch,
            &mut out,
        );
        assert_eq!(
            out,
            idx.search(&query2, 10, 3, &[4], |i| dot(
                &query2,
                s.embedding(i as usize)
            ))
        );
        assert_eq!(ptr, out.as_ptr(), "output buffer must be reused");
    }

    #[test]
    fn from_parts_validates_partition() {
        let s = store(30);
        let idx = IvfIndex::build(&s, &config());
        let rebuilt =
            IvfIndex::from_parts(idx.centroids().clone(), idx.lists().clone(), idx.n_items())
                .expect("a built index round-trips");
        assert_eq!(rebuilt, idx);
        // Missing item.
        let mut lists = idx.lists().clone();
        lists.values_mut().next().unwrap().pop();
        assert!(IvfIndex::from_parts(idx.centroids().clone(), lists, idx.n_items()).is_none());
        // Duplicate item.
        let mut lists = idx.lists().clone();
        let dup = lists.values().next().unwrap()[0];
        lists.values_mut().last().unwrap().push(dup);
        assert!(IvfIndex::from_parts(idx.centroids().clone(), lists, idx.n_items()).is_none());
        // Out-of-range centroid id.
        let mut lists = idx.lists().clone();
        let items = lists.values().next().unwrap().clone();
        lists.insert(u32::MAX, items);
        assert!(IvfIndex::from_parts(idx.centroids().clone(), lists, idx.n_items()).is_none());
    }

    #[test]
    fn empty_catalogue_builds_and_searches_empty() {
        let enc = SemanticEncoder::new(EncoderConfig::default());
        let s = EmbeddingStore::encode_all(&enc, &Vec::<String>::new());
        let idx = IvfIndex::build(&s, &config());
        assert_eq!(idx.n_items(), 0);
        let query = vec![0.0f32; s.dim()];
        assert!(idx.search(&query, 5, 4, &[], |_| 0.0).is_empty());
    }

    proptest::proptest! {
        // Satellite: recall@10 is monotonically non-decreasing in
        // nprobe. Probe sets are nested (TopK over centroids), so the
        // candidate set grows with nprobe and every exact-top-10 member
        // present in a candidate set survives its top-10.
        #[test]
        fn recall_at_10_monotone_in_nprobe(seed in 0u64..40, q in 0usize..50) {
            use rm_util::rng::rng_from_seed;
            let mut rng = rng_from_seed(seed);
            let m = DenseMatrix::gaussian(120, 12, 1.0, &mut rng);
            let s = EmbeddingStore::from_matrix(m);
            let idx = IvfIndex::build(&s, &IvfConfig {
                nlist: 10,
                iters: 3,
                seed,
                train_sample: 0,
            });
            let query = s.embedding(q % s.len()).to_vec();
            let exact = exact_top(&s, &query, 10, &[]);
            let mut prev = -1.0f64;
            for nprobe in 1..=idx.n_lists() {
                let approx = idx.search(&query, 10, nprobe, &[], |i| {
                    dot(&query, s.embedding(i as usize))
                });
                let hits = exact.iter().filter(|e| approx.contains(e)).count();
                let recall = hits as f64 / exact.len() as f64;
                proptest::prop_assert!(
                    recall >= prev,
                    "recall dropped from {prev} to {recall} at nprobe {nprobe}"
                );
                prev = recall;
            }
            proptest::prop_assert!((prev - 1.0).abs() < f64::EPSILON, "full probe must reach recall 1");
        }

        // Satellite: the MIPS augmentation preserves the exact-scan
        // argmax (indeed the whole top-k) on random factor matrices.
        #[test]
        fn mips_argmax_preserved(seed in 0u64..60) {
            use rm_util::rng::rng_from_seed;
            let mut rng = rng_from_seed(seed);
            let items = DenseMatrix::gaussian(80, 6, 1.0, &mut rng);
            let user = (0..6).map(|_| rm_util::sample::standard_normal(&mut rng) as f32).collect::<Vec<_>>();
            let idx = IvfIndex::build_mips(&items, &IvfConfig {
                nlist: 6,
                iters: 3,
                seed,
                train_sample: 0,
            });
            let exact_argmax = top_k_of(
                (0..items.rows() as u32).map(|i| (i, dot(&user, items.row(i as usize)))),
                1,
            )[0].item;
            let approx = idx.search(&user, 1, idx.n_lists(), &[], |i| {
                dot(&user, items.row(i as usize))
            });
            proptest::prop_assert_eq!(approx, vec![exact_argmax]);
        }
    }
}
