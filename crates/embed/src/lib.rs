//! Deterministic text-embedding substrate — the workspace's substitute for
//! the pre-trained multilingual SBERT model the paper uses.
//!
//! The Closest Items recommender (Section 4) needs one capability from its
//! encoder: metadata summaries that share vocabulary (authors, genres,
//! keywords, plot terms) must land close in cosine space, and unrelated
//! summaries must not. This crate provides that with a fully deterministic,
//! training-free pipeline:
//!
//! 1. [`tokenize`] — Unicode-aware lowercasing, accent folding (the corpus
//!    is Italian), word tokens plus boundary-marked character n-grams for
//!    robustness to inflection;
//! 2. [`idf`] — smooth inverse-document-frequency weighting fitted on the
//!    book catalogue, so ubiquitous terms ("il", "la", author particles)
//!    stop dominating similarity;
//! 3. [`encoder`] — a feature-hashed signed random projection of the TF-IDF
//!    bag into a fixed-dimension unit vector (Johnson–Lindenstrauss style:
//!    cosine in the projected space approximates cosine between the sparse
//!    TF-IDF vectors);
//! 4. [`store`] — an embedding store with batch similarity and exact
//!    brute-force k-NN over the catalogue;
//! 5. [`ann`] — a random-hyperplane LSH index for approximate k-NN at
//!    full-library-catalogue scale;
//! 6. [`ivf`] — the deterministic IVF index behind the serve pipeline's
//!    sub-linear candidate sources: seeded k-means coarse quantizer,
//!    cosine retrieval over embeddings and MIPS retrieval over BPR item
//!    factors via the augmented-dimension reduction;
//! 7. [`exact`] — a vocabulary-backed exact TF-IDF encoder, the reference
//!    against which the hashed projection's cosine distortion is measured
//!    (tests assert the DESIGN.md distortion claim).
//!
//! The substitution is documented in `DESIGN.md` §2: the paper's Fig. 5
//! ablation draws its signal from token overlap between metadata fields,
//! which this encoder preserves; deep paraphrase understanding is not
//! exercised by any experiment.

pub mod ann;
pub mod encoder;
pub mod exact;
pub mod idf;
pub mod ivf;
pub mod store;
pub mod tokenize;

pub use encoder::{EncoderConfig, EncoderScratch, SemanticEncoder};
pub use ivf::{AnnArtifact, IvfConfig, IvfIndex, IvfScratch};
pub use store::EmbeddingStore;
