//! Row-major dense `f32` matrices for latent factors.
//!
//! BPR stores `V ∈ R^(U×L)` and the transposed item factors `Pᵀ ∈ R^(B×L)` as
//! `DenseMatrix`; SGD updates touch one row of each per step, so rows are the
//! unit of access. L is small (5–64), so rows fit comfortably in cache lines
//! and the lane-unrolled kernels in [`crate::vecops`] are the right tool;
//! multi-query catalogue scans additionally block queries four at a time
//! ([`DenseMatrix::matvec_block_into`]) so each row load from memory feeds
//! four accumulator sets.

use rand::Rng;
use rand::RngExt;

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds each entry from `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Gaussian init `N(0, scale²)` — the zero-mean normal prior the BPR
    /// formulation places on the factors (Section 4, Eq. 3).
    #[must_use]
    pub fn gaussian<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| {
            rm_util::sample::standard_normal(rng) as f32 * scale
        })
    }

    /// Uniform init in `[-scale, scale]`.
    #[must_use]
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| (rng.random::<f32>() * 2.0 - 1.0) * scale)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Two distinct rows, one mutable each — the shape of a BPR SGD step
    /// (update user row and item row together).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "two_rows_mut requires distinct rows");
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..(a + 1) * cols], &mut hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            let (bslice, aslice) = (&mut lo[b * cols..(b + 1) * cols], &mut hi[..cols]);
            (aslice, bslice)
        }
    }

    /// The raw backing buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Frobenius norm squared — the `‖V‖²` regularisation term.
    #[must_use]
    pub fn frob_norm_sq(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum()
    }

    /// Matrix–vector product `self · x` (len(x) == cols).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(x, &mut out);
        out
    }

    /// [`DenseMatrix::matvec`] writing into `out` (cleared and refilled),
    /// so batch callers can reuse one allocation across calls.
    ///
    /// One lane-unrolled [`crate::vecops::dot`] per row: with a single
    /// query there is nothing to share across rows, and a one-query kernel
    /// keeps all eight accumulators in registers (blocking rows through a
    /// wider `dot_block` spills and measures slower). Row results are
    /// bit-identical to [`DenseMatrix::matvec_block_into`]'s because the
    /// kernel's reduction order depends only on the row length.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        out.clear();
        out.reserve(self.rows);
        for r in 0..self.rows {
            out.push(crate::vecops::dot(self.row(r), x));
        }
    }

    /// `N` matrix–vector products in one pass over the matrix: the shared
    /// register-blocked matvec every batch scorer (rm-core recommenders and
    /// the rm-serve engine) funnels through.
    ///
    /// Queries are processed in register blocks of four: each row is loaded
    /// from memory once and multiplied into four independent
    /// [`crate::vecops::dot_block`] accumulator sets (the remainder runs
    /// through the same kernel at narrower widths). Every query's scores
    /// are bit-identical to [`DenseMatrix::matvec_into`] of that query
    /// alone — the kernel's reduction order is width-independent — so
    /// batch answers equal single-query answers exactly.
    ///
    /// `outs` entries are cleared and refilled; callers reuse them across
    /// batches.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != outs.len()` or any query's length differs
    /// from `self.cols()`.
    pub fn matvec_block_into(&self, xs: &[&[f32]], outs: &mut [Vec<f32>]) {
        assert_eq!(xs.len(), outs.len(), "query/output count mismatch");
        for x in xs {
            assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        }
        for o in outs.iter_mut() {
            o.clear();
            o.reserve(self.rows);
        }
        let mut q = 0;
        while q + 4 <= xs.len() {
            let quad = [xs[q], xs[q + 1], xs[q + 2], xs[q + 3]];
            for r in 0..self.rows {
                let s = crate::vecops::dot_block(self.row(r), quad);
                for (o, &v) in outs[q..q + 4].iter_mut().zip(&s) {
                    o.push(v);
                }
            }
            q += 4;
        }
        for qi in q..xs.len() {
            self.matvec_into(xs[qi], &mut outs[qi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    #[test]
    fn zeros_and_from_fn() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.as_slice(), &[0.0; 6]);
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = DenseMatrix::from_fn(3, 2, |r, _| r as f32);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            assert_eq!(a, &[0.0, 0.0]);
            assert_eq!(b, &[2.0, 2.0]);
            a[0] = -1.0;
            b[1] = -2.0;
        }
        {
            let (a, b) = m.two_rows_mut(2, 0);
            assert_eq!(a[1], -2.0);
            assert_eq!(b[0], -1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn two_rows_mut_same_row_panics() {
        let mut m = DenseMatrix::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn gaussian_statistics() {
        let mut rng = rng_from_seed(11);
        let m = DenseMatrix::gaussian(100, 100, 0.1, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 10_000.0;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = rng_from_seed(12);
        let m = DenseMatrix::uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
        assert!(m.as_slice().iter().any(|&v| v < 0.0));
        assert!(m.as_slice().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn frob_norm() {
        let m = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 2.0]);
        assert!((m.frob_norm_sq() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_basic() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_block_bitwise_matches_single_queries() {
        // Every query width 1..=9 (full quads plus each remainder shape)
        // must be bit-identical to the one-query path: this is the
        // contract batched recommendation relies on.
        let mut rng = rng_from_seed(5);
        let m = DenseMatrix::gaussian(97, 20, 1.0, &mut rng);
        let qs = DenseMatrix::gaussian(9, 20, 1.0, &mut rng);
        for n in 1..=qs.rows() {
            let xs: Vec<&[f32]> = (0..n).map(|i| qs.row(i)).collect();
            let mut outs = vec![Vec::new(); n];
            m.matvec_block_into(&xs, &mut outs);
            for (i, out) in outs.iter().enumerate() {
                assert_eq!(out, &m.matvec(qs.row(i)), "width {n} query {i}");
            }
        }
    }

    #[test]
    fn matvec_into_reuses_buffers() {
        let mut rng = rng_from_seed(6);
        let m = DenseMatrix::gaussian(33, 8, 1.0, &mut rng);
        let q = DenseMatrix::gaussian(1, 8, 1.0, &mut rng);
        let mut out = Vec::new();
        m.matvec_into(q.row(0), &mut out);
        let ptr = out.as_ptr();
        m.matvec_into(q.row(0), &mut out);
        assert_eq!(ptr, out.as_ptr(), "matvec_into must not reallocate");
    }

    #[test]
    #[should_panic(expected = "query/output count mismatch")]
    fn matvec_block_rejects_shape_mismatch() {
        let m = DenseMatrix::zeros(2, 2);
        let q = [0.0f32, 0.0];
        let mut outs = vec![Vec::new(); 2];
        m.matvec_block_into(&[&q], &mut outs);
    }
}
