//! Row-major dense `f32` matrices for latent factors.
//!
//! BPR stores `V ∈ R^(U×L)` and the transposed item factors `Pᵀ ∈ R^(B×L)` as
//! `DenseMatrix`; SGD updates touch one row of each per step, so rows are the
//! unit of access. L is small (5–64), so rows fit comfortably in cache lines
//! and plain autovectorised loops in [`crate::vecops`] are the right kernel.

use rand::Rng;
use rand::RngExt;

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds each entry from `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Gaussian init `N(0, scale²)` — the zero-mean normal prior the BPR
    /// formulation places on the factors (Section 4, Eq. 3).
    #[must_use]
    pub fn gaussian<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| {
            rm_util::sample::standard_normal(rng) as f32 * scale
        })
    }

    /// Uniform init in `[-scale, scale]`.
    #[must_use]
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| (rng.random::<f32>() * 2.0 - 1.0) * scale)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Two distinct rows, one mutable each — the shape of a BPR SGD step
    /// (update user row and item row together).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "two_rows_mut requires distinct rows");
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..(a + 1) * cols], &mut hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            let (bslice, aslice) = (&mut lo[b * cols..(b + 1) * cols], &mut hi[..cols]);
            (aslice, bslice)
        }
    }

    /// The raw backing buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Frobenius norm squared — the `‖V‖²` regularisation term.
    #[must_use]
    pub fn frob_norm_sq(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum()
    }

    /// Matrix–vector product `self · x` (len(x) == cols).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(x, &mut out);
        out
    }

    /// [`DenseMatrix::matvec`] writing into `out` (cleared and refilled),
    /// so batch callers can reuse one allocation across calls.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        out.clear();
        out.extend((0..self.rows).map(|r| crate::vecops::dot(self.row(r), x)));
    }

    /// Four matrix–vector products in one pass over the matrix.
    ///
    /// Batched recommendation scores many users against the same item
    /// factors; fusing four queries shares every row load and runs four
    /// independent accumulator chains, which is markedly faster than four
    /// [`DenseMatrix::matvec_into`] calls even on a single core. Each
    /// query accumulates in the same order as [`crate::vecops::dot`], so
    /// results are bit-identical to the one-query path.
    ///
    /// # Panics
    ///
    /// Panics if any query's length differs from `self.cols()`.
    pub fn matvec4_into(&self, xs: [&[f32]; 4], outs: [&mut Vec<f32>; 4]) {
        for x in xs {
            assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        }
        let [o0, o1, o2, o3] = outs;
        for o in [&mut *o0, &mut *o1, &mut *o2, &mut *o3] {
            o.clear();
            o.reserve(self.rows);
        }
        let [x0, x1, x2, x3] = xs;
        for r in 0..self.rows {
            let row = self.row(r);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (j, &v) in row.iter().enumerate() {
                s0 += v * x0[j];
                s1 += v * x1[j];
                s2 += v * x2[j];
                s3 += v * x3[j];
            }
            o0.push(s0);
            o1.push(s1);
            o2.push(s2);
            o3.push(s3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::rng::rng_from_seed;

    #[test]
    fn zeros_and_from_fn() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.as_slice(), &[0.0; 6]);
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = DenseMatrix::from_fn(3, 2, |r, _| r as f32);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            assert_eq!(a, &[0.0, 0.0]);
            assert_eq!(b, &[2.0, 2.0]);
            a[0] = -1.0;
            b[1] = -2.0;
        }
        {
            let (a, b) = m.two_rows_mut(2, 0);
            assert_eq!(a[1], -2.0);
            assert_eq!(b[0], -1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn two_rows_mut_same_row_panics() {
        let mut m = DenseMatrix::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn gaussian_statistics() {
        let mut rng = rng_from_seed(11);
        let m = DenseMatrix::gaussian(100, 100, 0.1, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 10_000.0;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = rng_from_seed(12);
        let m = DenseMatrix::uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
        assert!(m.as_slice().iter().any(|&v| v < 0.0));
        assert!(m.as_slice().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn frob_norm() {
        let m = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 2.0]);
        assert!((m.frob_norm_sq() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_basic() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec4_bitwise_matches_single_queries() {
        let mut rng = rng_from_seed(5);
        let m = DenseMatrix::gaussian(97, 20, 1.0, &mut rng);
        let qs = DenseMatrix::gaussian(4, 20, 1.0, &mut rng);
        let mut outs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let [o0, o1, o2, o3] = &mut outs;
        m.matvec4_into(
            [qs.row(0), qs.row(1), qs.row(2), qs.row(3)],
            [o0, o1, o2, o3],
        );
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out, &m.matvec(qs.row(i)), "query {i}");
        }
    }
}
