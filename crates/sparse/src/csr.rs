//! Compressed sparse row matrices over `u32` column indices.
//!
//! The recommenders only need the *pattern* of the user–item matrix (implicit
//! feedback is binary), plus per-entry weights in a couple of places
//! (most-read counts). `CsrMatrix` therefore stores an optional value array:
//! pattern-only matrices skip it entirely, halving memory and avoiding a
//! useless `1.0` broadcast.

use std::collections::HashMap;

/// CSR matrix with `u32` columns and optional `f32` values.
///
/// Invariants (checked on construction, relied on everywhere):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing (sorted,
///   deduplicated) and `< cols`;
/// * `values` is either empty (pattern matrix) or `values.len() == nnz`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a **pattern** matrix from (row, col) pairs.
    ///
    /// Pairs may be unsorted and contain duplicates; duplicates collapse to a
    /// single entry (the matrix is binary).
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of bounds.
    #[must_use]
    pub fn from_pairs(rows: usize, cols: usize, pairs: &[(u32, u32)]) -> Self {
        let triplets: Vec<(u32, u32, f32)> = pairs.iter().map(|&(r, c)| (r, c, 1.0)).collect();
        let mut m = Self::from_triplets(rows, cols, &triplets, |_, _| 1.0);
        m.values.clear();
        m.values.shrink_to_fit();
        m
    }

    /// Builds a valued matrix from (row, col, value) triplets, folding
    /// duplicates with `combine(existing, new)`.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    #[must_use]
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(u32, u32, f32)],
        combine: impl Fn(f32, f32) -> f32,
    ) -> Self {
        // Two-pass counting sort by row, then per-row sort + dedup by column.
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!((r as usize) < rows, "row {r} out of bounds ({rows} rows)");
            assert!((c as usize) < cols, "col {c} out of bounds ({cols} cols)");
            counts[r as usize + 1] += 1;
        }
        for i in 1..=rows {
            counts[i] += counts[i - 1];
        }
        let mut by_row: Vec<(u32, f32)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let slot = cursor[r as usize];
            by_row[slot] = (c, v);
            cursor[r as usize] += 1;
        }

        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        for r in 0..rows {
            let seg = &mut by_row[counts[r]..counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let (c, mut v) = seg[i];
                let mut j = i + 1;
                while j < seg.len() && seg[j].0 == c {
                    v = combine(v, seg[j].1);
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }

        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds directly from validated CSR arrays (pattern form when `values`
    /// is empty).
    ///
    /// # Panics
    ///
    /// Panics if the arrays violate the CSR invariants.
    #[must_use]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr must end at nnz"
        );
        assert!(
            values.is_empty() || values.len() == indices.len(),
            "values must be empty or match nnz"
        );
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be non-decreasing");
            let row = &indices[w[0]..w[1]];
            for p in row.windows(2) {
                assert!(p[0] < p[1], "row columns must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column out of bounds");
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when the matrix stores no values (binary pattern matrix).
    #[must_use]
    pub fn is_pattern(&self) -> bool {
        self.values.is_empty() && !self.indices.is_empty() || self.values.is_empty()
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`; `None` on a pattern matrix.
    #[inline]
    #[must_use]
    pub fn row_values(&self, r: usize) -> Option<&[f32]> {
        if self.values.is_empty() {
            None
        } else {
            Some(&self.values[self.indptr[r]..self.indptr[r + 1]])
        }
    }

    /// Number of entries in row `r`.
    #[inline]
    #[must_use]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Membership test via binary search within the row.
    #[inline]
    #[must_use]
    pub fn contains(&self, r: usize, c: u32) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }

    /// Value at (r, c): the stored value, `1.0` for a present pattern entry,
    /// `0.0` when absent.
    #[must_use]
    pub fn get(&self, r: usize, c: u32) -> f32 {
        match self.row(r).binary_search(&c) {
            Ok(i) => {
                if self.values.is_empty() {
                    1.0
                } else {
                    self.values[self.indptr[r] + i]
                }
            }
            Err(_) => 0.0,
        }
    }

    /// Per-column entry counts (e.g. readings per book from a user×book
    /// pattern matrix).
    #[must_use]
    pub fn col_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.cols];
        for &c in &self.indices {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Per-row entry counts.
    #[must_use]
    pub fn row_counts(&self) -> Vec<u64> {
        (0..self.rows).map(|r| self.row_nnz(r) as u64).collect()
    }

    /// Transposed copy (values carried over when present).
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = if self.values.is_empty() {
            Vec::new()
        } else {
            vec![0.0f32; self.nnz()]
        };
        let mut cursor = counts;
        for r in 0..self.rows {
            for i in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[i] as usize;
                let slot = cursor[c];
                indices[slot] = r as u32;
                if !self.values.is_empty() {
                    values[slot] = self.values[i];
                }
                cursor[c] += 1;
            }
        }
        // Rows come out sorted because we sweep source rows in order.
        Self {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Restricts the matrix to a subset of rows, renumbering them densely in
    /// the order given. Columns are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if any requested row is out of bounds.
    #[must_use]
    pub fn select_rows(&self, keep: &[u32]) -> Self {
        let mut indptr = Vec::with_capacity(keep.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &r in keep {
            let r = r as usize;
            assert!(r < self.rows, "row {r} out of bounds");
            indices.extend_from_slice(self.row(r));
            if let Some(v) = self.row_values(r) {
                values.extend_from_slice(v);
            }
            indptr.push(indices.len());
        }
        Self {
            rows: keep.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Dense map from (row, col) to value — test/debug helper, O(nnz).
    #[must_use]
    pub fn to_map(&self) -> HashMap<(u32, u32), f32> {
        let mut out = HashMap::with_capacity(self.nnz());
        for r in 0..self.rows {
            let vals = self.row_values(r);
            for (i, &c) in self.row(r).iter().enumerate() {
                let v = vals.map_or(1.0, |vs| vs[i]);
                out.insert((r as u32, c), v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let m = CsrMatrix::from_pairs(3, 5, &[(2, 4), (0, 3), (0, 1), (0, 3), (2, 0)]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), &[1, 3]);
        assert_eq!(m.row(1), &[] as &[u32]);
        assert_eq!(m.row(2), &[0, 4]);
    }

    #[test]
    fn pattern_get_and_contains() {
        let m = CsrMatrix::from_pairs(2, 4, &[(0, 2), (1, 0)]);
        assert!(m.contains(0, 2));
        assert!(!m.contains(0, 0));
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(0, 3), 0.0);
        assert!(m.row_values(0).is_none());
    }

    #[test]
    fn triplets_combine_duplicates() {
        let m =
            CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (0, 1, 3.0), (1, 2, 1.0)], |a, b| a + b);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn col_and_row_counts() {
        let m = CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 0), (2, 0), (2, 1)]);
        assert_eq!(m.col_counts(), vec![3, 1, 0]);
        assert_eq!(m.row_counts(), vec![1, 1, 2]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(3, 4, &[(0, 1, 1.5), (2, 3, -2.0), (1, 0, 4.0)], |a, _| a);
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(1, 0), 1.5);
        assert_eq!(t.get(3, 2), -2.0);
        assert_eq!(t.transpose().to_map(), m.to_map());
    }

    #[test]
    fn select_rows_renumbers() {
        let m = CsrMatrix::from_pairs(4, 3, &[(0, 0), (1, 1), (2, 2), (3, 0)]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[0]);
        assert_eq!(s.row(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pair_panics() {
        let _ = CsrMatrix::from_pairs(2, 2, &[(0, 2)]);
    }

    #[test]
    fn from_parts_validates() {
        let m = CsrMatrix::from_parts(2, 3, vec![0, 1, 3], vec![2, 0, 1], vec![]);
        assert_eq!(m.row(1), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_unsorted_row() {
        let _ = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![]);
    }

    #[test]
    fn empty_matrix_ok() {
        let m = CsrMatrix::from_pairs(0, 0, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_counts(), Vec::<u64>::new());
    }

    proptest! {
        #[test]
        fn pairs_roundtrip_membership(
            pairs in proptest::collection::vec((0u32..20, 0u32..30), 0..200)
        ) {
            let m = CsrMatrix::from_pairs(20, 30, &pairs);
            let set: std::collections::HashSet<(u32, u32)> = pairs.iter().copied().collect();
            prop_assert_eq!(m.nnz(), set.len());
            for &(r, c) in &set {
                prop_assert!(m.contains(r as usize, c));
            }
            // Rows sorted strictly ascending.
            for r in 0..20 {
                for w in m.row(r).windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }

        #[test]
        fn transpose_is_involution(
            pairs in proptest::collection::vec((0u32..15, 0u32..15), 0..150)
        ) {
            let m = CsrMatrix::from_pairs(15, 15, &pairs);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn counts_sum_to_nnz(
            pairs in proptest::collection::vec((0u32..10, 0u32..10), 0..100)
        ) {
            let m = CsrMatrix::from_pairs(10, 10, &pairs);
            prop_assert_eq!(m.col_counts().iter().sum::<u64>() as usize, m.nnz());
            prop_assert_eq!(m.row_counts().iter().sum::<u64>() as usize, m.nnz());
        }
    }
}
