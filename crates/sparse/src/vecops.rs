//! Vector kernels shared by the factorisation and embedding code.
//!
//! All reductions here are *lane-unrolled*: instead of one serial f32
//! accumulator (whose loop-carried add latency LLVM may not reassociate,
//! leaving the CPU idle most of every cycle), each kernel keeps [`LANES`]
//! independent partial sums that the backend can vectorise and pipeline.
//! On the single-core container this repo targets, that turns the dot
//! product from FP-latency-bound into FP-throughput-bound.
//!
//! # Reduction-order contract
//!
//! f32 addition is not associative, so the summation order is part of the
//! kernel's observable behaviour. Every reduction in this module follows
//! one fixed, documented order (see [`dot_block`]):
//!
//! 1. elements are consumed in blocks of [`LANES`] = 8; element `i` of each
//!    block accumulates into lane `i % 8`;
//! 2. the eight lane sums are folded by successive halving — lane `i`
//!    combines with lane `i + 4`, the four partials fold `i` with `i + 2`,
//!    the last pair adds left-to-right:
//!    `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))`.
//!    This is the tree a 4-wide SIMD horizontal reduction produces, so the
//!    backend lowers it without any cross-lane shuffles in the hot loop;
//! 3. the scalar tail (`len % 8` trailing elements) is added serially, in
//!    index order, onto the tree result.
//!
//! The order depends only on the slice length — never on how many vectors
//! share a kernel call — so [`dot`], the single-query rows-blocked
//! [`crate::DenseMatrix::matvec_into`], and the multi-query
//! [`crate::DenseMatrix::matvec_block_into`] all produce *bit-identical*
//! scores for the same (row, query) pair. Results are deterministic across
//! runs and platforms, but differ from the old single-accumulator chain in
//! the last ulps; [`dot_ref`] preserves that chain as the reference the
//! equivalence proptests compare against (relative 1e-5).

/// Number of independent accumulator lanes per reduction.
pub const LANES: usize = 8;

/// Scalar reference dot product — the pre-unrolling single-accumulator
/// chain, kept for equivalence testing and benchmark baselines. Do not use
/// on hot paths.
///
/// # Panics
///
/// Panics (debug) if lengths differ; in release the shorter length governs.
#[inline]
#[must_use]
pub fn dot_ref(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `N` dot products sharing one pass over `a`: `out[q] = a · bs[q]`.
///
/// This is the one reduction kernel everything else is written in terms
/// of. Each query keeps [`LANES`] independent accumulators; the reduction
/// order (see the module docs) depends only on `a.len()`, so the result
/// for query `q` is bit-identical to `dot(a, bs[q])` regardless of `N` —
/// which is what lets blocked matvecs answer exactly like single queries.
///
/// Sharing the pass matters for matvec-shaped workloads: the row load from
/// memory is paid once and amortised over `N` accumulator chains. `N` = 4
/// with 8 lanes fills the SSE2 register file without spilling.
///
/// # Panics
///
/// Panics if any `bs[q]` is shorter than `a` (debug asserts exact
/// equality).
#[inline]
#[must_use]
pub fn dot_block<const N: usize>(a: &[f32], bs: [&[f32]; N]) -> [f32; N] {
    let n = a.len();
    // Re-slice to the shared length so the optimiser can drop per-element
    // bounds checks in the inner loop.
    let bs: [&[f32]; N] = std::array::from_fn(|q| {
        debug_assert_eq!(a.len(), bs[q].len());
        &bs[q][..n]
    });
    let mut lanes = [[0.0f32; LANES]; N];
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let av = &a[base..base + LANES];
        for q in 0..N {
            let bv = &bs[q][base..base + LANES];
            for l in 0..LANES {
                lanes[q][l] += av[l] * bv[l];
            }
        }
    }
    let mut out = [0.0f32; N];
    let tail = blocks * LANES;
    for q in 0..N {
        let l = lanes[q];
        // Fixed halving tree, then the serial tail — the documented order.
        let h4 = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        let h2 = [h4[0] + h4[2], h4[1] + h4[3]];
        let mut s = h2[0] + h2[1];
        for i in tail..n {
            s += a[i] * bs[q][i];
        }
        out[q] = s;
    }
    out
}

/// Dot product (lane-unrolled; see the module's reduction-order contract).
///
/// # Panics
///
/// Panics if `b` is shorter than `a` (debug asserts exact equality).
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let [s] = dot_block(a, [b]);
    s
}

/// `y += alpha * x`, unrolled in [`LANES`]-wide blocks.
///
/// Element-wise (no reduction), so results are bit-identical to the naive
/// loop; the unroll only widens the store pipeline.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let xv = &x[base..base + LANES];
        let yv = &mut y[base..base + LANES];
        for l in 0..LANES {
            yv[l] += alpha * xv[l];
        }
    }
    for i in blocks * LANES..n {
        y[i] += alpha * x[i];
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm (lane-unrolled via [`dot`]).
#[inline]
#[must_use]
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalises `x` to unit L2 norm in place; a zero vector is left unchanged
/// and `false` is returned.
#[inline]
pub fn normalize(x: &mut [f32]) -> bool {
    let n = norm2(x);
    if n > 0.0 && n.is_finite() {
        scale(1.0 / n, x);
        true
    } else {
        false
    }
}

/// Cosine similarity; `0.0` when either vector is zero.
///
/// Fused: one pass accumulates `a·b`, `a·a`, and `b·b` together, each with
/// its own [`LANES`] accumulators in the contract's reduction order.
#[inline]
#[must_use]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ab = [0.0f32; LANES];
    let mut aa = [0.0f32; LANES];
    let mut bb = [0.0f32; LANES];
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let av = &a[base..base + LANES];
        let bv = &b[base..base + LANES];
        for l in 0..LANES {
            ab[l] += av[l] * bv[l];
            aa[l] += av[l] * av[l];
            bb[l] += bv[l] * bv[l];
        }
    }
    let tree = |l: [f32; LANES]| {
        let h4 = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        (h4[0] + h4[2]) + (h4[1] + h4[3])
    };
    let (mut sab, mut saa, mut sbb) = (tree(ab), tree(aa), tree(bb));
    for i in blocks * LANES..n {
        sab += a[i] * b[i];
        saa += a[i] * a[i];
        sbb += b[i] * b[i];
    }
    let (na, nb) = (saa.sqrt(), sbb.sqrt());
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        sab / (na * nb)
    }
}

// --- quantized kernels -----------------------------------------------------
//
// The i8/f16 kernels below score rows of the quantized artifacts
// (`rm_core::quant`) without dequantizing them into scratch buffers. They
// take raw byte slices — the zero-copy section views of a loaded
// `quant.rmodel` — and interpret them in place:
//
// * i8 rows are two's-complement bytes; products accumulate in eight
//   independent **i32 lanes**. Integer addition is associative, so unlike
//   the f32 kernels the i8 reduction is *exact*: blocked, lane-unrolled,
//   and serial evaluations are all bit-identical by arithmetic, not by
//   contract. The lane tree below still mirrors [`dot_block`]'s halving
//   order so the code shape (and the autovectorizer's lowering) match the
//   float kernels.
// * f16 rows are little-endian IEEE 754 binary16 pairs, widened to f32 per
//   element; the f32 accumulation follows the module's reduction-order
//   contract exactly (LANES-wide blocks, fixed halving tree, serial tail),
//   so results depend only on the row length.
//
// Overflow bound: |i8·i8| ≤ 127² = 16129, so an i32 lane stays exact for
// up to 2¹⁶ elements per row (debug-asserted) — far above any factor or
// embedding dimension in this workspace.

/// Maximum i8 row length the i32 accumulators are guaranteed exact for.
pub const MAX_I8_DOT_LEN: usize = 1 << 16;

/// Scalar reference i8 dot product: serial i32 accumulation over
/// two's-complement bytes. Equals [`dot_i8`] exactly (integer addition is
/// associative); kept as the obviously-correct baseline the equivalence
/// proptests compare against.
///
/// # Panics
///
/// Panics (debug) if lengths differ or exceed [`MAX_I8_DOT_LEN`]; in
/// release the shorter length governs.
#[inline]
#[must_use]
pub fn dot_i8_ref(a: &[u8], b: &[u8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= MAX_I8_DOT_LEN);
    let n = a.len().min(b.len());
    let mut s = 0i32;
    for i in 0..n {
        s += i32::from(a[i] as i8) * i32::from(b[i] as i8);
    }
    s
}

/// Fused i8 dot product over raw quantized rows (two's-complement bytes),
/// eight i32 accumulator lanes folded by the documented halving tree.
/// Bit-identical to [`dot_i8_ref`] for every input — integer addition
/// makes the lane split exact, the unroll only buys throughput.
///
/// # Panics
///
/// Panics (debug) if lengths differ or exceed [`MAX_I8_DOT_LEN`]; in
/// release the shorter length governs.
#[inline]
#[must_use]
pub fn dot_i8(a: &[u8], b: &[u8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= MAX_I8_DOT_LEN);
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0i32; LANES];
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let av = &a[base..base + LANES];
        let bv = &b[base..base + LANES];
        for l in 0..LANES {
            lanes[l] += i32::from(av[l] as i8) * i32::from(bv[l] as i8);
        }
    }
    let h4 = [
        lanes[0] + lanes[4],
        lanes[1] + lanes[5],
        lanes[2] + lanes[6],
        lanes[3] + lanes[7],
    ];
    let mut s = (h4[0] + h4[2]) + (h4[1] + h4[3]);
    for i in blocks * LANES..n {
        s += i32::from(a[i] as i8) * i32::from(b[i] as i8);
    }
    s
}

/// Scaled i8 dot: the fused integer kernel widened **once** at the end,
/// `f32(Σ aᵢ·bᵢ) · (sa · sb)`. The integer sum stays below 2²⁵ for rows
/// within [`MAX_I8_DOT_LEN`] ÷ 2, so the single widening is exact and the
/// whole product is deterministic to the bit regardless of blocking.
#[inline]
#[must_use]
pub fn dot_i8_scaled(a: &[u8], sa: f32, b: &[u8], sb: f32) -> f32 {
    (dot_i8(a, b) as f32) * (sa * sb)
}

/// Converts an IEEE 754 binary16 bit pattern to f32 (exact — every f16
/// value, including subnormals and infinities, is representable in f32).
#[inline]
#[must_use]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = u32::from(h & 0x03ff);
    let bits = match exp {
        0 => {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = man · 2⁻²⁴; renormalise around the
                // top set bit k so the f32 mantissa carries man/2ᵏ ∈ [1,2).
                let k = 31 - man.leading_zeros();
                sign | ((k + 103) << 23) | ((man << (23 - k)) & 0x007f_ffff)
            }
        }
        31 => sign | 0x7f80_0000 | (man << 13), // inf / NaN (payload kept)
        e => sign | ((u32::from(e) + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

/// Converts an f32 to the nearest IEEE 754 binary16 bit pattern
/// (round-to-nearest-even; overflow saturates to ±inf, NaN stays NaN).
#[inline]
#[must_use]
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 255 {
        // Inf / NaN: a quiet bit keeps NaN payloads from collapsing to inf.
        return sign | 0x7c00 | (u16::from(man != 0) << 9);
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal half: keep 10 mantissa bits, round on the dropped 13.
        let half_exp = ((unbiased + 15) as u32) << 10;
        let half_man = man >> 13;
        let rest = man & 0x1fff;
        let mut h = u32::from(sign) | half_exp | half_man;
        if rest > 0x1000 || (rest == 0x1000 && half_man & 1 == 1) {
            h += 1; // mantissa carry rolls into the exponent correctly
        }
        return h as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: shift the full (implicit-bit) mantissa down to
        // the 2⁻²⁴ grid, round to nearest even.
        let man = man | 0x0080_0000;
        let shift = (-unbiased - 1) as u32;
        let half_man = man >> shift;
        let halfway = 1u32 << (shift - 1);
        let rest = man & ((1u32 << shift) - 1);
        let mut h = u32::from(sign) | half_man;
        if rest > halfway || (rest == halfway && half_man & 1 == 1) {
            h += 1;
        }
        return h as u16;
    }
    sign // underflow to signed zero
}

/// Reads f16 value `i` of a little-endian byte row, widened to f32.
#[inline]
fn f16_at(bytes: &[u8], i: usize) -> f32 {
    f16_to_f32(u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]))
}

/// Scalar reference f16 dot product: serial single-accumulator f32 chain
/// over widened binary16 values, the baseline [`dot_f16`]'s equivalence
/// proptests compare against (relative 1e-5, like [`dot_ref`]).
///
/// # Panics
///
/// Panics (debug) if byte lengths differ or are odd; in release the
/// shorter even length governs.
#[inline]
#[must_use]
pub fn dot_f16_ref(a: &[u8], b: &[u8]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 2, 0);
    let n = a.len().min(b.len()) / 2;
    let mut s = 0.0f32;
    for i in 0..n {
        s += f16_at(a, i) * f16_at(b, i);
    }
    s
}

/// Fused f16 dot product over little-endian binary16 byte rows: each value
/// widens to f32 in place (no dequantized scratch row) and accumulates in
/// the module's contractual reduction order — [`LANES`]-wide blocks, the
/// fixed halving tree, serial tail — so the result depends only on the row
/// length, exactly like [`dot`].
///
/// # Panics
///
/// Panics (debug) if byte lengths differ or are odd; in release the
/// shorter even length governs.
#[inline]
#[must_use]
pub fn dot_f16(a: &[u8], b: &[u8]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 2, 0);
    let n = a.len().min(b.len()) / 2;
    let mut lanes = [0.0f32; LANES];
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += f16_at(a, base + l) * f16_at(b, base + l);
        }
    }
    let h4 = [
        lanes[0] + lanes[4],
        lanes[1] + lanes[5],
        lanes[2] + lanes[6],
        lanes[3] + lanes[7],
    ];
    let mut s = (h4[0] + h4[2]) + (h4[1] + h4[3]);
    for i in blocks * LANES..n {
        s += f16_at(a, i) * f16_at(b, i);
    }
    s
}

/// Element-wise mean of `vectors` (all the same length).
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths disagree.
#[must_use]
pub fn mean_vector(vectors: &[&[f32]]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    let dim = vectors[0].len();
    let mut acc = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "mixed dimensions in mean_vector");
        axpy(1.0, v, &mut acc);
    }
    scale(1.0 / vectors.len() as f32, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_axpy_scale() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b;
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = [3.0f32, 4.0];
        assert!(normalize(&mut v));
        assert!((norm2(&v) - 1.0).abs() < 1e-6);
        let mut z = [0.0f32, 0.0];
        assert!(!normalize(&mut z));
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn cosine_known_values() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_vector_basic() {
        let a = [0.0f32, 2.0];
        let b = [2.0f32, 4.0];
        assert_eq!(mean_vector(&[&a, &b]), vec![1.0, 3.0]);
    }

    /// Deterministic pseudo-random test vector (golden-ratio hash — keeps
    /// the suite independent of any RNG crate).
    fn test_vec(len: usize, salt: u64) -> Vec<f32> {
        (0..len as u64)
            .map(|i| {
                let h = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32) / ((1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// Relative-tolerance comparison scaled to the magnitude of the sum of
    /// absolute products (near-cancelling sums make the raw relative error
    /// of the total unboundedly large for *any* summation order).
    fn close_rel(got: f32, want: f32, scale: f32) {
        let tol = 1e-5 * scale.max(1.0);
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want}, tol {tol}"
        );
    }

    #[test]
    fn dot_matches_ref_all_lengths_to_300() {
        // Every tail length 0..LANES appears many times in 0..=300.
        for len in 0..=300usize {
            let a = test_vec(len, 1);
            let b = test_vec(len, 2);
            let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            close_rel(dot(&a, &b), dot_ref(&a, &b), scale);
        }
    }

    #[test]
    fn dot_block_queries_bit_identical_to_single() {
        // The contract that keeps blocked matvec == single matvec: each
        // query's result must not depend on how many queries share the
        // kernel call.
        for len in [0usize, 1, 7, 8, 9, 20, 64, 100, 256, 300] {
            let a = test_vec(len, 3);
            let qs: Vec<Vec<f32>> = (0..4).map(|q| test_vec(len, 10 + q)).collect();
            let block = dot_block(&a, [&qs[0], &qs[1], &qs[2], &qs[3]]);
            for (q, qv) in qs.iter().enumerate() {
                assert_eq!(block[q], dot(&a, qv), "len {len} query {q}");
            }
        }
    }

    #[test]
    fn dot_is_commutative_bitwise() {
        // Blocked matvecs rely on a·b == b·a exactly (f32 multiply is
        // commutative and the reduction order depends only on length).
        for len in [5usize, 8, 31, 256] {
            let a = test_vec(len, 4);
            let b = test_vec(len, 5);
            assert_eq!(dot(&a, &b), dot(&b, &a));
        }
    }

    /// Deterministic pseudo-random i8 row (raw two's-complement bytes).
    fn test_vec_i8(len: usize, salt: u64) -> Vec<u8> {
        (0..len as u64)
            .map(|i| {
                let h = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 40) as u8
            })
            .collect()
    }

    /// Deterministic pseudo-random f16 row (little-endian bytes) drawn from
    /// the f32 test vector so values are representative, not bit noise.
    fn test_vec_f16(len: usize, salt: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len * 2);
        for x in test_vec(len, salt) {
            out.extend_from_slice(&f32_to_f16(x).to_le_bytes());
        }
        out
    }

    #[test]
    fn dot_i8_matches_ref_all_lengths_to_300() {
        for len in 0..=300usize {
            let a = test_vec_i8(len, 21);
            let b = test_vec_i8(len, 22);
            // Integer addition is associative: exact equality, no tolerance.
            assert_eq!(dot_i8(&a, &b), dot_i8_ref(&a, &b), "len {len}");
        }
    }

    #[test]
    fn dot_i8_known_values_and_sign() {
        // 2·3 + (−4)·5 = −14, mixing positive and negative bytes.
        let a = [2i8 as u8, (-4i8) as u8];
        let b = [3i8 as u8, 5u8];
        assert_eq!(dot_i8(&a, &b), -14);
        assert_eq!(dot_i8_ref(&a, &b), -14);
        // Saturating extremes stay exact.
        let worst_a = vec![(-127i8) as u8; 64];
        let worst_b = vec![127u8; 64];
        assert_eq!(dot_i8(&worst_a, &worst_b), -127 * 127 * 64);
    }

    #[test]
    fn dot_i8_scaled_widen_once() {
        let a = test_vec_i8(40, 31);
        let b = test_vec_i8(40, 32);
        let (sa, sb) = (0.0125f32, 0.02f32);
        let want = (dot_i8_ref(&a, &b) as f32) * (sa * sb);
        assert_eq!(dot_i8_scaled(&a, sa, &b, sb), want);
    }

    #[test]
    fn f16_round_trips_every_finite_value() {
        for bits in 0..=u16::MAX {
            let exp = (bits >> 10) & 0x1f;
            let man = bits & 0x3ff;
            if exp == 31 && man != 0 {
                // NaN: payload is not preserved bit-for-bit, only NaN-ness.
                assert!(f16_to_f32(bits).is_nan(), "bits {bits:#06x}");
                continue;
            }
            let back = f32_to_f16(f16_to_f32(bits));
            assert_eq!(back, bits, "bits {bits:#06x} -> {}", f16_to_f32(bits));
        }
    }

    #[test]
    fn f16_conversion_edge_cases() {
        assert_eq!(f16_to_f32(0x0000), 0.0);
        assert!(f16_to_f32(0x8000).is_sign_negative());
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
        // Smallest subnormal and largest normal.
        assert_eq!(f16_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_to_f32(0x7bff), 65504.0);
        // Overflow saturates, NaN survives, underflow signs its zero.
        assert_eq!(f32_to_f16(1e6), 0x7c00);
        assert_eq!(f32_to_f16(-1e6), 0xfc00);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16(-1e-9), 0x8000);
        // Round-to-nearest-even at the halfway point: 1 + 2^-11 ties back
        // to 1.0 (even), 1 + 3·2^-11 rounds up to 1 + 2^-9 over 1 + 2^-10.
        assert_eq!(f32_to_f16(1.0 + 2.0f32.powi(-11)), 0x3c00);
        assert_eq!(f32_to_f16(1.0 + 3.0 * 2.0f32.powi(-11)), 0x3c02);
    }

    #[test]
    fn dot_f16_matches_ref_all_lengths_to_300() {
        for len in 0..=300usize {
            let a = test_vec_f16(len, 41);
            let b = test_vec_f16(len, 42);
            let scale: f32 = (0..len)
                .map(|i| (f16_at(&a, i) * f16_at(&b, i)).abs())
                .sum();
            close_rel(dot_f16(&a, &b), dot_f16_ref(&a, &b), scale);
        }
    }

    #[test]
    fn dot_f16_follows_the_f32_reduction_order() {
        // Widening each f16 to f32 and calling `dot` must reproduce the
        // fused kernel bit-for-bit: same values, same contractual order.
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100, 300] {
            let a = test_vec_f16(len, 51);
            let b = test_vec_f16(len, 52);
            let aw: Vec<f32> = (0..len).map(|i| f16_at(&a, i)).collect();
            let bw: Vec<f32> = (0..len).map(|i| f16_at(&b, i)).collect();
            assert_eq!(dot_f16(&a, &b), dot(&aw, &bw), "len {len}");
        }
    }

    proptest! {
        #[test]
        fn dot_i8_equiv_ref_proptest(
            len in 0usize..=300,
            salt_a in 0u64..1000,
            salt_b in 1000u64..2000,
        ) {
            let a = test_vec_i8(len, salt_a);
            let b = test_vec_i8(len, salt_b);
            prop_assert_eq!(dot_i8(&a, &b), dot_i8_ref(&a, &b));
        }

        #[test]
        fn dot_f16_equiv_ref_proptest(
            len in 0usize..=300,
            salt_a in 0u64..1000,
            salt_b in 1000u64..2000,
        ) {
            let a = test_vec_f16(len, salt_a);
            let b = test_vec_f16(len, salt_b);
            let scale: f32 = (0..len)
                .map(|i| (f16_at(&a, i) * f16_at(&b, i)).abs())
                .sum();
            let (got, want) = (dot_f16(&a, &b), dot_f16_ref(&a, &b));
            prop_assert!((got - want).abs() <= 1e-5 * scale.max(1.0),
                "len {} got {} want {}", len, got, want);
        }

        #[test]
        fn f16_widening_error_is_bounded(x in -1000.0f32..1000.0) {
            // Relative error of one f32 -> f16 -> f32 trip is at most 2^-11
            // for normal halves (|x| >= 2^-14).
            let back = f16_to_f32(f32_to_f16(x));
            if x.abs() >= 2.0f32.powi(-14) {
                prop_assert!((back - x).abs() <= x.abs() * 2.0f32.powi(-11),
                    "x {} back {}", x, back);
            } else {
                prop_assert!((back - x).abs() <= 2.0f32.powi(-25));
            }
        }

        #[test]
        fn dot_equiv_ref_proptest(
            len in 0usize..=300,
            salt_a in 0u64..1000,
            salt_b in 1000u64..2000,
        ) {
            let a = test_vec(len, salt_a);
            let b = test_vec(len, salt_b);
            let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let (got, want) = (dot(&a, &b), dot_ref(&a, &b));
            prop_assert!((got - want).abs() <= 1e-5 * scale.max(1.0),
                "len {} got {} want {}", len, got, want);
        }

        #[test]
        fn norm2_equiv_ref_proptest(v in proptest::collection::vec(-10.0f32..10.0, 0..300)) {
            let want = dot_ref(&v, &v).sqrt();
            let got = norm2(&v);
            // Same-sign summands: the relative error bound is tight.
            prop_assert!((got - want).abs() <= 1e-5 * want.max(1.0));
        }

        #[test]
        fn axpy_bitwise_matches_naive(
            v in proptest::collection::vec(-10.0f32..10.0, 0..300),
            alpha in -2.0f32..2.0,
        ) {
            let x = v.clone();
            let mut y = test_vec(v.len(), 77);
            let mut y_ref = y.clone();
            axpy(alpha, &x, &mut y);
            for (yi, &xi) in y_ref.iter_mut().zip(&x) {
                *yi += alpha * xi;
            }
            prop_assert_eq!(y, y_ref);
        }

        #[test]
        fn cosine_bounded(a in proptest::collection::vec(-10.0f32..10.0, 4), b in proptest::collection::vec(-10.0f32..10.0, 4)) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        }

        #[test]
        fn cosine_scale_invariant(v in proptest::collection::vec(-5.0f32..5.0, 8), s in 0.1f32..10.0) {
            let scaled: Vec<f32> = v.iter().map(|&x| x * s).collect();
            let c1 = cosine(&v, &v);
            let c2 = cosine(&v, &scaled);
            prop_assert!((c1 - c2).abs() < 1e-4);
        }

        #[test]
        fn cosine_matches_composed_kernels(
            len in 1usize..300,
            salt_a in 0u64..500,
            salt_b in 500u64..1000,
        ) {
            // The fused kernel vs dot/norm2 composed the old way.
            let a = test_vec(len, salt_a);
            let b = test_vec(len, salt_b);
            let (na, nb) = (dot_ref(&a, &a).sqrt(), dot_ref(&b, &b).sqrt());
            let want = if na == 0.0 || nb == 0.0 { 0.0 } else { dot_ref(&a, &b) / (na * nb) };
            prop_assert!((cosine(&a, &b) - want).abs() < 1e-4);
        }

        #[test]
        fn normalized_dot_equals_cosine(a in proptest::collection::vec(-5.0f32..5.0, 6), b in proptest::collection::vec(-5.0f32..5.0, 6)) {
            let mut an = a.clone();
            let mut bn = b.clone();
            if normalize(&mut an) && normalize(&mut bn) {
                prop_assert!((dot(&an, &bn) - cosine(&a, &b)).abs() < 1e-4);
            }
        }
    }
}
