//! Vector kernels shared by the factorisation and embedding code.
//!
//! All reductions here are *lane-unrolled*: instead of one serial f32
//! accumulator (whose loop-carried add latency LLVM may not reassociate,
//! leaving the CPU idle most of every cycle), each kernel keeps [`LANES`]
//! independent partial sums that the backend can vectorise and pipeline.
//! On the single-core container this repo targets, that turns the dot
//! product from FP-latency-bound into FP-throughput-bound.
//!
//! # Reduction-order contract
//!
//! f32 addition is not associative, so the summation order is part of the
//! kernel's observable behaviour. Every reduction in this module follows
//! one fixed, documented order (see [`dot_block`]):
//!
//! 1. elements are consumed in blocks of [`LANES`] = 8; element `i` of each
//!    block accumulates into lane `i % 8`;
//! 2. the eight lane sums are folded by successive halving — lane `i`
//!    combines with lane `i + 4`, the four partials fold `i` with `i + 2`,
//!    the last pair adds left-to-right:
//!    `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))`.
//!    This is the tree a 4-wide SIMD horizontal reduction produces, so the
//!    backend lowers it without any cross-lane shuffles in the hot loop;
//! 3. the scalar tail (`len % 8` trailing elements) is added serially, in
//!    index order, onto the tree result.
//!
//! The order depends only on the slice length — never on how many vectors
//! share a kernel call — so [`dot`], the single-query rows-blocked
//! [`crate::DenseMatrix::matvec_into`], and the multi-query
//! [`crate::DenseMatrix::matvec_block_into`] all produce *bit-identical*
//! scores for the same (row, query) pair. Results are deterministic across
//! runs and platforms, but differ from the old single-accumulator chain in
//! the last ulps; [`dot_ref`] preserves that chain as the reference the
//! equivalence proptests compare against (relative 1e-5).

/// Number of independent accumulator lanes per reduction.
pub const LANES: usize = 8;

/// Scalar reference dot product — the pre-unrolling single-accumulator
/// chain, kept for equivalence testing and benchmark baselines. Do not use
/// on hot paths.
///
/// # Panics
///
/// Panics (debug) if lengths differ; in release the shorter length governs.
#[inline]
#[must_use]
pub fn dot_ref(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `N` dot products sharing one pass over `a`: `out[q] = a · bs[q]`.
///
/// This is the one reduction kernel everything else is written in terms
/// of. Each query keeps [`LANES`] independent accumulators; the reduction
/// order (see the module docs) depends only on `a.len()`, so the result
/// for query `q` is bit-identical to `dot(a, bs[q])` regardless of `N` —
/// which is what lets blocked matvecs answer exactly like single queries.
///
/// Sharing the pass matters for matvec-shaped workloads: the row load from
/// memory is paid once and amortised over `N` accumulator chains. `N` = 4
/// with 8 lanes fills the SSE2 register file without spilling.
///
/// # Panics
///
/// Panics if any `bs[q]` is shorter than `a` (debug asserts exact
/// equality).
#[inline]
#[must_use]
pub fn dot_block<const N: usize>(a: &[f32], bs: [&[f32]; N]) -> [f32; N] {
    let n = a.len();
    // Re-slice to the shared length so the optimiser can drop per-element
    // bounds checks in the inner loop.
    let bs: [&[f32]; N] = std::array::from_fn(|q| {
        debug_assert_eq!(a.len(), bs[q].len());
        &bs[q][..n]
    });
    let mut lanes = [[0.0f32; LANES]; N];
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let av = &a[base..base + LANES];
        for q in 0..N {
            let bv = &bs[q][base..base + LANES];
            for l in 0..LANES {
                lanes[q][l] += av[l] * bv[l];
            }
        }
    }
    let mut out = [0.0f32; N];
    let tail = blocks * LANES;
    for q in 0..N {
        let l = lanes[q];
        // Fixed halving tree, then the serial tail — the documented order.
        let h4 = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        let h2 = [h4[0] + h4[2], h4[1] + h4[3]];
        let mut s = h2[0] + h2[1];
        for i in tail..n {
            s += a[i] * bs[q][i];
        }
        out[q] = s;
    }
    out
}

/// Dot product (lane-unrolled; see the module's reduction-order contract).
///
/// # Panics
///
/// Panics if `b` is shorter than `a` (debug asserts exact equality).
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let [s] = dot_block(a, [b]);
    s
}

/// `y += alpha * x`, unrolled in [`LANES`]-wide blocks.
///
/// Element-wise (no reduction), so results are bit-identical to the naive
/// loop; the unroll only widens the store pipeline.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let xv = &x[base..base + LANES];
        let yv = &mut y[base..base + LANES];
        for l in 0..LANES {
            yv[l] += alpha * xv[l];
        }
    }
    for i in blocks * LANES..n {
        y[i] += alpha * x[i];
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm (lane-unrolled via [`dot`]).
#[inline]
#[must_use]
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalises `x` to unit L2 norm in place; a zero vector is left unchanged
/// and `false` is returned.
#[inline]
pub fn normalize(x: &mut [f32]) -> bool {
    let n = norm2(x);
    if n > 0.0 && n.is_finite() {
        scale(1.0 / n, x);
        true
    } else {
        false
    }
}

/// Cosine similarity; `0.0` when either vector is zero.
///
/// Fused: one pass accumulates `a·b`, `a·a`, and `b·b` together, each with
/// its own [`LANES`] accumulators in the contract's reduction order.
#[inline]
#[must_use]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ab = [0.0f32; LANES];
    let mut aa = [0.0f32; LANES];
    let mut bb = [0.0f32; LANES];
    let blocks = n / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let av = &a[base..base + LANES];
        let bv = &b[base..base + LANES];
        for l in 0..LANES {
            ab[l] += av[l] * bv[l];
            aa[l] += av[l] * av[l];
            bb[l] += bv[l] * bv[l];
        }
    }
    let tree = |l: [f32; LANES]| {
        let h4 = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        (h4[0] + h4[2]) + (h4[1] + h4[3])
    };
    let (mut sab, mut saa, mut sbb) = (tree(ab), tree(aa), tree(bb));
    for i in blocks * LANES..n {
        sab += a[i] * b[i];
        saa += a[i] * a[i];
        sbb += b[i] * b[i];
    }
    let (na, nb) = (saa.sqrt(), sbb.sqrt());
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        sab / (na * nb)
    }
}

/// Element-wise mean of `vectors` (all the same length).
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths disagree.
#[must_use]
pub fn mean_vector(vectors: &[&[f32]]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    let dim = vectors[0].len();
    let mut acc = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "mixed dimensions in mean_vector");
        axpy(1.0, v, &mut acc);
    }
    scale(1.0 / vectors.len() as f32, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_axpy_scale() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b;
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = [3.0f32, 4.0];
        assert!(normalize(&mut v));
        assert!((norm2(&v) - 1.0).abs() < 1e-6);
        let mut z = [0.0f32, 0.0];
        assert!(!normalize(&mut z));
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn cosine_known_values() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_vector_basic() {
        let a = [0.0f32, 2.0];
        let b = [2.0f32, 4.0];
        assert_eq!(mean_vector(&[&a, &b]), vec![1.0, 3.0]);
    }

    /// Deterministic pseudo-random test vector (golden-ratio hash — keeps
    /// the suite independent of any RNG crate).
    fn test_vec(len: usize, salt: u64) -> Vec<f32> {
        (0..len as u64)
            .map(|i| {
                let h = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32) / ((1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// Relative-tolerance comparison scaled to the magnitude of the sum of
    /// absolute products (near-cancelling sums make the raw relative error
    /// of the total unboundedly large for *any* summation order).
    fn close_rel(got: f32, want: f32, scale: f32) {
        let tol = 1e-5 * scale.max(1.0);
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want}, tol {tol}"
        );
    }

    #[test]
    fn dot_matches_ref_all_lengths_to_300() {
        // Every tail length 0..LANES appears many times in 0..=300.
        for len in 0..=300usize {
            let a = test_vec(len, 1);
            let b = test_vec(len, 2);
            let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            close_rel(dot(&a, &b), dot_ref(&a, &b), scale);
        }
    }

    #[test]
    fn dot_block_queries_bit_identical_to_single() {
        // The contract that keeps blocked matvec == single matvec: each
        // query's result must not depend on how many queries share the
        // kernel call.
        for len in [0usize, 1, 7, 8, 9, 20, 64, 100, 256, 300] {
            let a = test_vec(len, 3);
            let qs: Vec<Vec<f32>> = (0..4).map(|q| test_vec(len, 10 + q)).collect();
            let block = dot_block(&a, [&qs[0], &qs[1], &qs[2], &qs[3]]);
            for (q, qv) in qs.iter().enumerate() {
                assert_eq!(block[q], dot(&a, qv), "len {len} query {q}");
            }
        }
    }

    #[test]
    fn dot_is_commutative_bitwise() {
        // Blocked matvecs rely on a·b == b·a exactly (f32 multiply is
        // commutative and the reduction order depends only on length).
        for len in [5usize, 8, 31, 256] {
            let a = test_vec(len, 4);
            let b = test_vec(len, 5);
            assert_eq!(dot(&a, &b), dot(&b, &a));
        }
    }

    proptest! {
        #[test]
        fn dot_equiv_ref_proptest(
            len in 0usize..=300,
            salt_a in 0u64..1000,
            salt_b in 1000u64..2000,
        ) {
            let a = test_vec(len, salt_a);
            let b = test_vec(len, salt_b);
            let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let (got, want) = (dot(&a, &b), dot_ref(&a, &b));
            prop_assert!((got - want).abs() <= 1e-5 * scale.max(1.0),
                "len {} got {} want {}", len, got, want);
        }

        #[test]
        fn norm2_equiv_ref_proptest(v in proptest::collection::vec(-10.0f32..10.0, 0..300)) {
            let want = dot_ref(&v, &v).sqrt();
            let got = norm2(&v);
            // Same-sign summands: the relative error bound is tight.
            prop_assert!((got - want).abs() <= 1e-5 * want.max(1.0));
        }

        #[test]
        fn axpy_bitwise_matches_naive(
            v in proptest::collection::vec(-10.0f32..10.0, 0..300),
            alpha in -2.0f32..2.0,
        ) {
            let x = v.clone();
            let mut y = test_vec(v.len(), 77);
            let mut y_ref = y.clone();
            axpy(alpha, &x, &mut y);
            for (yi, &xi) in y_ref.iter_mut().zip(&x) {
                *yi += alpha * xi;
            }
            prop_assert_eq!(y, y_ref);
        }

        #[test]
        fn cosine_bounded(a in proptest::collection::vec(-10.0f32..10.0, 4), b in proptest::collection::vec(-10.0f32..10.0, 4)) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        }

        #[test]
        fn cosine_scale_invariant(v in proptest::collection::vec(-5.0f32..5.0, 8), s in 0.1f32..10.0) {
            let scaled: Vec<f32> = v.iter().map(|&x| x * s).collect();
            let c1 = cosine(&v, &v);
            let c2 = cosine(&v, &scaled);
            prop_assert!((c1 - c2).abs() < 1e-4);
        }

        #[test]
        fn cosine_matches_composed_kernels(
            len in 1usize..300,
            salt_a in 0u64..500,
            salt_b in 500u64..1000,
        ) {
            // The fused kernel vs dot/norm2 composed the old way.
            let a = test_vec(len, salt_a);
            let b = test_vec(len, salt_b);
            let (na, nb) = (dot_ref(&a, &a).sqrt(), dot_ref(&b, &b).sqrt());
            let want = if na == 0.0 || nb == 0.0 { 0.0 } else { dot_ref(&a, &b) / (na * nb) };
            prop_assert!((cosine(&a, &b) - want).abs() < 1e-4);
        }

        #[test]
        fn normalized_dot_equals_cosine(a in proptest::collection::vec(-5.0f32..5.0, 6), b in proptest::collection::vec(-5.0f32..5.0, 6)) {
            let mut an = a.clone();
            let mut bn = b.clone();
            if normalize(&mut an) && normalize(&mut bn) {
                prop_assert!((dot(&an, &bn) - cosine(&a, &b)).abs() < 1e-4);
            }
        }
    }
}
