//! Vector kernels shared by the factorisation and embedding code.
//!
//! All functions operate on equal-length slices and are written as plain
//! indexed loops over `zip`ped iterators so LLVM autovectorises them; factor
//! dimensions are small (L ≤ 64) and embedding dimensions moderate (≈ 256),
//! so this is plenty without SIMD intrinsics.

/// Dot product.
///
/// # Panics
///
/// Panics (debug) if lengths differ; in release the shorter length governs.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
#[must_use]
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalises `x` to unit L2 norm in place; a zero vector is left unchanged
/// and `false` is returned.
#[inline]
pub fn normalize(x: &mut [f32]) -> bool {
    let n = norm2(x);
    if n > 0.0 && n.is_finite() {
        scale(1.0 / n, x);
        true
    } else {
        false
    }
}

/// Cosine similarity; `0.0` when either vector is zero.
#[inline]
#[must_use]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Element-wise mean of `vectors` (all the same length).
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths disagree.
#[must_use]
pub fn mean_vector(vectors: &[&[f32]]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    let dim = vectors[0].len();
    let mut acc = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "mixed dimensions in mean_vector");
        axpy(1.0, v, &mut acc);
    }
    scale(1.0 / vectors.len() as f32, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_axpy_scale() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b;
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = [3.0f32, 4.0];
        assert!(normalize(&mut v));
        assert!((norm2(&v) - 1.0).abs() < 1e-6);
        let mut z = [0.0f32, 0.0];
        assert!(!normalize(&mut z));
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn cosine_known_values() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_vector_basic() {
        let a = [0.0f32, 2.0];
        let b = [2.0f32, 4.0];
        assert_eq!(mean_vector(&[&a, &b]), vec![1.0, 3.0]);
    }

    proptest! {
        #[test]
        fn cosine_bounded(a in proptest::collection::vec(-10.0f32..10.0, 4), b in proptest::collection::vec(-10.0f32..10.0, 4)) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        }

        #[test]
        fn cosine_scale_invariant(v in proptest::collection::vec(-5.0f32..5.0, 8), s in 0.1f32..10.0) {
            let scaled: Vec<f32> = v.iter().map(|&x| x * s).collect();
            let c1 = cosine(&v, &v);
            let c2 = cosine(&v, &scaled);
            prop_assert!((c1 - c2).abs() < 1e-4);
        }

        #[test]
        fn normalized_dot_equals_cosine(a in proptest::collection::vec(-5.0f32..5.0, 6), b in proptest::collection::vec(-5.0f32..5.0, 6)) {
            let mut an = a.clone();
            let mut bn = b.clone();
            if normalize(&mut an) && normalize(&mut bn) {
                prop_assert!((dot(&an, &bn) - cosine(&a, &b)).abs() < 1e-4);
            }
        }
    }
}
