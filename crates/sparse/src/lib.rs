//! In-memory linear algebra for implicit-feedback recommenders.
//!
//! The workloads in this workspace are small enough to hold in RAM (a few
//! thousand books, tens of thousands of users, ~10^6 interactions) but hot
//! enough that representation matters: BPR touches the interaction matrix
//! hundreds of millions of times during SGD. The crate provides
//!
//! * [`csr::CsrMatrix`] — compressed sparse row storage of the user–item
//!   interaction matrix `I ∈ {0,1}^(U×B)` (Section 4 of the paper), built
//!   from unsorted (row, col) pairs with duplicate folding;
//! * [`dense::DenseMatrix`] — row-major `f32` storage for the latent factor
//!   matrices `V` (users × L) and `P`ᵀ (books × L);
//! * [`vecops`] — the handful of vector kernels (dot, axpy, cosine, L2
//!   normalisation) everything else is written in terms of.

pub mod csr;
pub mod dense;
pub mod vecops;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
