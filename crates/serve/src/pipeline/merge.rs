//! Deterministic merge/dedup of per-source candidate emissions.
//!
//! Stage two of the serving pipeline: the per-source candidate lists
//! from [`crate::pipeline::sources`] are pooled into one deduplicated
//! list. The pool is keyed by book index in a `BTreeMap`, so the output
//! order is ascending book index regardless of how many sources ran or
//! in which order their emissions arrive — a hard determinism
//! requirement (DESIGN.md §15). When two sources propose the same book
//! the *first* source's provenance wins, so the explanation a reader
//! sees always names the highest-priority signal that suggested the
//! book.

use super::sources::Candidate;
use std::collections::BTreeMap;

/// Merges per-source emissions for one user into `pool`, deduplicating
/// by book with first-source-wins provenance. `pool` is cleared and
/// refilled in ascending book order.
pub fn merge_into<'a, I>(emissions: I, pool: &mut Vec<Candidate>)
where
    I: IntoIterator<Item = &'a [Candidate]>,
{
    let mut by_book: BTreeMap<u32, Candidate> = BTreeMap::new();
    for emission in emissions {
        for &cand in emission {
            by_book.entry(cand.book).or_insert(cand);
        }
    }
    pool.clear();
    pool.extend(by_book.into_values());
}

#[cfg(test)]
mod tests {
    use super::super::sources::{Reason, SourceId};
    use super::*;

    fn cand(book: u32, source: SourceId) -> Candidate {
        Candidate {
            book,
            source,
            reason: Reason::Exploration,
        }
    }

    #[test]
    fn merge_dedups_and_sorts_by_book() {
        let a = [
            cand(5, SourceId::CfNeighbours),
            cand(2, SourceId::CfNeighbours),
        ];
        let b = [cand(2, SourceId::MostRead), cand(9, SourceId::MostRead)];
        let mut pool = vec![cand(99, SourceId::MostRead)]; // stale content is cleared
        merge_into([a.as_slice(), b.as_slice()], &mut pool);
        let books: Vec<u32> = pool.iter().map(|c| c.book).collect();
        assert_eq!(books, vec![2, 5, 9]);
    }

    #[test]
    fn first_source_wins_provenance() {
        let a = [cand(7, SourceId::CfNeighbours)];
        let b = [cand(7, SourceId::MostRead)];
        let mut pool = Vec::new();
        merge_into([a.as_slice(), b.as_slice()], &mut pool);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool[0].source, SourceId::CfNeighbours);
        // And the winner does not depend on per-emission candidate order,
        // only on emission order.
        merge_into([b.as_slice(), a.as_slice()], &mut pool);
        assert_eq!(pool[0].source, SourceId::MostRead);
    }

    #[test]
    fn empty_emissions_yield_empty_pool() {
        let mut pool = vec![cand(1, SourceId::CfNeighbours)];
        merge_into(std::iter::empty::<&[Candidate]>(), &mut pool);
        assert!(pool.is_empty());
    }
}
