//! Candidate sources: the fan-out stage of the serving pipeline.
//!
//! A [`CandidateSource`] wraps one retrieval signal — collaborative
//! filtering, content similarity, global popularity, genre preference —
//! and emits a few hundred [`Candidate`]s per user, each carrying its
//! provenance: which source proposed it ([`SourceId`]) and why
//! ([`Reason`]). Provenance is what the explanation layer
//! ([`crate::pipeline::explain`]) surfaces as "because you borrowed X",
//! and what the merge stage keeps when two sources propose the same
//! book (first source wins — see [`crate::pipeline::merge`]).
//!
//! Sources are ranked *suggestions*, not answers: the pipeline merges,
//! filters, and re-scores the pooled candidates, so a source only has
//! to be good at recall. Every source emits in a deterministic order
//! for a fixed model + training matrix.

use crate::engine::ModelSlot;
use rm_core::bpr::Bpr;
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::quant::{QuantArtifact, QuantMatrix, QuantQuery, QuantRecommender};
use rm_core::Recommender;
use rm_dataset::corpus::Corpus;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_embed::ivf::{IvfIndex, IvfScratch};
use rm_sparse::vecops;

/// Which source proposed a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceId {
    /// Collaborative filtering over co-borrowing neighbourhoods (BPR).
    CfNeighbours,
    /// Content similarity to the user's borrowed books (Closest Items).
    ContentSimilar,
    /// Global popularity (Most Read Items).
    MostRead,
    /// The user's dominant borrowed genre.
    GenrePreference,
    /// A plain fallback wrap of one serving slot (e.g. Random Items).
    Fallback(ModelSlot),
}

impl SourceId {
    /// Snake-case identifier for trace events and CLI output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::CfNeighbours => "cf_neighbours",
            Self::ContentSimilar => "content_similar",
            Self::MostRead => "most_read",
            Self::GenrePreference => "genre_preference",
            Self::Fallback(slot) => slot.metric_label(),
        }
    }

    /// The serving slot this source is backed by, when there is one —
    /// used to attribute `served` metrics. [`SourceId::GenrePreference`]
    /// is model-free and maps to no slot.
    #[must_use]
    pub fn slot(self) -> Option<ModelSlot> {
        match self {
            Self::CfNeighbours => Some(ModelSlot::Bpr),
            Self::ContentSimilar => Some(ModelSlot::ClosestItems),
            Self::MostRead => Some(ModelSlot::MostRead),
            Self::GenrePreference => None,
            Self::Fallback(slot) => Some(slot),
        }
    }
}

/// Why a source proposed a candidate — the provenance the explanation
/// layer renders for the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reason {
    /// Readers with a similar borrowing history also read it.
    CfNeighbours,
    /// Its metadata is close to a book the user borrowed.
    SimilarToBorrowed {
        /// The borrowed book the recommendation is anchored to.
        anchor: u32,
    },
    /// It is among the library's most-read books.
    MostRead {
        /// Training-set read count.
        count: u64,
    },
    /// It belongs to the user's dominant borrowed genre.
    GenrePreference {
        /// Aggregated genre id (see `rm_dataset::genre`).
        genre: u8,
    },
    /// An exploration pick with no model-specific story (Random Items).
    Exploration,
}

/// One candidate book with full provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Dense book index.
    pub book: u32,
    /// The source that proposed it.
    pub source: SourceId,
    /// Why it proposed it.
    pub reason: Reason,
}

/// A pluggable candidate source: stage one of the serving pipeline.
///
/// Implementations must be deterministic — identical model state and
/// inputs emit identical candidate lists — and must never propose a
/// book the user has already borrowed (every wrapped recommender
/// excludes the seen set by contract).
pub trait CandidateSource: Send + Sync {
    /// The source's identity, stamped on every candidate it emits.
    fn id(&self) -> SourceId;

    /// Emits up to `pool_size` candidates per user, best first. `out`
    /// is resized to `users.len()`; each inner `Vec` is cleared and
    /// refilled in place. An empty inner list means the source has
    /// nothing to say for that user (it is *not* an error).
    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>);
}

/// Maps a recommender's ranked output into candidates with one fixed
/// reason per book.
fn emit_ranked(
    model: &dyn Recommender,
    id: SourceId,
    users: &[UserIdx],
    pool_size: usize,
    out: &mut Vec<Vec<Candidate>>,
    mut reason: impl FnMut(UserIdx, u32) -> Reason,
) {
    let mut ranked: Vec<Vec<u32>> = Vec::new();
    model.recommend_batch_into(users, pool_size, &mut ranked);
    out.resize_with(users.len(), Vec::new);
    for ((&u, books), slot) in users.iter().zip(&ranked).zip(out.iter_mut()) {
        slot.clear();
        slot.extend(books.iter().map(|&b| Candidate {
            book: b,
            source: id,
            reason: reason(u, b),
        }));
    }
}

/// CF-neighbours source: the BPR model's top books for the user,
/// proposed because similar readers borrowed them.
#[derive(Debug, Clone, Copy)]
pub struct CfNeighboursSource<'a> {
    bpr: &'a Bpr,
}

impl<'a> CfNeighboursSource<'a> {
    /// Wraps a fitted (or installed) BPR model.
    #[must_use]
    pub fn new(bpr: &'a Bpr) -> Self {
        Self { bpr }
    }
}

impl CandidateSource for CfNeighboursSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::CfNeighbours
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        emit_ranked(self.bpr, self.id(), users, pool_size, out, |_, _| {
            Reason::CfNeighbours
        });
    }
}

/// Content-similar source: Closest Items' top books, each anchored to
/// the borrowed book most representative of the user's taste.
#[derive(Debug, Clone, Copy)]
pub struct ContentSimilarSource<'a> {
    closest: &'a ClosestItems,
    train: &'a Interactions,
}

impl<'a> ContentSimilarSource<'a> {
    /// Wraps a fitted Closest Items model and the training matrix its
    /// seen sets come from.
    #[must_use]
    pub fn new(closest: &'a ClosestItems, train: &'a Interactions) -> Self {
        Self { closest, train }
    }
}

impl CandidateSource for ContentSimilarSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::ContentSimilar
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        emit_ranked(
            self.closest,
            self.id(),
            users,
            pool_size,
            out,
            |u, _| match anchor_book(self.closest, self.train.seen(u)) {
                Some(anchor) => Reason::SimilarToBorrowed { anchor },
                None => Reason::Exploration,
            },
        );
    }
}

/// Exact-scan CF-neighbours source backed by a quantized artifact: the
/// same emission contract as [`CfNeighboursSource`], but every score is
/// a fused integer dot over the artifact's compact rows instead of an
/// f32 matvec over the full factor matrices. Installed by the engine
/// when the artifact's factor sections validate against the live BPR
/// model; any mismatch keeps the exact f32 source instead.
pub struct QuantCfNeighboursSource<'a> {
    rec: QuantRecommender<'a>,
}

impl<'a> QuantCfNeighboursSource<'a> {
    /// Wraps a validated quantized artifact and the training matrix its
    /// factor sections were quantized from.
    ///
    /// # Panics
    ///
    /// Panics if the artifact lacks factor sections or their shapes
    /// disagree with `train` (the engine validates before wiring).
    #[must_use]
    pub fn new(artifact: &'a QuantArtifact, train: &'a Interactions) -> Self {
        Self {
            rec: QuantRecommender::new(artifact, train),
        }
    }
}

impl CandidateSource for QuantCfNeighboursSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::CfNeighbours
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        emit_ranked(&self.rec, self.id(), users, pool_size, out, |_, _| {
            Reason::CfNeighbours
        });
    }
}

/// IVF-accelerated CF-neighbours source: sub-linear retrieval over the
/// BPR item factors through the MIPS index, re-scoring candidates with
/// the same `dot` kernel the exact scan uses. At `nprobe` = the index's
/// list count the emission is bit-identical to [`CfNeighboursSource`];
/// at serving `nprobe` it trades a bounded recall loss for an
/// `O(nprobe · list)` scan instead of `O(catalogue)`.
///
/// With [`AnnCfNeighboursSource::with_quant`] the probe re-score reads
/// the quantized item rows instead of the f32 factor matrix, so the hot
/// per-candidate loop touches 4-8× fewer bytes.
#[derive(Debug, Clone, Copy)]
pub struct AnnCfNeighboursSource<'a> {
    bpr: &'a Bpr,
    train: &'a Interactions,
    index: &'a IvfIndex,
    nprobe: usize,
    quant: Option<(QuantMatrix<'a>, QuantMatrix<'a>)>,
}

impl<'a> AnnCfNeighboursSource<'a> {
    /// Wraps an installed BPR model, the training matrix (seen-set
    /// exclusion), and the MIPS IVF index built over the model's item
    /// factors.
    #[must_use]
    pub fn new(bpr: &'a Bpr, train: &'a Interactions, index: &'a IvfIndex, nprobe: usize) -> Self {
        Self {
            bpr,
            train,
            index,
            nprobe,
            quant: None,
        }
    }

    /// Re-scores IVF probes against validated quantized factor rows
    /// (`user`, `item` sections) instead of the f32 matrices.
    #[must_use]
    pub fn with_quant(mut self, user: QuantMatrix<'a>, item: QuantMatrix<'a>) -> Self {
        self.quant = Some((user, item));
        self
    }
}

impl CandidateSource for AnnCfNeighboursSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::CfNeighbours
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        out.resize_with(users.len(), Vec::new);
        let Some(model) = self.bpr.model() else {
            for slot in out.iter_mut() {
                slot.clear();
            }
            return;
        };
        let mut scratch = IvfScratch::new();
        let mut ids: Vec<u32> = Vec::new();
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            slot.clear();
            let query = model.user_factors.row(u.index());
            match self.quant {
                Some((qu, qi)) => {
                    let urow = qu.row(u.index());
                    self.index.search_into(
                        query,
                        pool_size,
                        self.nprobe,
                        self.train.seen(u),
                        |i| qi.row(i as usize).dot(&urow),
                        &mut scratch,
                        &mut ids,
                    );
                }
                None => {
                    self.index.search_into(
                        query,
                        pool_size,
                        self.nprobe,
                        self.train.seen(u),
                        |i| vecops::dot(query, model.item_factors.row(i as usize)),
                        &mut scratch,
                        &mut ids,
                    );
                }
            }
            slot.extend(ids.iter().map(|&b| Candidate {
                book: b,
                source: SourceId::CfNeighbours,
                reason: Reason::CfNeighbours,
            }));
        }
    }
}

/// IVF-accelerated content-similar source: the user's Eq. 1 centroid
/// query retrieves through the cosine IVF index instead of the full
/// catalogue matvec, re-scored with the same `dot` kernel. Emission
/// semantics (empty history → nothing, anchored provenance) match
/// [`ContentSimilarSource`]; at `nprobe` = the index's list count the
/// two are bit-identical.
///
/// With [`AnnContentSimilarSource::with_quant`] the probe re-score
/// quantizes the centroid query once per user and dots it against the
/// artifact's compact embedding rows instead of the f32 store.
#[derive(Debug, Clone, Copy)]
pub struct AnnContentSimilarSource<'a> {
    closest: &'a ClosestItems,
    train: &'a Interactions,
    index: &'a IvfIndex,
    nprobe: usize,
    quant: Option<QuantMatrix<'a>>,
}

impl<'a> AnnContentSimilarSource<'a> {
    /// Wraps a fitted Closest Items model, the training matrix, and the
    /// cosine IVF index built over the model's embedding store.
    #[must_use]
    pub fn new(
        closest: &'a ClosestItems,
        train: &'a Interactions,
        index: &'a IvfIndex,
        nprobe: usize,
    ) -> Self {
        Self {
            closest,
            train,
            index,
            nprobe,
            quant: None,
        }
    }

    /// Re-scores IVF probes against a validated quantized embeddings
    /// section instead of the f32 store.
    #[must_use]
    pub fn with_quant(mut self, embeddings: QuantMatrix<'a>) -> Self {
        self.quant = Some(embeddings);
        self
    }
}

impl CandidateSource for AnnContentSimilarSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::ContentSimilar
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        let store = self.closest.store();
        let mut query: Vec<f32> = Vec::with_capacity(store.dim());
        let mut scratch = IvfScratch::new();
        let mut ids: Vec<u32> = Vec::new();
        out.resize_with(users.len(), Vec::new);
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            slot.clear();
            let seen = self.train.seen(u);
            if seen.is_empty() {
                continue;
            }
            store.mean_embedding_into(seen, &mut query);
            match self.quant {
                Some(qe) => {
                    let qq = QuantQuery::quantize(qe.mode(), &query);
                    self.index.search_into(
                        &query,
                        pool_size,
                        self.nprobe,
                        seen,
                        |i| qe.row(i as usize).dot(&qq.as_row()),
                        &mut scratch,
                        &mut ids,
                    );
                }
                None => {
                    self.index.search_into(
                        &query,
                        pool_size,
                        self.nprobe,
                        seen,
                        |i| vecops::dot(&query, store.embedding(i as usize)),
                        &mut scratch,
                        &mut ids,
                    );
                }
            }
            let reason = match anchor_book(self.closest, seen) {
                Some(anchor) => Reason::SimilarToBorrowed { anchor },
                None => Reason::Exploration,
            };
            slot.extend(ids.iter().map(|&b| Candidate {
                book: b,
                source: SourceId::ContentSimilar,
                reason,
            }));
        }
    }
}

/// The borrowed book most representative of the user's taste: the seen
/// book whose embedding is most similar to the (normalised) centroid of
/// everything they borrowed. Ties break toward the lower book index;
/// `None` for an empty history.
#[must_use]
pub fn anchor_book(closest: &ClosestItems, seen: &[u32]) -> Option<u32> {
    if seen.is_empty() {
        return None;
    }
    let store = closest.store();
    let centroid = store.centroid(seen);
    let mut best: Option<(u32, f32)> = None;
    for &b in seen {
        let sim = vecops::dot(&centroid, store.embedding(b as usize));
        let better = match best {
            None => true,
            Some((_, best_sim)) => sim > best_sim,
        };
        if better {
            best = Some((b, sim));
        }
    }
    best.map(|(b, _)| b)
}

/// Most-read source: the globally most-borrowed books the user has not
/// read, with their read counts as provenance.
#[derive(Debug, Clone, Copy)]
pub struct MostReadSource<'a> {
    most_read: &'a MostReadItems,
}

impl<'a> MostReadSource<'a> {
    /// Wraps a fitted Most Read Items baseline.
    #[must_use]
    pub fn new(most_read: &'a MostReadItems) -> Self {
        Self { most_read }
    }
}

impl CandidateSource for MostReadSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::MostRead
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        emit_ranked(self.most_read, self.id(), users, pool_size, out, |_, b| {
            Reason::MostRead {
                count: self.most_read.count(BookIdx(b)),
            }
        });
    }
}

/// Per-book primary genre lookup, built once from a corpus and shared
/// by the genre source and the genre-aware filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookGenres {
    primary: Vec<Option<u8>>,
}

impl BookGenres {
    /// Wraps per-book primary genre ids (`None` = no surviving genre).
    #[must_use]
    pub fn new(primary: Vec<Option<u8>>) -> Self {
        Self { primary }
    }

    /// Derives each book's primary genre — its highest-probability
    /// aggregated genre, ties toward the lower genre id — from the
    /// corpus genre profiles.
    #[must_use]
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let primary = corpus
            .books
            .iter()
            .map(|book| {
                book.genres
                    .iter()
                    .max_by(|(ga, pa), (gb, pb)| pa.total_cmp(pb).then(gb.0.cmp(&ga.0)))
                    .map(|&(g, _)| g.0)
            })
            .collect();
        Self { primary }
    }

    /// Number of books covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// True when no books are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// The primary genre of `book`, if it has one.
    #[must_use]
    pub fn primary(&self, book: u32) -> Option<u8> {
        self.primary.get(book as usize).copied().flatten()
    }
}

/// Genre-preference source: unseen books of the user's dominant
/// borrowed genre, in ascending book order. Model-free — it reads only
/// the training matrix and the catalogue's genre profiles.
#[derive(Debug, Clone, Copy)]
pub struct GenrePreferenceSource<'a> {
    genres: &'a BookGenres,
    train: &'a Interactions,
}

impl<'a> GenrePreferenceSource<'a> {
    /// Wraps the catalogue genre lookup and the training matrix.
    #[must_use]
    pub fn new(genres: &'a BookGenres, train: &'a Interactions) -> Self {
        Self { genres, train }
    }

    /// The user's dominant genre: the most frequent primary genre among
    /// their borrowed books, ties toward the lower genre id. `None` for
    /// an empty history or one with no genre-labelled books.
    #[must_use]
    pub fn dominant_genre(&self, user: UserIdx) -> Option<u8> {
        let mut counts = [0u32; 256];
        for &b in self.train.seen(user) {
            if let Some(g) = self.genres.primary(b) {
                counts[usize::from(g)] += 1;
            }
        }
        let (best, n) = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        (*n > 0).then_some(best as u8)
    }
}

impl CandidateSource for GenrePreferenceSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::GenrePreference
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        out.resize_with(users.len(), Vec::new);
        for (&u, slot) in users.iter().zip(out.iter_mut()) {
            slot.clear();
            let Some(genre) = self.dominant_genre(u) else {
                continue;
            };
            let seen = self.train.seen(u);
            let mut seen_iter = seen.iter().copied().peekable();
            for b in 0..self.genres.len() as u32 {
                if seen_iter.peek() == Some(&b) {
                    seen_iter.next();
                    continue;
                }
                if self.genres.primary(b) == Some(genre) {
                    slot.push(Candidate {
                        book: b,
                        source: SourceId::GenrePreference,
                        reason: Reason::GenrePreference { genre },
                    });
                    if slot.len() >= pool_size {
                        break;
                    }
                }
            }
        }
    }
}

/// Wraps any [`Recommender`] as a provenance-neutral source — the
/// terminal Random Items slot, or a test double. Candidates carry
/// [`Reason::Exploration`]: a plain fallback has no model-specific
/// story to tell.
pub struct FallbackSource<'a> {
    slot: ModelSlot,
    model: &'a (dyn Recommender + Sync),
}

impl<'a> FallbackSource<'a> {
    /// Wraps `model` as the source for `slot`.
    #[must_use]
    pub fn new(slot: ModelSlot, model: &'a (dyn Recommender + Sync)) -> Self {
        Self { slot, model }
    }
}

impl CandidateSource for FallbackSource<'_> {
    fn id(&self) -> SourceId {
        SourceId::Fallback(self.slot)
    }

    fn emit_batch(&self, users: &[UserIdx], pool_size: usize, out: &mut Vec<Vec<Candidate>>) {
        emit_ranked(self.model, self.id(), users, pool_size, out, |_, _| {
            Reason::Exploration
        });
    }
}
