//! The rank stage: score the merged pool and keep the top `k`.
//!
//! Reuses the deterministic [`TopK`] selector that backs
//! `rank_by_scores_into` (rm-core), with the same contract: ties break
//! toward the lower book index, and because the merged pool arrives in
//! ascending book order (see [`crate::pipeline::merge`]) pushing it
//! front-to-back reproduces exactly the order a full-catalogue
//! `rank_by_scores` walk would have produced when restricted to the
//! pool. That identity is what makes the default pipeline bit-identical
//! to the legacy fallback chain (DESIGN.md §15).

use super::sources::Candidate;
use rm_util::TopK;

/// Ranks `pool` by `score` and writes the top `k` book indices into
/// `out` (cleared first), best first. `top` is caller-owned scratch so
/// batch serving loops rank without per-call allocation. An empty pool
/// yields an empty `out`.
pub fn rank_pool_into(
    pool: &[Candidate],
    k: usize,
    mut score: impl FnMut(u32) -> f32,
    top: &mut TopK,
    out: &mut Vec<u32>,
) {
    if pool.is_empty() {
        out.clear();
        return;
    }
    let k = k.min(pool.len()).max(1);
    top.reset(k);
    for cand in pool {
        top.push(cand.book, score(cand.book));
    }
    top.drain_sorted_into(out);
}

#[cfg(test)]
mod tests {
    use super::super::sources::{Reason, SourceId};
    use super::*;

    fn pool(books: &[u32]) -> Vec<Candidate> {
        books
            .iter()
            .map(|&book| Candidate {
                book,
                source: SourceId::MostRead,
                reason: Reason::Exploration,
            })
            .collect()
    }

    #[test]
    fn ranks_best_first_with_lower_index_tie_break() {
        let pool = pool(&[1, 3, 5, 7]);
        let mut top = TopK::new(1);
        let mut out = Vec::new();
        // Books 3 and 5 tie; 3 must win the tie.
        let score = |b: u32| match b {
            3 | 5 => 2.0,
            7 => 3.0,
            _ => 1.0,
        };
        rank_pool_into(&pool, 3, score, &mut top, &mut out);
        assert_eq!(out, vec![7, 3, 5]);
    }

    #[test]
    fn empty_pool_yields_empty_ranking() {
        let mut top = TopK::new(1);
        let mut out = vec![42];
        rank_pool_into(&[], 5, |_| 0.0, &mut top, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn k_larger_than_pool_returns_whole_pool_ranked() {
        let pool = pool(&[2, 4]);
        let mut top = TopK::new(1);
        let mut out = Vec::new();
        rank_pool_into(
            &pool,
            usize::MAX,
            |b| f32::from(u16::try_from(b).unwrap()),
            &mut top,
            &mut out,
        );
        assert_eq!(out, vec![4, 2]);
    }
}
