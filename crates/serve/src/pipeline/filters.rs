//! Candidate filters: the business-rule stage of the serving pipeline.
//!
//! After merge/dedup, each [`CandidateFilter`] gets one in-place pass
//! over the pooled candidates (`Vec::retain`-style), in the order the
//! filters were configured. Filters are pure functions of the
//! [`FilterCtx`] and the pool — no I/O, no clock — so a fixed
//! configuration filters identically on every run (DESIGN.md §15).
//! A filter that lacks its inputs (e.g. a genre filter with no
//! [`BookGenres`] configured) must degrade to a no-op rather than
//! guess.

use super::sources::{BookGenres, Candidate};
use rm_dataset::ids::UserIdx;
use std::fmt;

/// Per-user inputs a filter may consult.
#[derive(Debug, Clone, Copy)]
pub struct FilterCtx<'a> {
    /// The user being served.
    pub user: UserIdx,
    /// The user's training-set reading history, ascending book order.
    pub seen: &'a [u32],
    /// Catalogue genre lookup, when the engine was configured with one.
    pub genres: Option<&'a BookGenres>,
}

/// One business rule applied to the merged candidate pool.
pub trait CandidateFilter: Send + Sync + fmt::Debug {
    /// Short identifier for logs and diagnostics.
    fn name(&self) -> &'static str;

    /// Drops candidates from `pool` in place. The pool arrives in
    /// ascending book order (the merge stage's output order) and the
    /// relative order of survivors must be preserved.
    fn retain(&self, ctx: &FilterCtx<'_>, pool: &mut Vec<Candidate>);
}

/// Drops books the user has already borrowed. Every bundled source
/// excludes the seen set on its own; this filter is the safety net for
/// external sources that do not.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlreadyBorrowedFilter;

impl CandidateFilter for AlreadyBorrowedFilter {
    fn name(&self) -> &'static str {
        "already-borrowed"
    }

    fn retain(&self, ctx: &FilterCtx<'_>, pool: &mut Vec<Candidate>) {
        pool.retain(|c| ctx.seen.binary_search(&c.book).is_err());
    }
}

/// Keeps only books whose primary genre is on an allowlist — the
/// "language/type" style catalogue restriction (e.g. a children's-room
/// kiosk that only surfaces a few genres). No-op when the engine has no
/// [`BookGenres`] configured.
#[derive(Debug, Clone)]
pub struct GenreFilter {
    allowed: Vec<u8>,
}

impl GenreFilter {
    /// Restricts candidates to the given aggregated genre ids.
    #[must_use]
    pub fn new(mut allowed: Vec<u8>) -> Self {
        allowed.sort_unstable();
        allowed.dedup();
        Self { allowed }
    }
}

impl CandidateFilter for GenreFilter {
    fn name(&self) -> &'static str {
        "genre"
    }

    fn retain(&self, ctx: &FilterCtx<'_>, pool: &mut Vec<Candidate>) {
        let Some(genres) = ctx.genres else {
            return;
        };
        pool.retain(|c| {
            genres
                .primary(c.book)
                .is_some_and(|g| self.allowed.binary_search(&g).is_ok())
        });
    }
}

/// Caps how many candidates any single primary genre may contribute, so
/// one dominant genre cannot crowd the pool. The pool arrives in
/// ascending book order, so the surviving books per genre are the
/// lowest-indexed ones — deterministic by construction. Books with no
/// primary genre share one "unknown" bucket. No-op when the engine has
/// no [`BookGenres`] configured.
#[derive(Debug, Clone, Copy)]
pub struct DiversityCapFilter {
    max_per_genre: usize,
}

impl DiversityCapFilter {
    /// Caps each primary genre's pool share at `max_per_genre`.
    #[must_use]
    pub fn new(max_per_genre: usize) -> Self {
        Self { max_per_genre }
    }
}

impl CandidateFilter for DiversityCapFilter {
    fn name(&self) -> &'static str {
        "diversity-cap"
    }

    fn retain(&self, ctx: &FilterCtx<'_>, pool: &mut Vec<Candidate>) {
        let Some(genres) = ctx.genres else {
            return;
        };
        // 256 genre buckets plus one for books without a primary genre.
        let mut counts = [0usize; 257];
        pool.retain(|c| {
            let bucket = genres.primary(c.book).map_or(256, usize::from);
            counts[bucket] += 1;
            counts[bucket] <= self.max_per_genre
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::sources::{Reason, SourceId};
    use super::*;

    fn cand(book: u32) -> Candidate {
        Candidate {
            book,
            source: SourceId::MostRead,
            reason: Reason::Exploration,
        }
    }

    fn genres() -> BookGenres {
        // books 0,1,2 -> genre 0; book 3 -> genre 1; book 4 -> unlabelled.
        BookGenres::new(vec![Some(0), Some(0), Some(0), Some(1), None])
    }

    fn ctx<'a>(seen: &'a [u32], genres: Option<&'a BookGenres>) -> FilterCtx<'a> {
        FilterCtx {
            user: UserIdx(0),
            seen,
            genres,
        }
    }

    #[test]
    fn already_borrowed_drops_seen_books() {
        let mut pool = vec![cand(1), cand(2), cand(3)];
        AlreadyBorrowedFilter.retain(&ctx(&[0, 2], None), &mut pool);
        let books: Vec<u32> = pool.iter().map(|c| c.book).collect();
        assert_eq!(books, vec![1, 3]);
    }

    #[test]
    fn genre_filter_keeps_allowed_genres_only() {
        let g = genres();
        let mut pool = vec![cand(0), cand(3), cand(4)];
        GenreFilter::new(vec![1]).retain(&ctx(&[], Some(&g)), &mut pool);
        let books: Vec<u32> = pool.iter().map(|c| c.book).collect();
        assert_eq!(books, vec![3], "unlabelled books never pass an allowlist");
    }

    #[test]
    fn genre_filter_without_lookup_is_a_noop() {
        let mut pool = vec![cand(0), cand(3)];
        GenreFilter::new(vec![1]).retain(&ctx(&[], None), &mut pool);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn diversity_cap_keeps_lowest_indices_per_genre() {
        let g = genres();
        let mut pool = vec![cand(0), cand(1), cand(2), cand(3)];
        DiversityCapFilter::new(2).retain(&ctx(&[], Some(&g)), &mut pool);
        let books: Vec<u32> = pool.iter().map(|c| c.book).collect();
        assert_eq!(
            books,
            vec![0, 1, 3],
            "genre 0 capped at two, genre 1 untouched"
        );
    }
}
