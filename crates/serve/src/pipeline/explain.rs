//! Per-request explanations rendered from candidate provenance.
//!
//! Every candidate that survives to the final ranking carries the
//! [`SourceId`] and [`Reason`] stamped on it at emission time; an
//! [`Explanation`] is that provenance attached to one recommended book.
//! The serving engine returns them from
//! `ServingEngine::recommend_explained`, and the `explain` CLI
//! subcommand renders them as reader-facing sentences ("because you
//! borrowed X").

use super::sources::{Reason, SourceId};

/// Why one recommended book was recommended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Explanation {
    /// The recommended book.
    pub book: u32,
    /// The source whose provenance won the merge for this book.
    pub source: SourceId,
    /// The source's stated reason.
    pub reason: Reason,
}

impl Explanation {
    /// Renders the reason as a reader-facing sentence fragment. `title`
    /// resolves a book index to a display title (the CLI passes a
    /// corpus-backed closure; tests pass an index formatter).
    #[must_use]
    pub fn render(&self, title: &dyn Fn(u32) -> String) -> String {
        match self.reason {
            Reason::CfNeighbours => {
                "because readers with a borrowing history like yours also read it".to_owned()
            }
            Reason::SimilarToBorrowed { anchor } => {
                format!("because you borrowed {}", title(anchor))
            }
            Reason::MostRead { count } => {
                format!("because it is one of the library's most-read books ({count} readings)")
            }
            Reason::GenrePreference { genre } => {
                format!("because you often borrow books of genre #{genre}")
            }
            Reason::Exploration => "an exploration pick to broaden your shelf".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_anchor_title_for_content_similarity() {
        let ex = Explanation {
            book: 4,
            source: SourceId::ContentSimilar,
            reason: Reason::SimilarToBorrowed { anchor: 9 },
        };
        let rendered = ex.render(&|b| format!("book-{b}"));
        assert_eq!(rendered, "because you borrowed book-9");
    }

    #[test]
    fn renders_read_count_for_popularity() {
        let ex = Explanation {
            book: 1,
            source: SourceId::MostRead,
            reason: Reason::MostRead { count: 37 },
        };
        assert!(ex.render(&|_| String::new()).contains("37 readings"));
    }
}
