//! The candidate-source orchestration pipeline (DESIGN.md §15).
//!
//! The paper's central claim is that *heterogeneous* signals — loans,
//! catalogue content, popularity — beat any single model. The pipeline
//! makes that heterogeneity an explicit serving structure instead of a
//! hard-coded fallback chain:
//!
//! ```text
//! sources ──▶ merge/dedup ──▶ filters ──▶ rank ──▶ top-k + explanations
//! ```
//!
//! * [`sources`] — [`CandidateSource`]s fan out per request, each
//!   emitting a few hundred [`Candidate`]s with provenance (who
//!   proposed the book, and why);
//! * [`merge`] — deterministic pooling, deduplicated by book index with
//!   first-source-wins provenance;
//! * [`filters`] — [`CandidateFilter`] business rules pruning the pool
//!   in place;
//! * [`rank`] — the pooled survivors are re-scored by the primary
//!   source's model and reduced to top-k with the same deterministic
//!   [`rm_util::TopK`] selector the recommenders use;
//! * [`explain`] — surviving provenance becomes per-book
//!   [`Explanation`]s ("because you borrowed X").
//!
//! The engine runs this pipeline inside the existing fault envelope:
//! every source call sits behind the per-slot circuit breaker, panic
//! isolation, and deadline budgets, and the legacy fallback chain is
//! retained as the degraded path for users the pipeline could not
//! serve. With the default configuration (single CF source, no
//! filters) the pipeline's top-k is bit-identical to the legacy chain.

pub mod explain;
pub mod filters;
pub mod merge;
pub mod rank;
pub mod sources;

pub use explain::Explanation;
pub use filters::{
    AlreadyBorrowedFilter, CandidateFilter, DiversityCapFilter, FilterCtx, GenreFilter,
};
pub use merge::merge_into;
pub use rank::rank_pool_into;
pub use sources::{
    anchor_book, AnnCfNeighboursSource, AnnContentSimilarSource, BookGenres, Candidate,
    CandidateSource, CfNeighboursSource, ContentSimilarSource, FallbackSource,
    GenrePreferenceSource, MostReadSource, QuantCfNeighboursSource, Reason, SourceId,
};

use crate::engine::ModelSlot;
use std::sync::Arc;

/// Pipeline-stage configuration carried inside `EngineConfig`.
///
/// The zero-value default — no explicit sources, pool of 256, no
/// filters, no genre lookup — makes the pipeline behave exactly like
/// the legacy fallback chain: the engine derives a single source from
/// the head of the chain and ranks its emission unfiltered.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Slots to run as candidate sources, in priority order (priority
    /// decides merge provenance and the rank-stage scoring model).
    /// `None` derives the single-source default from the fallback
    /// chain's head.
    pub sources: Option<Vec<ModelSlot>>,
    /// Candidates each source may emit per user. The effective pool is
    /// `pool_size.max(k)` so a large request never truncates below `k`.
    pub pool_size: usize,
    /// Business-rule filters, applied in order after the merge.
    pub filters: Vec<Arc<dyn CandidateFilter>>,
    /// Catalogue genre lookup for genre-aware filters and sources.
    pub book_genres: Option<Arc<BookGenres>>,
    /// Posting lists probed per ANN-accelerated source call. Only
    /// consulted when the loaded registry carries a valid ANN artifact;
    /// clamped to the index's list count at search time, so a value of
    /// `usize::MAX` forces exact (bit-identical) retrieval through the
    /// index.
    pub ann_nprobe: usize,
}

/// Default [`PipelineConfig::ann_nprobe`]: with the trainer's `√n`
/// list-count heuristic this probes a fixed slice of the coarse space —
/// small enough to keep retrieval sub-linear at catalogue scale, large
/// enough for high recall on clustered data (see `BENCH_ann.json`).
pub const DEFAULT_ANN_NPROBE: usize = 8;

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            sources: None,
            pool_size: 256,
            filters: Vec::new(),
            book_genres: None,
            ann_nprobe: DEFAULT_ANN_NPROBE,
        }
    }
}
