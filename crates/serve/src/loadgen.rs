//! Deterministic load generator for the serving engine.
//!
//! Library traffic is far from uniform: a handful of readers dominate
//! the request stream (the same long-tail skew the paper observes in
//! loans), and load arrives in diurnal waves with sharp bursts around
//! opening hours. The generator models both:
//!
//! * **Who asks** — users are drawn from a Zipf distribution over the
//!   training matrix ([`ZipfWeights`] + alias table), seeded so every
//!   run issues the identical request schedule.
//! * **When they ask** — a base request rate is modulated by a cycle of
//!   phase multipliers (`phases`), so a schedule like `[1, 1, 10, 1]`
//!   produces a 10× burst every third phase.
//!
//! Arrivals are issued **open-loop** (requests keep arriving on
//! schedule whether or not the engine keeps up — the regime where
//! overload happens) or **closed-loop** (the next request waits for the
//! previous answer — the regime where latency is measured unqueued).
//! All time flows through the engine's [`Clock`](rm_util::clock::Clock),
//! so a [`FakeClock`](rm_util::clock::FakeClock) plus
//! [`OverloadConfig::service_cost`](crate::overload::OverloadConfig::service_cost)
//! makes the whole experiment a discrete-event simulation: byte-identical
//! reports on every run, which is what lets `BENCH_serve.json` act as a
//! committed SLO gate.
//!
//! The resulting [`LoadReport`] carries latency quantiles, shed counts,
//! availability (answered ÷ non-shed requests), brownout-level
//! residency, and the [`SloSpec`] verdict.

use crate::engine::ServingEngine;
use crate::overload::DegradationLevel;
use rm_dataset::ids::UserIdx;
use rm_util::report::fmt_f64;
use rm_util::rng::rng_from_seed;
use rm_util::sample::ZipfWeights;
use rm_util::stats::Histogram;
use rm_util::RecError;
use std::fmt::Write as _;
use std::time::Duration;

/// Service-level objective a load run is judged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Highest acceptable p99 admission-to-answer latency.
    pub p99_limit: Duration,
    /// Lowest acceptable availability (answered ÷ non-shed requests).
    /// Shedding is the *mechanism* that protects this floor: a shed
    /// request is an explicit, fast "no" rather than a timeout, so it
    /// counts against [`LoadReport::shed_rate`], not availability.
    pub availability_floor: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            p99_limit: Duration::from_millis(50),
            availability_floor: 0.999,
        }
    }
}

/// How the generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Requests arrive on schedule regardless of engine progress; the
    /// admission queue absorbs (and sheds) the excess.
    Open,
    /// Each request waits for the previous answer — no queueing, the
    /// baseline latency regime.
    Closed,
}

impl ArrivalMode {
    /// Stable lowercase label (reports, CLI flags).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Open => "open",
            Self::Closed => "closed",
        }
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Recommendations per request.
    pub k: usize,
    /// Zipf exponent for the user popularity skew (1.0 ≈ classic Zipf).
    pub zipf_exponent: f64,
    /// Zipf-Mandelbrot shift (0.0 for the classic law).
    pub zipf_shift: f64,
    /// Seed for the user-draw RNG (the schedule is otherwise fixed).
    pub seed: u64,
    /// Baseline arrival rate, requests per second.
    pub base_rps: f64,
    /// Rate multipliers cycled per phase — the diurnal/burst shape.
    /// `[1.0]` is a flat schedule; `[1.0, 10.0]` alternates calm and
    /// 10× burst phases.
    pub phases: Vec<f64>,
    /// Wall-clock length of one phase.
    pub phase_len: Duration,
    /// Open- or closed-loop pacing.
    pub mode: ArrivalMode,
    /// Objective the report is judged against.
    pub slo: SloSpec,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            requests: 400,
            k: 10,
            zipf_exponent: 1.0,
            zipf_shift: 0.0,
            seed: 42,
            base_rps: 200.0,
            phases: vec![1.0],
            phase_len: Duration::from_millis(250),
            mode: ArrivalMode::Open,
            slo: SloSpec::default(),
        }
    }
}

impl LoadgenConfig {
    /// Rate multiplier in force at absolute time `at`.
    fn phase_multiplier(&self, at: Duration) -> f64 {
        if self.phases.is_empty() {
            return 1.0;
        }
        let idx = (at.as_nanos() / self.phase_len.as_nanos().max(1)) as usize % self.phases.len();
        self.phases[idx]
    }

    /// Gap between an arrival at `at` and the next one.
    fn inter_arrival(&self, at: Duration) -> Duration {
        let rate = (self.base_rps * self.phase_multiplier(at)).max(1e-9);
        Duration::from_nanos((1e9 / rate).round() as u64)
    }
}

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Pacing mode the run used.
    pub mode: ArrivalMode,
    /// Requests issued.
    pub requests: u64,
    /// Requests that got a recommendation list.
    pub answered: u64,
    /// Requests shed by admission control (at offer or at the queue
    /// head).
    pub shed: u64,
    /// Admission-to-answer latency of answered requests, nanoseconds.
    pub latency: Histogram,
    /// Per-level queue residency over the run, nanoseconds.
    pub level_residency_ns: [u64; DegradationLevel::COUNT],
    /// Per-level ladder entries over the run.
    pub level_entries: [u64; DegradationLevel::COUNT],
    /// Deepest brownout level the run reached.
    pub max_level: DegradationLevel,
    /// Objective the run was judged against.
    pub slo: SloSpec,
    /// Simulated wall time of the whole run, nanoseconds.
    pub elapsed_ns: u64,
}

impl LoadReport {
    /// Shed requests as a share of all issued requests.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    /// Answered share of the requests admission control let through.
    /// `1.0` on an idle engine and — by design — still `1.0` under
    /// overload: excess load surfaces as shedding, not failures.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let attempted = self.requests.saturating_sub(self.shed);
        if attempted == 0 {
            1.0
        } else {
            self.answered as f64 / attempted as f64
        }
    }

    /// p99 admission-to-answer latency.
    #[must_use]
    pub fn p99(&self) -> Duration {
        Duration::from_nanos(self.latency.quantile(0.99))
    }

    /// Whether the run met its [`SloSpec`].
    #[must_use]
    pub fn slo_met(&self) -> bool {
        self.availability() >= self.slo.availability_floor && self.p99() <= self.slo.p99_limit
    }

    /// Renders the report as JSON. Every field is either an integer
    /// count of nanoseconds/requests or a fixed-precision decimal, so a
    /// deterministic (fake-clock) run renders byte-identically — the
    /// property the committed `BENCH_serve.json` gate relies on.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode.label());
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"answered\": {},", self.answered);
        let _ = writeln!(s, "  \"shed\": {},", self.shed);
        let _ = writeln!(s, "  \"shed_rate\": {},", fmt_f64(self.shed_rate(), 4));
        let _ = writeln!(
            s,
            "  \"availability\": {},",
            fmt_f64(self.availability(), 4)
        );
        let _ = writeln!(s, "  \"latency_ns\": {{");
        let _ = writeln!(s, "    \"p50\": {},", self.latency.quantile(0.50));
        let _ = writeln!(s, "    \"p95\": {},", self.latency.quantile(0.95));
        let _ = writeln!(s, "    \"p99\": {},", self.latency.quantile(0.99));
        let _ = writeln!(s, "    \"max\": {}", self.latency.max());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"max_level\": \"{}\",", self.max_level.label());
        let _ = writeln!(s, "  \"levels\": [");
        for (i, level) in DegradationLevel::ALL.iter().enumerate() {
            let comma = if i + 1 < DegradationLevel::COUNT {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    {{\"level\": \"{}\", \"entries\": {}, \"residency_ns\": {}}}{comma}",
                level.label(),
                self.level_entries[level.index()],
                self.level_residency_ns[level.index()],
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"slo\": {{");
        let _ = writeln!(
            s,
            "    \"p99_limit_ns\": {},",
            u64::try_from(self.slo.p99_limit.as_nanos()).unwrap_or(u64::MAX)
        );
        let _ = writeln!(
            s,
            "    \"availability_floor\": {},",
            fmt_f64(self.slo.availability_floor, 4)
        );
        let _ = writeln!(s, "    \"met\": {}", self.slo_met());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"elapsed_ns\": {}", self.elapsed_ns);
        s.push_str("}\n");
        s
    }

    /// One-paragraph human summary for CLI output.
    #[must_use]
    pub fn render_summary(&self) -> String {
        format!(
            "loadgen ({}): {} requests, {} answered, {} shed ({} rate); \
             availability {}; p50/p95/p99 = {}/{}/{} us; max level {}; \
             SLO {}",
            self.mode.label(),
            self.requests,
            self.answered,
            self.shed,
            fmt_f64(self.shed_rate(), 3),
            fmt_f64(self.availability(), 4),
            fmt_f64(self.latency.quantile(0.50) as f64 / 1_000.0, 1),
            fmt_f64(self.latency.quantile(0.95) as f64 / 1_000.0, 1),
            fmt_f64(self.latency.quantile(0.99) as f64 / 1_000.0, 1),
            self.max_level.label(),
            if self.slo_met() { "met" } else { "MISSED" },
        )
    }
}

/// Runs the load schedule against `engine` and reports the outcome.
///
/// The engine must have admission control configured
/// ([`EngineConfig::overload`](crate::engine::EngineConfig::overload)) —
/// the generator drives [`ServingEngine::offer`] /
/// [`ServingEngine::serve_queued`] exclusively, so every request crosses
/// the governor. The run is single-threaded discrete-event: at each step
/// all due arrivals are offered, then one queued request is served (the
/// engine's clock advances through simulated or real service time), and
/// when the queue is idle the clock sleeps forward to the next arrival.
///
/// # Errors
///
/// [`RecError::Config`] when the engine has no overload governor.
pub fn run(engine: &ServingEngine, cfg: &LoadgenConfig) -> Result<LoadReport, RecError> {
    let n_users = engine.n_users().max(1);
    let zipf = if cfg.zipf_shift == 0.0 {
        ZipfWeights::new(cfg.zipf_exponent)
    } else {
        ZipfWeights::with_shift(cfg.zipf_exponent, cfg.zipf_shift)
    };
    let alias = zipf.alias_table(n_users);
    let mut rng = rng_from_seed(cfg.seed);
    let clock = &engine.config().clock;

    let started = clock.now();
    let mut latency = Histogram::new();
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut max_level = DegradationLevel::Full;
    let mut issued = 0usize;
    let mut next_arrival = started;

    let record = |outcome: crate::engine::QueuedOutcome,
                  latency: &mut Histogram,
                  answered: &mut u64,
                  shed: &mut u64,
                  max_level: &mut DegradationLevel| {
        if outcome.level > *max_level {
            *max_level = outcome.level;
        }
        match outcome.result {
            Ok(_) => {
                *answered += 1;
                latency.record(u64::try_from(outcome.sojourn.as_nanos()).unwrap_or(u64::MAX));
            }
            Err(_) => *shed += 1,
        }
    };

    match cfg.mode {
        ArrivalMode::Open => loop {
            let now = clock.now();
            while issued < cfg.requests && next_arrival <= now {
                let user = UserIdx(alias.sample(&mut rng) as u32);
                match engine.offer(user, cfg.k) {
                    Ok(()) => {}
                    Err(e @ RecError::Config(_)) => return Err(e),
                    Err(_) => shed += 1,
                }
                let gap = cfg.inter_arrival(next_arrival.saturating_sub(started));
                next_arrival += gap;
                issued += 1;
            }
            if let Some(outcome) = engine.serve_queued() {
                record(
                    outcome,
                    &mut latency,
                    &mut answered,
                    &mut shed,
                    &mut max_level,
                );
            } else if issued < cfg.requests {
                let now = clock.now();
                if next_arrival > now {
                    clock.sleep(next_arrival - now);
                }
            } else {
                break;
            }
        },
        ArrivalMode::Closed => {
            while issued < cfg.requests {
                let user = UserIdx(alias.sample(&mut rng) as u32);
                match engine.offer(user, cfg.k) {
                    Err(e @ RecError::Config(_)) => return Err(e),
                    Err(_) => shed += 1,
                    Ok(()) => {
                        while let Some(outcome) = engine.serve_queued() {
                            record(
                                outcome,
                                &mut latency,
                                &mut answered,
                                &mut shed,
                                &mut max_level,
                            );
                        }
                    }
                }
                issued += 1;
            }
        }
    }
    // Drain any stragglers so the report accounts for every request.
    while let Some(outcome) = engine.serve_queued() {
        record(
            outcome,
            &mut latency,
            &mut answered,
            &mut shed,
            &mut max_level,
        );
    }

    let snapshot = engine.metrics();
    Ok(LoadReport {
        mode: cfg.mode,
        requests: issued as u64,
        answered,
        shed,
        latency,
        level_residency_ns: snapshot.level_residency_ns,
        level_entries: snapshot.level_entries,
        max_level,
        slo: cfg.slo,
        elapsed_ns: u64::try_from(clock.now().saturating_sub(started).as_nanos())
            .unwrap_or(u64::MAX),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_multiplier_cycles_through_schedule() {
        let cfg = LoadgenConfig {
            phases: vec![1.0, 10.0, 2.0],
            phase_len: Duration::from_millis(100),
            ..LoadgenConfig::default()
        };
        assert_eq!(cfg.phase_multiplier(Duration::from_millis(0)), 1.0);
        assert_eq!(cfg.phase_multiplier(Duration::from_millis(150)), 10.0);
        assert_eq!(cfg.phase_multiplier(Duration::from_millis(250)), 2.0);
        // Wraps back around: the diurnal cycle repeats.
        assert_eq!(cfg.phase_multiplier(Duration::from_millis(310)), 1.0);
    }

    #[test]
    fn inter_arrival_tracks_the_burst_phase() {
        let cfg = LoadgenConfig {
            base_rps: 100.0,
            phases: vec![1.0, 10.0],
            phase_len: Duration::from_millis(100),
            ..LoadgenConfig::default()
        };
        assert_eq!(
            cfg.inter_arrival(Duration::from_millis(10)),
            Duration::from_millis(10)
        );
        assert_eq!(
            cfg.inter_arrival(Duration::from_millis(110)),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn report_math_and_json_are_stable() {
        let mut latency = Histogram::new();
        for v in [10_000u64, 20_000, 30_000, 40_000] {
            latency.record(v);
        }
        let report = LoadReport {
            mode: ArrivalMode::Open,
            requests: 10,
            answered: 4,
            shed: 6,
            latency,
            level_residency_ns: [100, 200, 0, 0, 0],
            level_entries: [1, 2, 0, 0, 0],
            max_level: DegradationLevel::DropExpensiveSources,
            slo: SloSpec::default(),
            elapsed_ns: 1_000_000,
        };
        assert!((report.shed_rate() - 0.6).abs() < 1e-12);
        // All four admitted requests answered: availability holds at 1.
        assert!((report.availability() - 1.0).abs() < 1e-12);
        assert!(report.slo_met());
        let a = report.render_json();
        let b = report.render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"shed\": 6"), "{a}");
        assert!(a.contains("\"availability\": 1"), "{a}");
        assert!(a.contains("\"max_level\": \"drop_expensive_sources\""));
        assert!(a.contains("\"met\": true"), "{a}");
        assert!(report.render_summary().contains("SLO met"));
    }

    #[test]
    fn missed_slo_is_reported() {
        let mut latency = Histogram::new();
        latency.record(Duration::from_millis(80).as_nanos() as u64);
        let report = LoadReport {
            mode: ArrivalMode::Closed,
            requests: 2,
            answered: 1,
            shed: 0,
            latency,
            level_residency_ns: [0; DegradationLevel::COUNT],
            level_entries: [0; DegradationLevel::COUNT],
            max_level: DegradationLevel::Full,
            slo: SloSpec::default(),
            elapsed_ns: 0,
        };
        // One admitted request never answered and p99 over budget.
        assert!(report.availability() < 0.999);
        assert!(!report.slo_met());
        assert!(report.render_json().contains("\"met\": false"));
    }
}
