//! Deterministic fault injection for the serving engine (the `testing`
//! feature only — none of this is compiled into default builds).
//!
//! A [`FaultPlan`] describes, per model slot, which calls misbehave and
//! how: panic, report an error, stall for a fixed latency, or corrupt the
//! slot's artifact at save time. The engine consults a [`FaultInjector`]
//! (the plan plus per-slot call counters) immediately before each slot
//! call; the chaos test suite and `serve-bench --chaos` build plans that
//! exercise the circuit breakers, deadline budgets, panic isolation, and
//! crash-safe publication under every failure mode the paper's
//! periodically-retrained deployment could see.
//!
//! Latency is injected through [`Clock::sleep`](rm_util::clock::Clock),
//! so a [`FakeClock`](rm_util::clock::FakeClock) turns injected stalls
//! into instantaneous, deterministic simulated time.

use crate::engine::ModelSlot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A 1-based, half-open range of slot-call indices a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallWindow {
    /// First affected call (1-based, inclusive).
    pub from: u64,
    /// First unaffected call (exclusive; `u64::MAX` = forever).
    pub to: u64,
}

impl CallWindow {
    /// Every call, forever.
    #[must_use]
    pub fn always() -> Self {
        Self {
            from: 1,
            to: u64::MAX,
        }
    }

    /// Only the first `n` calls.
    #[must_use]
    pub fn first(n: u64) -> Self {
        Self {
            from: 1,
            to: n.saturating_add(1),
        }
    }

    /// Every call from the `n`-th (1-based) onwards.
    #[must_use]
    pub fn starting_at(n: u64) -> Self {
        Self {
            from: n,
            to: u64::MAX,
        }
    }

    /// Whether the 1-based call index falls inside the window.
    #[must_use]
    pub fn contains(&self, call: u64) -> bool {
        call >= self.from && call < self.to
    }
}

/// The faults configured for one model slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotFaults {
    /// Calls in this window panic inside the slot.
    pub panic_in: Option<CallWindow>,
    /// Calls in this window report a slot error (no answer, breaker
    /// failure) without panicking.
    pub error_in: Option<CallWindow>,
    /// Fixed stall injected before every call (simulated via the engine
    /// clock's `sleep`).
    pub latency: Option<Duration>,
    /// Corrupt this slot's artifact during
    /// [`ArtifactRegistry::save_with_faults`](crate::registry::ArtifactRegistry::save_with_faults).
    pub corrupt_on_save: bool,
}

/// A full per-slot fault schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults indexed by [`ModelSlot::index`].
    pub slots: [SlotFaults; ModelSlot::COUNT],
}

impl FaultPlan {
    /// A plan injecting nothing (identical to running without one).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The faults configured for `slot`.
    #[must_use]
    pub fn slot(&self, slot: ModelSlot) -> &SlotFaults {
        &self.slots[slot.index()]
    }

    /// Panic on the calls of `slot` inside `window`.
    #[must_use]
    pub fn panic_in(mut self, slot: ModelSlot, window: CallWindow) -> Self {
        self.slots[slot.index()].panic_in = Some(window);
        self
    }

    /// Report slot errors for the calls of `slot` inside `window`.
    #[must_use]
    pub fn error_in(mut self, slot: ModelSlot, window: CallWindow) -> Self {
        self.slots[slot.index()].error_in = Some(window);
        self
    }

    /// Stall every call of `slot` by `latency`.
    #[must_use]
    pub fn latency(mut self, slot: ModelSlot, latency: Duration) -> Self {
        self.slots[slot.index()].latency = Some(latency);
        self
    }

    /// Corrupt the artifact of `slot` at save time.
    #[must_use]
    pub fn corrupt_on_save(mut self, slot: ModelSlot) -> Self {
        self.slots[slot.index()].corrupt_on_save = true;
        self
    }

    /// Preset for the overload chaos scenario: the expensive CF slot
    /// panics on every call while the content slot drags — the worst
    /// realistic storm the admission queue and brownout ladder must
    /// absorb without dropping availability.
    #[must_use]
    pub fn overload_storm() -> Self {
        Self::none()
            .panic_in(ModelSlot::Bpr, CallWindow::always())
            .latency(ModelSlot::ClosestItems, Duration::from_millis(1))
    }
}

/// What the injector decided for one slot call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFault {
    /// Stall to apply before the call (via the engine clock).
    pub latency: Option<Duration>,
    /// The call must report a slot error.
    pub error: bool,
    /// The call must panic inside the slot.
    pub panic: bool,
}

/// The runtime side of a [`FaultPlan`]: counts calls per slot and
/// resolves which faults apply to each.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    calls: [AtomicU64; ModelSlot::COUNT],
}

impl FaultInjector {
    /// An injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            calls: Default::default(),
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Calls observed so far for `slot`.
    #[must_use]
    pub fn calls(&self, slot: ModelSlot) -> u64 {
        self.calls[slot.index()].load(Ordering::SeqCst)
    }

    /// Registers one call of `slot` and returns the faults to inject.
    pub fn on_call(&self, slot: ModelSlot) -> InjectedFault {
        let call = self.calls[slot.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let faults = self.plan.slot(slot);
        InjectedFault {
            latency: faults.latency,
            error: faults.error_in.is_some_and(|w| w.contains(call)),
            panic: faults.panic_in.is_some_and(|w| w.contains(call)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_windows_cover_the_right_calls() {
        assert!(CallWindow::always().contains(1));
        assert!(CallWindow::always().contains(u64::MAX - 1));
        assert!(CallWindow::first(2).contains(1));
        assert!(CallWindow::first(2).contains(2));
        assert!(!CallWindow::first(2).contains(3));
        assert!(!CallWindow::starting_at(3).contains(2));
        assert!(CallWindow::starting_at(3).contains(3));
    }

    #[test]
    fn injector_counts_calls_per_slot() {
        let plan = FaultPlan::none()
            .error_in(ModelSlot::Bpr, CallWindow::first(1))
            .panic_in(ModelSlot::MostRead, CallWindow::starting_at(2));
        let inj = FaultInjector::new(plan);

        let first = inj.on_call(ModelSlot::Bpr);
        assert!(first.error && !first.panic);
        let second = inj.on_call(ModelSlot::Bpr);
        assert!(!second.error);

        assert!(!inj.on_call(ModelSlot::MostRead).panic);
        assert!(inj.on_call(ModelSlot::MostRead).panic);
        assert_eq!(inj.calls(ModelSlot::Bpr), 2);
        assert_eq!(inj.calls(ModelSlot::MostRead), 2);
        assert_eq!(inj.calls(ModelSlot::Random), 0);
    }

    #[test]
    fn latency_applies_to_every_call() {
        let plan = FaultPlan::none().latency(ModelSlot::Bpr, Duration::from_millis(7));
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.on_call(ModelSlot::Bpr).latency,
            Some(Duration::from_millis(7))
        );
        assert_eq!(inj.on_call(ModelSlot::ClosestItems).latency, None);
    }
}
