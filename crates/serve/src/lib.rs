//! `rm-serve` — the offline-train / online-serve half of the library
//! recommender.
//!
//! The evaluation crates answer "which model is best?"; this crate
//! answers "how do the trained models face readers?". The lifecycle is:
//!
//! 1. **Train offline** (`reading-machine train --out DIR`): fit BPR,
//!    Most Read Items, and the catalogue embeddings, then persist them
//!    into an [`ArtifactRegistry`] directory with a manifest (epoch +
//!    summary fields).
//! 2. **Serve online**: [`ServingEngine::load`] restores the artifacts
//!    and serves [`ServingEngine::recommend`] /
//!    [`ServingEngine::recommend_batch`] requests through a fallback
//!    chain (BPR → Closest Items → Most Read → Random), with a bounded
//!    LRU cache keyed by `(user, k, model_epoch)` and in-tree request
//!    metrics (latency quantiles, QPS, cache hit ratio, per-slot
//!    serve/fallback counts).
//!
//! A corrupt or missing artifact never takes serving down — the slot
//! degrades, the chain skips it, and the metrics show the fall-throughs.

pub mod cache;
pub mod engine;
pub mod metrics;
pub mod registry;

pub use cache::LruCache;
pub use engine::{EngineConfig, ModelSlot, ServingEngine};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use registry::{ArtifactRegistry, LoadedArtifacts, Manifest, RegistryError, SlotError};
