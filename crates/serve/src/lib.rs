//! `rm-serve` — the offline-train / online-serve half of the library
//! recommender.
//!
//! The evaluation crates answer "which model is best?"; this crate
//! answers "how do the trained models face readers?". The lifecycle is:
//!
//! 1. **Train offline** (`reading-machine train --out DIR`): fit BPR,
//!    Most Read Items, and the catalogue embeddings, then persist them
//!    into an [`ArtifactRegistry`] directory with a manifest (epoch +
//!    summary fields).
//! 2. **Serve online**: [`ServingEngine::load`] restores the artifacts
//!    and serves [`ServingEngine::recommend`] /
//!    [`ServingEngine::recommend_batch`] requests through the candidate
//!    [`pipeline`] (provenance-stamped sources → merge/dedup → filters
//!    → rank), with the fallback chain (BPR → Closest Items → Most Read
//!    → Random) retained as the degraded path, a bounded LRU cache
//!    keyed by `(user, k, model_epoch)`, in-tree request metrics
//!    (latency quantiles, QPS, cache hit ratio, per-slot serve/fallback
//!    counts), and per-request explanations via
//!    [`ServingEngine::recommend_explained`].
//!
//! A corrupt or missing artifact never takes serving down — the slot
//! degrades, the chain skips it, and the metrics show the fall-throughs.
//! Runtime failures are contained the same way: slot calls run under
//! panic isolation with optional per-slot deadline budgets, repeated
//! failures open a per-slot [circuit breaker](breaker), artifact
//! publication is atomic and lock-guarded, and `reload` can retry with
//! deterministic backoff while the old epoch keeps serving. The
//! `testing` feature adds a [fault-injection harness](fault) (compiled
//! out of default builds) that the chaos test suite and
//! `serve-bench --chaos` drive.
//!
//! Overload is handled at the edge rather than absorbed: an optional
//! [`overload`] governor puts a bounded admission queue (typed sheds:
//! queue-full, deadline-hopeless, CoDel) and a five-level brownout
//! ladder (full → drop expensive sources → skip filters → legacy
//! fallback → most-read only) in front of the pipeline, and
//! [`loadgen`] replays deterministic Zipf-skewed bursty traffic
//! against it for the standing `serve-bench --loadgen` SLO gate.

pub mod breaker;
pub mod cache;
pub mod engine;
#[cfg(feature = "testing")]
pub mod fault;
pub mod loadgen;
pub mod metrics;
pub mod overload;
pub mod pipeline;
pub mod registry;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::LruCache;
pub use engine::{EngineConfig, EngineConfigBuilder, ModelSlot, ServingEngine};
#[cfg(feature = "testing")]
pub use fault::{CallWindow, FaultPlan};
pub use loadgen::{ArrivalMode, LoadReport, LoadgenConfig, SloSpec};
pub use metrics::{ChunkStats, MetricsSnapshot, ServeMetrics};
pub use overload::{DegradationLevel, LevelTransition, OverloadConfig, ShedReason};
pub use pipeline::{
    CandidateFilter, CandidateSource, Explanation, PipelineConfig, Reason, SourceId,
};
pub use registry::{ArtifactRegistry, LoadedArtifacts, Manifest, RegistryLock, SlotError};
