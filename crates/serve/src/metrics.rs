//! Request metrics for the serving engine.
//!
//! One mutex-guarded accumulator shared by every worker thread: request
//! and cache-hit counters, a quarter-octave latency
//! [`Histogram`](rm_util::stats::Histogram) in nanoseconds, per-slot
//! serve / fallback counts, and the fault-tolerance counters — slot-call
//! timeouts, isolated panics, circuit-breaker skips and state
//! transitions, deadline-exhausted requests, and worker-thread panics.
//! All wall-clock time flows through the engine's
//! [`Clock`](rm_util::clock::Clock), so QPS and elapsed time are exact
//! (and testable) under a fake clock. [`ServeMetrics::snapshot`] clones
//! the state out; [`MetricsSnapshot::render`] formats it with the same
//! [`Table`](rm_util::report::Table) renderer the evaluation reports
//! use, and [`MetricsSnapshot::render_prometheus`] emits the standard
//! text exposition format (counters, gauges, a cumulative-bucket latency
//! histogram, and — when provided — live breaker states).

use crate::breaker::BreakerState;
use crate::engine::ModelSlot;
use crate::overload::{DegradationLevel, ShedReason};
use rm_util::clock::{Clock, MonotonicClock};
use rm_util::report::{fmt_f64, Table};
use rm_util::stats::Histogram;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

#[derive(Debug, Default, Clone)]
struct Counters {
    requests: u64,
    cache_hits: u64,
    latency: Histogram,
    served: [u64; ModelSlot::COUNT],
    fallbacks: [u64; ModelSlot::COUNT],
    timeouts: [u64; ModelSlot::COUNT],
    panics: [u64; ModelSlot::COUNT],
    breaker_skips: [u64; ModelSlot::COUNT],
    breaker_opened: [u64; ModelSlot::COUNT],
    breaker_half_open: [u64; ModelSlot::COUNT],
    breaker_closed: [u64; ModelSlot::COUNT],
    deadline_skips: u64,
    worker_panics: u64,
    shed: [u64; ShedReason::COUNT],
}

/// Everything one served chunk contributes to the counters, accumulated
/// lock-free during the chain walk and folded in under a single lock
/// acquisition by [`ServeMetrics::record_chunk`].
#[derive(Debug, Default, Clone)]
pub struct ChunkStats {
    /// Requests in the chunk.
    pub n: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Wall-clock time serving the chunk (amortised per request).
    pub elapsed: Duration,
    /// Requests served per slot.
    pub served: [u64; ModelSlot::COUNT],
    /// Per-request fall-throughs per slot.
    pub fallbacks: [u64; ModelSlot::COUNT],
    /// Slot *calls* cut off by the per-slot budget.
    pub timeouts: [u64; ModelSlot::COUNT],
    /// Slot *calls* that panicked and were isolated.
    pub panics: [u64; ModelSlot::COUNT],
    /// Slot *calls* skipped because the breaker was open.
    pub breaker_skips: [u64; ModelSlot::COUNT],
    /// Breaker `→ Open` transitions.
    pub breaker_opened: [u64; ModelSlot::COUNT],
    /// Breaker `Open → HalfOpen` transitions (probes admitted).
    pub breaker_half_open: [u64; ModelSlot::COUNT],
    /// Breaker `HalfOpen → Closed` transitions (probes succeeded).
    pub breaker_closed: [u64; ModelSlot::COUNT],
    /// Requests answered empty because the request deadline expired.
    pub deadline_skips: u64,
}

impl ChunkStats {
    /// Stats for a chunk of `n` requests, `hits` of them cache hits.
    #[must_use]
    pub fn new(n: u64, hits: u64) -> Self {
        Self {
            n,
            hits,
            ..Self::default()
        }
    }
}

/// Thread-safe metrics accumulator owned by the engine.
#[derive(Debug)]
pub struct ServeMetrics {
    inner: Mutex<Counters>,
    clock: Arc<dyn Clock>,
    /// Clock reading when the metrics were created or last reset (the
    /// QPS denominator's origin).
    started: Duration,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new(Arc::new(MonotonicClock::new()))
    }
}

impl ServeMetrics {
    /// Fresh metrics; the QPS clock starts at `clock`'s current reading.
    /// The engine passes its own clock so fake-clock tests (and chaos
    /// runs with simulated latency) see consistent QPS and elapsed time.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        let started = clock.now();
        Self {
            inner: Mutex::new(Counters::default()),
            clock,
            started,
        }
    }

    /// Counters are plain accumulators, so a panic that poisoned the
    /// mutex left them merely mid-update — recover the data rather than
    /// letting one isolated panic take metrics (and serving) down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a request answered from the cache.
    pub fn record_hit(&self, latency: Duration) {
        let mut c = self.lock();
        c.requests += 1;
        c.cache_hits += 1;
        c.latency.record(latency.as_nanos() as u64);
    }

    /// Records a request answered by a model. `served` is the slot that
    /// produced the list (`None` when the whole chain came up empty);
    /// `fell_through` are the slots tried before it, each of which counts
    /// as one fallback.
    pub fn record_serve(
        &self,
        latency: Duration,
        served: Option<ModelSlot>,
        fell_through: &[ModelSlot],
    ) {
        let mut c = self.lock();
        c.requests += 1;
        c.latency.record(latency.as_nanos() as u64);
        if let Some(slot) = served {
            c.served[slot.index()] += 1;
        }
        for &slot in fell_through {
            c.fallbacks[slot.index()] += 1;
        }
    }

    /// Folds a whole served chunk into the counters in one lock
    /// acquisition; each of its requests is accounted the amortised
    /// per-request latency. A zero-request chunk records no latency
    /// (there is nothing to amortise over) but its fault counters —
    /// breaker transitions, timeouts — still land.
    pub fn record_chunk(&self, stats: &ChunkStats) {
        let mut c = self.lock();
        c.requests += stats.n;
        c.cache_hits += stats.hits;
        if stats.n > 0 {
            let per_request = (stats.elapsed.as_nanos() / u128::from(stats.n)) as u64;
            c.latency.record_n(per_request, stats.n);
        }
        for i in 0..ModelSlot::COUNT {
            c.served[i] += stats.served[i];
            c.fallbacks[i] += stats.fallbacks[i];
            c.timeouts[i] += stats.timeouts[i];
            c.panics[i] += stats.panics[i];
            c.breaker_skips[i] += stats.breaker_skips[i];
            c.breaker_opened[i] += stats.breaker_opened[i];
            c.breaker_half_open[i] += stats.breaker_half_open[i];
            c.breaker_closed[i] += stats.breaker_closed[i];
        }
        c.deadline_skips += stats.deadline_skips;
    }

    /// Records a batch worker that panicked: its `n` requests were
    /// answered empty so the rest of the batch could still return.
    pub fn record_worker_panic(&self, n: u64) {
        let mut c = self.lock();
        c.requests += n;
        c.worker_panics += 1;
    }

    /// Records a request shed by admission control. Shed requests never
    /// reach a model, so they count here — not in `requests` — and
    /// availability stays the fraction of *admitted* requests answered.
    pub fn record_shed(&self, reason: ShedReason) {
        self.lock().shed[reason.index()] += 1;
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = self.lock().clone();
        MetricsSnapshot {
            requests: c.requests,
            cache_hits: c.cache_hits,
            latency: c.latency,
            served: c.served,
            fallbacks: c.fallbacks,
            timeouts: c.timeouts,
            panics: c.panics,
            breaker_skips: c.breaker_skips,
            breaker_opened: c.breaker_opened,
            breaker_half_open: c.breaker_half_open,
            breaker_closed: c.breaker_closed,
            deadline_skips: c.deadline_skips,
            worker_panics: c.worker_panics,
            shed: c.shed,
            degradation_level: 0,
            level_entries: [0; DegradationLevel::COUNT],
            level_residency_ns: [0; DegradationLevel::COUNT],
            cache_bytes_estimate: 0,
            elapsed: self.clock.now().saturating_sub(self.started),
        }
    }

    /// Zeroes every counter and restarts the QPS clock.
    pub fn reset(&mut self) {
        *self.lock() = Counters::default();
        self.started = self.clock.now();
    }
}

/// An immutable copy of the serving counters.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Total requests (cache hits included).
    pub requests: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Request latency histogram, nanoseconds.
    pub latency: Histogram,
    /// Requests served per model slot (indexed by [`ModelSlot::index`]).
    pub served: [u64; ModelSlot::COUNT],
    /// Fall-throughs per model slot.
    pub fallbacks: [u64; ModelSlot::COUNT],
    /// Slot calls cut off by the per-slot deadline budget.
    pub timeouts: [u64; ModelSlot::COUNT],
    /// Slot calls that panicked and were isolated by the engine.
    pub panics: [u64; ModelSlot::COUNT],
    /// Slot calls skipped by an open circuit breaker.
    pub breaker_skips: [u64; ModelSlot::COUNT],
    /// Circuit-breaker `→ Open` transitions per slot.
    pub breaker_opened: [u64; ModelSlot::COUNT],
    /// Circuit-breaker `Open → HalfOpen` transitions per slot.
    pub breaker_half_open: [u64; ModelSlot::COUNT],
    /// Circuit-breaker `HalfOpen → Closed` transitions per slot.
    pub breaker_closed: [u64; ModelSlot::COUNT],
    /// Requests answered empty because their deadline expired mid-chain.
    pub deadline_skips: u64,
    /// Batch worker threads that panicked (requests degraded to empty).
    pub worker_panics: u64,
    /// Requests shed by admission control, per [`ShedReason::index`].
    /// Shed requests are not in `requests` — they never reached a model.
    pub shed: [u64; ShedReason::COUNT],
    /// Current brownout rung, as [`DegradationLevel::index`] (`0` =
    /// full service). Filled by the engine from its governor; bare
    /// [`ServeMetrics::snapshot`] calls report `0`.
    pub degradation_level: u8,
    /// Ladder transitions *into* each level, per
    /// [`DegradationLevel::index`] (engine-filled, like the gauge).
    pub level_entries: [u64; DegradationLevel::COUNT],
    /// Nanoseconds of residency at each level (engine-filled).
    pub level_residency_ns: [u64; DegradationLevel::COUNT],
    /// Estimated bytes held by the answer cache (entries × answer
    /// length × 4 plus per-entry bookkeeping). Filled by the engine
    /// from its live cache; bare [`ServeMetrics::snapshot`] calls
    /// report `0`.
    pub cache_bytes_estimate: u64,
    /// Clock time since the metrics were created or reset.
    pub elapsed: Duration,
}

impl MetricsSnapshot {
    /// Requests per second over the metrics' lifetime.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// Cache hits over total requests; `0.0` before the first request.
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.requests as f64
    }

    /// Fraction of requests that were answered with a non-degraded
    /// outcome: everything except deadline-exhausted requests, requests
    /// the whole chain failed, and worker-panic blanks. Cache hits and
    /// fallback-served requests count as available.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        let answered = self.cache_hits + self.served.iter().sum::<u64>();
        answered as f64 / self.requests as f64
    }

    /// Total requests shed by admission control, all reasons combined.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Shed requests over everything that arrived (admitted + shed);
    /// `0.0` before the first arrival.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        let arrived = self.requests + self.shed_total();
        if arrived == 0 {
            return 0.0;
        }
        self.shed_total() as f64 / arrived as f64
    }

    /// The latency/throughput summary table.
    #[must_use]
    pub fn latency_table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]);
        t.push_row(["requests".to_owned(), self.requests.to_string()]);
        t.push_row(["qps".to_owned(), fmt_f64(self.qps(), 1)]);
        t.push_row([
            "cache hit ratio".to_owned(),
            fmt_f64(self.cache_hit_ratio(), 3),
        ]);
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            t.push_row([
                format!("latency {label}"),
                fmt_micros(self.latency.quantile(q)),
            ]);
        }
        t.push_row([
            "latency mean".to_owned(),
            fmt_micros(self.latency.mean() as u64),
        ]);
        t.push_row(["latency max".to_owned(), fmt_micros(self.latency.max())]);
        t.push_row(["deadline skips".to_owned(), self.deadline_skips.to_string()]);
        t.push_row(["worker panics".to_owned(), self.worker_panics.to_string()]);
        t.push_row(["shed requests".to_owned(), self.shed_total().to_string()]);
        t.push_row([
            "degradation level".to_owned(),
            DegradationLevel::from_index(self.degradation_level as usize)
                .label()
                .to_owned(),
        ]);
        t
    }

    /// The per-slot serve/fault table, in chain order. `timeouts`,
    /// `panics`, and `brk skips` count slot *calls* (a batched chunk is
    /// one call); `served`/`fallbacks` count requests.
    #[must_use]
    pub fn slot_table(&self) -> Table {
        let mut t = Table::new([
            "model",
            "served",
            "fallbacks",
            "timeouts",
            "panics",
            "brk skips",
        ]);
        for slot in ModelSlot::ALL {
            let i = slot.index();
            t.push_row([
                slot.label().to_owned(),
                self.served[i].to_string(),
                self.fallbacks[i].to_string(),
                self.timeouts[i].to_string(),
                self.panics[i].to_string(),
                self.breaker_skips[i].to_string(),
            ]);
        }
        t
    }

    /// Circuit-breaker transition counts per slot.
    #[must_use]
    pub fn breaker_table(&self) -> Table {
        let mut t = Table::new(["model", "opened", "half-open", "closed"]);
        for slot in ModelSlot::ALL {
            let i = slot.index();
            t.push_row([
                slot.label().to_owned(),
                self.breaker_opened[i].to_string(),
                self.breaker_half_open[i].to_string(),
                self.breaker_closed[i].to_string(),
            ]);
        }
        t
    }

    /// All three tables, ready to print.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}",
            self.latency_table().render(),
            self.slot_table().render(),
            self.breaker_table().render()
        )
    }

    /// Prometheus text exposition of every counter in the snapshot:
    /// totals, gauges, per-slot counters, breaker transition counts, the
    /// latency histogram with cumulative `le` buckets (in seconds), and
    /// — when `breakers` is given — the live breaker state per slot
    /// (`0` closed, `1` half-open, `2` open). The numbers are the same
    /// ones [`MetricsSnapshot::render`] prints as tables.
    #[must_use]
    pub fn render_prometheus(&self, breakers: Option<[BreakerState; ModelSlot::COUNT]>) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
            );
        };
        counter(
            &mut out,
            "rm_serve_requests_total",
            "Total requests (cache hits included).",
            self.requests,
        );
        counter(
            &mut out,
            "rm_serve_cache_hits_total",
            "Requests answered from the LRU cache.",
            self.cache_hits,
        );
        counter(
            &mut out,
            "rm_serve_deadline_skips_total",
            "Requests answered empty because their deadline expired.",
            self.deadline_skips,
        );
        counter(
            &mut out,
            "rm_serve_worker_panics_total",
            "Batch worker threads that panicked.",
            self.worker_panics,
        );
        gauge(
            &mut out,
            "rm_serve_qps",
            "Requests per second since metrics creation or reset.",
            self.qps(),
        );
        gauge(
            &mut out,
            "rm_serve_cache_hit_ratio",
            "Cache hits over total requests.",
            self.cache_hit_ratio(),
        );
        gauge(
            &mut out,
            "rm_serve_availability",
            "Fraction of requests answered non-degraded.",
            self.availability(),
        );
        gauge(
            &mut out,
            "rm_serve_cache_bytes_estimate",
            "Estimated bytes held by the answer cache.",
            self.cache_bytes_estimate as f64,
        );
        counter(
            &mut out,
            "rm_serve_latency_overflow_total",
            "Latency samples saturating the histogram's top bucket.",
            self.latency.overflow(),
        );

        let name = "rm_serve_shed_total";
        let _ = writeln!(
            out,
            "# HELP {name} Requests shed by admission control.\n# TYPE {name} counter"
        );
        for reason in ShedReason::ALL {
            let _ = writeln!(
                out,
                "{name}{{reason=\"{}\"}} {}",
                reason.metric_label(),
                self.shed[reason.index()]
            );
        }
        gauge(
            &mut out,
            "rm_serve_degradation_level",
            "Current brownout rung (0 full service .. 4 most-read only).",
            f64::from(self.degradation_level),
        );
        let per_level: [(&str, &str, &[u64; DegradationLevel::COUNT]); 2] = [
            (
                "rm_serve_degradation_entries_total",
                "Brownout-ladder transitions into each level.",
                &self.level_entries,
            ),
            (
                "rm_serve_degradation_residency_ns_total",
                "Nanoseconds of residency at each brownout level.",
                &self.level_residency_ns,
            ),
        ];
        for (name, help, values) in per_level {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter");
            for level in DegradationLevel::ALL {
                let _ = writeln!(
                    out,
                    "{name}{{level=\"{}\"}} {}",
                    level.label(),
                    values[level.index()]
                );
            }
        }

        let per_slot: [(&str, &str, &[u64; ModelSlot::COUNT]); 8] = [
            (
                "rm_serve_served_total",
                "Requests served per model slot.",
                &self.served,
            ),
            (
                "rm_serve_fallbacks_total",
                "Per-request fall-throughs per model slot.",
                &self.fallbacks,
            ),
            (
                "rm_serve_slot_timeouts_total",
                "Slot calls cut off by the per-slot budget.",
                &self.timeouts,
            ),
            (
                "rm_serve_slot_panics_total",
                "Slot calls that panicked and were isolated.",
                &self.panics,
            ),
            (
                "rm_serve_breaker_skips_total",
                "Slot calls skipped by an open circuit breaker.",
                &self.breaker_skips,
            ),
            (
                "rm_serve_breaker_opened_total",
                "Circuit-breaker transitions to Open.",
                &self.breaker_opened,
            ),
            (
                "rm_serve_breaker_half_open_total",
                "Circuit-breaker transitions to HalfOpen.",
                &self.breaker_half_open,
            ),
            (
                "rm_serve_breaker_closed_total",
                "Circuit-breaker transitions to Closed.",
                &self.breaker_closed,
            ),
        ];
        for (name, help, values) in per_slot {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter");
            for slot in ModelSlot::ALL {
                let _ = writeln!(
                    out,
                    "{name}{{slot=\"{}\"}} {}",
                    slot.metric_label(),
                    values[slot.index()]
                );
            }
        }

        if let Some(states) = breakers {
            let name = "rm_serve_breaker_state";
            let _ = writeln!(
                out,
                "# HELP {name} Live breaker state per slot (0 closed, 1 half-open, 2 open).\n\
                 # TYPE {name} gauge"
            );
            for slot in ModelSlot::ALL {
                let value = match states[slot.index()] {
                    BreakerState::Closed => 0,
                    BreakerState::HalfOpen => 1,
                    BreakerState::Open => 2,
                };
                let _ = writeln!(out, "{name}{{slot=\"{}\"}} {value}", slot.metric_label());
            }
        }

        let name = "rm_serve_request_latency_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} Request latency distribution.\n# TYPE {name} histogram"
        );
        for (upper_ns, cumulative) in self.latency.cumulative_buckets() {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                upper_ns as f64 / 1e9
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.latency.count());
        let _ = writeln!(out, "{name}_sum {}", self.latency.sum() as f64 / 1e9);
        let _ = writeln!(out, "{name}_count {}", self.latency.count());
        out
    }
}

/// Nanoseconds as a human-readable microsecond figure.
fn fmt_micros(nanos: u64) -> String {
    format!("{} us", fmt_f64(nanos as f64 / 1_000.0, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::clock::FakeClock;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::default();
        m.record_serve(Duration::from_micros(100), Some(ModelSlot::Bpr), &[]);
        m.record_serve(
            Duration::from_micros(200),
            Some(ModelSlot::MostRead),
            &[ModelSlot::Bpr, ModelSlot::ClosestItems],
        );
        m.record_hit(Duration::from_micros(1));
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.served[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.served[ModelSlot::MostRead.index()], 1);
        assert_eq!(s.fallbacks[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.fallbacks[ModelSlot::ClosestItems.index()], 1);
        assert_eq!(s.latency.count(), 3);
        assert!((s.cache_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_stats_fold_in_fault_counters() {
        let m = ServeMetrics::default();
        let mut stats = ChunkStats::new(8, 2);
        stats.elapsed = Duration::from_micros(800);
        stats.served[ModelSlot::ClosestItems.index()] = 6;
        stats.fallbacks[ModelSlot::Bpr.index()] = 6;
        stats.timeouts[ModelSlot::Bpr.index()] = 1;
        stats.panics[ModelSlot::Bpr.index()] = 1;
        stats.breaker_skips[ModelSlot::Bpr.index()] = 3;
        stats.breaker_opened[ModelSlot::Bpr.index()] = 1;
        stats.breaker_half_open[ModelSlot::Bpr.index()] = 1;
        stats.breaker_closed[ModelSlot::Bpr.index()] = 1;
        stats.deadline_skips = 2;
        m.record_chunk(&stats);
        m.record_worker_panic(4);

        let s = m.snapshot();
        let i = ModelSlot::Bpr.index();
        assert_eq!(s.requests, 12);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.timeouts[i], 1);
        assert_eq!(s.panics[i], 1);
        assert_eq!(s.breaker_skips[i], 3);
        assert_eq!(s.breaker_opened[i], 1);
        assert_eq!(s.breaker_half_open[i], 1);
        assert_eq!(s.breaker_closed[i], 1);
        assert_eq!(s.deadline_skips, 2);
        assert_eq!(s.worker_panics, 1);
        // 2 hits + 6 served out of 12 requests answered non-degraded.
        assert!((s.availability() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn zero_request_chunk_is_safe_and_keeps_fault_counters() {
        // Regression: `elapsed / n` must not divide by a zero request
        // count — and a zero-request chunk can still carry breaker
        // transitions that must not be silently dropped.
        let m = ServeMetrics::default();
        let mut stats = ChunkStats::new(0, 0);
        stats.elapsed = Duration::from_micros(50);
        stats.breaker_opened[ModelSlot::Bpr.index()] = 1;
        stats.timeouts[ModelSlot::Bpr.index()] = 1;
        m.record_chunk(&stats);
        let s = m.snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.latency.count(), 0, "nothing to amortise latency over");
        assert_eq!(s.breaker_opened[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.timeouts[ModelSlot::Bpr.index()], 1);
    }

    #[test]
    fn qps_and_elapsed_follow_the_injected_clock() {
        let clock = Arc::new(FakeClock::new());
        let m = ServeMetrics::new(Arc::clone(&clock) as Arc<dyn Clock>);
        for _ in 0..30 {
            m.record_hit(Duration::from_micros(2));
        }
        clock.advance(Duration::from_secs(3));
        let s = m.snapshot();
        assert_eq!(s.elapsed, Duration::from_secs(3));
        assert!((s.qps() - 10.0).abs() < 1e-9, "qps = {}", s.qps());
    }

    #[test]
    fn reset_restarts_the_qps_clock() {
        let clock = Arc::new(FakeClock::new());
        let mut m = ServeMetrics::new(Arc::clone(&clock) as Arc<dyn Clock>);
        m.record_hit(Duration::from_micros(5));
        clock.advance(Duration::from_secs(10));
        m.reset();
        clock.advance(Duration::from_secs(2));
        for _ in 0..4 {
            m.record_hit(Duration::from_micros(5));
        }
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.elapsed, Duration::from_secs(2));
        assert!((s.qps() - 2.0).abs() < 1e-9, "qps = {}", s.qps());
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let s = ServeMetrics::default().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.latency.quantile(0.99), 0);
        // QPS may be 0/epsilon but must not be NaN.
        assert!(s.qps().is_finite());
    }

    #[test]
    fn render_mentions_every_headline_number() {
        let m = ServeMetrics::default();
        m.record_serve(Duration::from_micros(50), Some(ModelSlot::Random), &[]);
        let text = m.snapshot().render();
        for needle in [
            "p50",
            "p95",
            "p99",
            "cache hit ratio",
            "qps",
            "Random Items",
            "timeouts",
            "panics",
            "brk skips",
            "half-open",
            "deadline skips",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    /// Pulls the numeric value of `name` (exact match, labels included)
    /// out of a Prometheus text exposition.
    fn prom_value(text: &str, name: &str) -> f64 {
        let line = text
            .lines()
            .find(|l| l.strip_prefix(name).is_some_and(|r| r.starts_with(' ')))
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"));
        line.rsplit(' ').next().unwrap().parse().unwrap()
    }

    #[test]
    fn prometheus_roundtrips_the_snapshot_counters() {
        let clock = Arc::new(FakeClock::new());
        let m = ServeMetrics::new(Arc::clone(&clock) as Arc<dyn Clock>);
        m.record_serve(Duration::from_micros(100), Some(ModelSlot::Bpr), &[]);
        m.record_serve(
            Duration::from_micros(300),
            Some(ModelSlot::MostRead),
            &[ModelSlot::Bpr],
        );
        m.record_hit(Duration::from_micros(1));
        clock.advance(Duration::from_secs(1));
        let s = m.snapshot();
        let text = s.render_prometheus(Some([
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
            BreakerState::Closed,
        ]));

        // Every counter the human-readable tables show round-trips.
        assert_eq!(prom_value(&text, "rm_serve_requests_total"), 3.0);
        assert_eq!(prom_value(&text, "rm_serve_cache_hits_total"), 1.0);
        assert_eq!(
            prom_value(&text, "rm_serve_served_total{slot=\"bpr\"}"),
            s.served[ModelSlot::Bpr.index()] as f64
        );
        assert_eq!(
            prom_value(&text, "rm_serve_served_total{slot=\"most_read\"}"),
            1.0
        );
        assert_eq!(
            prom_value(&text, "rm_serve_fallbacks_total{slot=\"bpr\"}"),
            1.0
        );
        assert!((prom_value(&text, "rm_serve_qps") - s.qps()).abs() < 1e-9);
        assert!(
            (prom_value(&text, "rm_serve_cache_hit_ratio") - s.cache_hit_ratio()).abs() < 1e-12
        );
        // Live breaker states (0 closed / 1 half-open / 2 open).
        assert_eq!(
            prom_value(&text, "rm_serve_breaker_state{slot=\"closest_items\"}"),
            2.0
        );
        assert_eq!(
            prom_value(&text, "rm_serve_breaker_state{slot=\"most_read\"}"),
            1.0
        );
        // Histogram: +Inf bucket, _count, and _sum agree with the data.
        assert_eq!(
            prom_value(
                &text,
                "rm_serve_request_latency_seconds_bucket{le=\"+Inf\"}"
            ),
            3.0
        );
        assert_eq!(
            prom_value(&text, "rm_serve_request_latency_seconds_count"),
            s.latency.count() as f64
        );
        assert!(
            (prom_value(&text, "rm_serve_request_latency_seconds_sum")
                - s.latency.sum() as f64 / 1e9)
                .abs()
                < 1e-12
        );
        // Cumulative buckets never decrease and close at the count.
        let bucket_counts: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("rm_serve_request_latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bucket_counts.last().unwrap(), 3.0);
        // Each metric family is typed exactly once.
        assert_eq!(
            text.matches("# TYPE rm_serve_request_latency_seconds histogram")
                .count(),
            1
        );
    }

    #[test]
    fn prometheus_without_breakers_omits_the_state_gauge() {
        let s = ServeMetrics::default().snapshot();
        let text = s.render_prometheus(None);
        assert!(!text.contains("rm_serve_breaker_state"));
        assert_eq!(
            prom_value(
                &text,
                "rm_serve_request_latency_seconds_bucket{le=\"+Inf\"}"
            ),
            0.0
        );
    }

    #[test]
    fn shed_counters_round_trip_through_prometheus() {
        let m = ServeMetrics::default();
        m.record_shed(ShedReason::QueueFull);
        m.record_shed(ShedReason::QueueFull);
        m.record_shed(ShedReason::DeadlineHopeless);
        m.record_shed(ShedReason::CodelOverload);
        m.record_hit(Duration::from_micros(1));
        let mut s = m.snapshot();
        assert_eq!(s.shed_total(), 4);
        // 4 shed out of 5 arrivals; availability ignores shed entirely.
        assert!((s.shed_rate() - 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.availability(), 1.0);
        // The engine fills the ladder fields from its governor.
        s.degradation_level = DegradationLevel::SkipFilters.index() as u8;
        s.level_entries[DegradationLevel::SkipFilters.index()] = 3;
        s.level_residency_ns[DegradationLevel::Full.index()] = 7_000;
        let text = s.render_prometheus(None);
        assert_eq!(
            prom_value(&text, "rm_serve_shed_total{reason=\"queue_full\"}"),
            2.0
        );
        assert_eq!(
            prom_value(&text, "rm_serve_shed_total{reason=\"deadline\"}"),
            1.0
        );
        assert_eq!(
            prom_value(&text, "rm_serve_shed_total{reason=\"codel\"}"),
            1.0
        );
        assert_eq!(prom_value(&text, "rm_serve_degradation_level"), 2.0);
        assert_eq!(
            prom_value(
                &text,
                "rm_serve_degradation_entries_total{level=\"skip_filters\"}"
            ),
            3.0
        );
        assert_eq!(
            prom_value(
                &text,
                "rm_serve_degradation_residency_ns_total{level=\"full\"}"
            ),
            7_000.0
        );
        let table = s.render();
        assert!(table.contains("shed requests"), "{table}");
        assert!(table.contains("skip_filters"), "{table}");
    }

    #[test]
    fn histogram_overflow_is_exposed() {
        let m = ServeMetrics::default();
        // A sample at the histogram's saturation point (>= 2^62 ns) must
        // be counted explicitly, not silently folded into the top bucket.
        m.record_hit(Duration::from_nanos(1 << 62));
        m.record_hit(Duration::from_micros(3));
        let s = m.snapshot();
        assert_eq!(s.latency.overflow(), 1);
        let text = s.render_prometheus(None);
        assert_eq!(prom_value(&text, "rm_serve_latency_overflow_total"), 1.0);
    }

    #[test]
    fn reset_zeroes_and_restarts() {
        let mut m = ServeMetrics::default();
        m.record_hit(Duration::from_micros(5));
        m.reset();
        assert_eq!(m.snapshot().requests, 0);
    }
}
