//! Request metrics for the serving engine.
//!
//! One mutex-guarded accumulator shared by every worker thread: request
//! and cache-hit counters, a quarter-octave latency
//! [`Histogram`](rm_util::stats::Histogram) in nanoseconds, and per-slot
//! serve / fallback counts. [`ServeMetrics::snapshot`] clones the state
//! out; [`MetricsSnapshot::render`] formats it with the same
//! [`Table`](rm_util::report::Table) renderer the evaluation reports use.

use crate::engine::ModelSlot;
use rm_util::report::{fmt_f64, Table};
use rm_util::stats::Histogram;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Default, Clone)]
struct Counters {
    requests: u64,
    cache_hits: u64,
    latency: Histogram,
    served: [u64; ModelSlot::COUNT],
    fallbacks: [u64; ModelSlot::COUNT],
}

/// Thread-safe metrics accumulator owned by the engine.
#[derive(Debug)]
pub struct ServeMetrics {
    inner: Mutex<Counters>,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; the QPS clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Counters::default()),
            started: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.inner.lock().expect("metrics mutex poisoned")
    }

    /// Records a request answered from the cache.
    pub fn record_hit(&self, latency: Duration) {
        let mut c = self.lock();
        c.requests += 1;
        c.cache_hits += 1;
        c.latency.record(latency.as_nanos() as u64);
    }

    /// Records a request answered by a model. `served` is the slot that
    /// produced the list (`None` when the whole chain came up empty);
    /// `fell_through` are the slots tried before it, each of which counts
    /// as one fallback.
    pub fn record_serve(
        &self,
        latency: Duration,
        served: Option<ModelSlot>,
        fell_through: &[ModelSlot],
    ) {
        let mut c = self.lock();
        c.requests += 1;
        c.latency.record(latency.as_nanos() as u64);
        if let Some(slot) = served {
            c.served[slot.index()] += 1;
        }
        for &slot in fell_through {
            c.fallbacks[slot.index()] += 1;
        }
    }

    /// Records a whole served chunk in one lock acquisition: `n` requests
    /// taking `elapsed` total (each accounted the amortised per-request
    /// latency), `hits` of them from the cache, plus per-slot serve and
    /// fall-through counts.
    pub fn record_chunk(
        &self,
        elapsed: Duration,
        n: u64,
        hits: u64,
        served: &[u64; ModelSlot::COUNT],
        fallbacks: &[u64; ModelSlot::COUNT],
    ) {
        if n == 0 {
            return;
        }
        let per_request = (elapsed.as_nanos() / u128::from(n)) as u64;
        let mut c = self.lock();
        c.requests += n;
        c.cache_hits += hits;
        c.latency.record_n(per_request, n);
        for i in 0..ModelSlot::COUNT {
            c.served[i] += served[i];
            c.fallbacks[i] += fallbacks[i];
        }
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = self.lock().clone();
        MetricsSnapshot {
            requests: c.requests,
            cache_hits: c.cache_hits,
            latency: c.latency,
            served: c.served,
            fallbacks: c.fallbacks,
            elapsed: self.started.elapsed(),
        }
    }

    /// Zeroes every counter and restarts the QPS clock.
    pub fn reset(&mut self) {
        *self.lock() = Counters::default();
        self.started = Instant::now();
    }
}

/// An immutable copy of the serving counters.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Total requests (cache hits included).
    pub requests: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Request latency histogram, nanoseconds.
    pub latency: Histogram,
    /// Requests served per model slot (indexed by [`ModelSlot::index`]).
    pub served: [u64; ModelSlot::COUNT],
    /// Fall-throughs per model slot.
    pub fallbacks: [u64; ModelSlot::COUNT],
    /// Wall-clock time since the metrics were created or reset.
    pub elapsed: Duration,
}

impl MetricsSnapshot {
    /// Requests per second over the metrics' lifetime.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// Cache hits over total requests; `0.0` before the first request.
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.requests as f64
    }

    /// The latency/throughput summary table.
    #[must_use]
    pub fn latency_table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]);
        t.push_row(["requests".to_owned(), self.requests.to_string()]);
        t.push_row(["qps".to_owned(), fmt_f64(self.qps(), 1)]);
        t.push_row([
            "cache hit ratio".to_owned(),
            fmt_f64(self.cache_hit_ratio(), 3),
        ]);
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            t.push_row([
                format!("latency {label}"),
                fmt_micros(self.latency.quantile(q)),
            ]);
        }
        t.push_row([
            "latency mean".to_owned(),
            fmt_micros(self.latency.mean() as u64),
        ]);
        t.push_row(["latency max".to_owned(), fmt_micros(self.latency.max())]);
        t
    }

    /// The per-slot serve/fallback table, in chain order.
    #[must_use]
    pub fn slot_table(&self) -> Table {
        let mut t = Table::new(["model", "served", "fallbacks"]);
        for slot in ModelSlot::ALL {
            t.push_row([
                slot.label().to_owned(),
                self.served[slot.index()].to_string(),
                self.fallbacks[slot.index()].to_string(),
            ]);
        }
        t
    }

    /// Both tables, ready to print.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.latency_table().render(),
            self.slot_table().render()
        )
    }
}

/// Nanoseconds as a human-readable microsecond figure.
fn fmt_micros(nanos: u64) -> String {
    format!("{} us", fmt_f64(nanos as f64 / 1_000.0, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_serve(Duration::from_micros(100), Some(ModelSlot::Bpr), &[]);
        m.record_serve(
            Duration::from_micros(200),
            Some(ModelSlot::MostRead),
            &[ModelSlot::Bpr, ModelSlot::ClosestItems],
        );
        m.record_hit(Duration::from_micros(1));
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.served[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.served[ModelSlot::MostRead.index()], 1);
        assert_eq!(s.fallbacks[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.fallbacks[ModelSlot::ClosestItems.index()], 1);
        assert_eq!(s.latency.count(), 3);
        assert!((s.cache_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let s = ServeMetrics::new().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.latency.quantile(0.99), 0);
        // QPS may be 0/epsilon but must not be NaN.
        assert!(s.qps().is_finite());
    }

    #[test]
    fn render_mentions_every_headline_number() {
        let m = ServeMetrics::new();
        m.record_serve(Duration::from_micros(50), Some(ModelSlot::Random), &[]);
        let text = m.snapshot().render();
        for needle in [
            "p50",
            "p95",
            "p99",
            "cache hit ratio",
            "qps",
            "Random Items",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn reset_zeroes_and_restarts() {
        let mut m = ServeMetrics::new();
        m.record_hit(Duration::from_micros(5));
        m.reset();
        assert_eq!(m.snapshot().requests, 0);
    }
}
