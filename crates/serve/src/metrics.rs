//! Request metrics for the serving engine.
//!
//! One mutex-guarded accumulator shared by every worker thread: request
//! and cache-hit counters, a quarter-octave latency
//! [`Histogram`](rm_util::stats::Histogram) in nanoseconds, per-slot
//! serve / fallback counts, and the fault-tolerance counters — slot-call
//! timeouts, isolated panics, circuit-breaker skips and state
//! transitions, deadline-exhausted requests, and worker-thread panics.
//! [`ServeMetrics::snapshot`] clones the state out;
//! [`MetricsSnapshot::render`] formats it with the same
//! [`Table`](rm_util::report::Table) renderer the evaluation reports use.

use crate::engine::ModelSlot;
use rm_util::report::{fmt_f64, Table};
use rm_util::stats::Histogram;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

#[derive(Debug, Default, Clone)]
struct Counters {
    requests: u64,
    cache_hits: u64,
    latency: Histogram,
    served: [u64; ModelSlot::COUNT],
    fallbacks: [u64; ModelSlot::COUNT],
    timeouts: [u64; ModelSlot::COUNT],
    panics: [u64; ModelSlot::COUNT],
    breaker_skips: [u64; ModelSlot::COUNT],
    breaker_opened: [u64; ModelSlot::COUNT],
    breaker_half_open: [u64; ModelSlot::COUNT],
    breaker_closed: [u64; ModelSlot::COUNT],
    deadline_skips: u64,
    worker_panics: u64,
}

/// Everything one served chunk contributes to the counters, accumulated
/// lock-free during the chain walk and folded in under a single lock
/// acquisition by [`ServeMetrics::record_chunk`].
#[derive(Debug, Default, Clone)]
pub struct ChunkStats {
    /// Requests in the chunk.
    pub n: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Wall-clock time serving the chunk (amortised per request).
    pub elapsed: Duration,
    /// Requests served per slot.
    pub served: [u64; ModelSlot::COUNT],
    /// Per-request fall-throughs per slot.
    pub fallbacks: [u64; ModelSlot::COUNT],
    /// Slot *calls* cut off by the per-slot budget.
    pub timeouts: [u64; ModelSlot::COUNT],
    /// Slot *calls* that panicked and were isolated.
    pub panics: [u64; ModelSlot::COUNT],
    /// Slot *calls* skipped because the breaker was open.
    pub breaker_skips: [u64; ModelSlot::COUNT],
    /// Breaker `→ Open` transitions.
    pub breaker_opened: [u64; ModelSlot::COUNT],
    /// Breaker `Open → HalfOpen` transitions (probes admitted).
    pub breaker_half_open: [u64; ModelSlot::COUNT],
    /// Breaker `HalfOpen → Closed` transitions (probes succeeded).
    pub breaker_closed: [u64; ModelSlot::COUNT],
    /// Requests answered empty because the request deadline expired.
    pub deadline_skips: u64,
}

impl ChunkStats {
    /// Stats for a chunk of `n` requests, `hits` of them cache hits.
    #[must_use]
    pub fn new(n: u64, hits: u64) -> Self {
        Self {
            n,
            hits,
            ..Self::default()
        }
    }
}

/// Thread-safe metrics accumulator owned by the engine.
#[derive(Debug)]
pub struct ServeMetrics {
    inner: Mutex<Counters>,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; the QPS clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Counters::default()),
            started: Instant::now(),
        }
    }

    /// Counters are plain accumulators, so a panic that poisoned the
    /// mutex left them merely mid-update — recover the data rather than
    /// letting one isolated panic take metrics (and serving) down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a request answered from the cache.
    pub fn record_hit(&self, latency: Duration) {
        let mut c = self.lock();
        c.requests += 1;
        c.cache_hits += 1;
        c.latency.record(latency.as_nanos() as u64);
    }

    /// Records a request answered by a model. `served` is the slot that
    /// produced the list (`None` when the whole chain came up empty);
    /// `fell_through` are the slots tried before it, each of which counts
    /// as one fallback.
    pub fn record_serve(
        &self,
        latency: Duration,
        served: Option<ModelSlot>,
        fell_through: &[ModelSlot],
    ) {
        let mut c = self.lock();
        c.requests += 1;
        c.latency.record(latency.as_nanos() as u64);
        if let Some(slot) = served {
            c.served[slot.index()] += 1;
        }
        for &slot in fell_through {
            c.fallbacks[slot.index()] += 1;
        }
    }

    /// Folds a whole served chunk into the counters in one lock
    /// acquisition; each of its requests is accounted the amortised
    /// per-request latency.
    pub fn record_chunk(&self, stats: &ChunkStats) {
        if stats.n == 0 {
            return;
        }
        let per_request = (stats.elapsed.as_nanos() / u128::from(stats.n)) as u64;
        let mut c = self.lock();
        c.requests += stats.n;
        c.cache_hits += stats.hits;
        c.latency.record_n(per_request, stats.n);
        for i in 0..ModelSlot::COUNT {
            c.served[i] += stats.served[i];
            c.fallbacks[i] += stats.fallbacks[i];
            c.timeouts[i] += stats.timeouts[i];
            c.panics[i] += stats.panics[i];
            c.breaker_skips[i] += stats.breaker_skips[i];
            c.breaker_opened[i] += stats.breaker_opened[i];
            c.breaker_half_open[i] += stats.breaker_half_open[i];
            c.breaker_closed[i] += stats.breaker_closed[i];
        }
        c.deadline_skips += stats.deadline_skips;
    }

    /// Records a batch worker that panicked: its `n` requests were
    /// answered empty so the rest of the batch could still return.
    pub fn record_worker_panic(&self, n: u64) {
        let mut c = self.lock();
        c.requests += n;
        c.worker_panics += 1;
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = self.lock().clone();
        MetricsSnapshot {
            requests: c.requests,
            cache_hits: c.cache_hits,
            latency: c.latency,
            served: c.served,
            fallbacks: c.fallbacks,
            timeouts: c.timeouts,
            panics: c.panics,
            breaker_skips: c.breaker_skips,
            breaker_opened: c.breaker_opened,
            breaker_half_open: c.breaker_half_open,
            breaker_closed: c.breaker_closed,
            deadline_skips: c.deadline_skips,
            worker_panics: c.worker_panics,
            elapsed: self.started.elapsed(),
        }
    }

    /// Zeroes every counter and restarts the QPS clock.
    pub fn reset(&mut self) {
        *self.lock() = Counters::default();
        self.started = Instant::now();
    }
}

/// An immutable copy of the serving counters.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Total requests (cache hits included).
    pub requests: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Request latency histogram, nanoseconds.
    pub latency: Histogram,
    /// Requests served per model slot (indexed by [`ModelSlot::index`]).
    pub served: [u64; ModelSlot::COUNT],
    /// Fall-throughs per model slot.
    pub fallbacks: [u64; ModelSlot::COUNT],
    /// Slot calls cut off by the per-slot deadline budget.
    pub timeouts: [u64; ModelSlot::COUNT],
    /// Slot calls that panicked and were isolated by the engine.
    pub panics: [u64; ModelSlot::COUNT],
    /// Slot calls skipped by an open circuit breaker.
    pub breaker_skips: [u64; ModelSlot::COUNT],
    /// Circuit-breaker `→ Open` transitions per slot.
    pub breaker_opened: [u64; ModelSlot::COUNT],
    /// Circuit-breaker `Open → HalfOpen` transitions per slot.
    pub breaker_half_open: [u64; ModelSlot::COUNT],
    /// Circuit-breaker `HalfOpen → Closed` transitions per slot.
    pub breaker_closed: [u64; ModelSlot::COUNT],
    /// Requests answered empty because their deadline expired mid-chain.
    pub deadline_skips: u64,
    /// Batch worker threads that panicked (requests degraded to empty).
    pub worker_panics: u64,
    /// Wall-clock time since the metrics were created or reset.
    pub elapsed: Duration,
}

impl MetricsSnapshot {
    /// Requests per second over the metrics' lifetime.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// Cache hits over total requests; `0.0` before the first request.
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.requests as f64
    }

    /// Fraction of requests that were answered with a non-degraded
    /// outcome: everything except deadline-exhausted requests, requests
    /// the whole chain failed, and worker-panic blanks. Cache hits and
    /// fallback-served requests count as available.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        let answered = self.cache_hits + self.served.iter().sum::<u64>();
        answered as f64 / self.requests as f64
    }

    /// The latency/throughput summary table.
    #[must_use]
    pub fn latency_table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]);
        t.push_row(["requests".to_owned(), self.requests.to_string()]);
        t.push_row(["qps".to_owned(), fmt_f64(self.qps(), 1)]);
        t.push_row([
            "cache hit ratio".to_owned(),
            fmt_f64(self.cache_hit_ratio(), 3),
        ]);
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            t.push_row([
                format!("latency {label}"),
                fmt_micros(self.latency.quantile(q)),
            ]);
        }
        t.push_row([
            "latency mean".to_owned(),
            fmt_micros(self.latency.mean() as u64),
        ]);
        t.push_row(["latency max".to_owned(), fmt_micros(self.latency.max())]);
        t.push_row(["deadline skips".to_owned(), self.deadline_skips.to_string()]);
        t.push_row(["worker panics".to_owned(), self.worker_panics.to_string()]);
        t
    }

    /// The per-slot serve/fault table, in chain order. `timeouts`,
    /// `panics`, and `brk skips` count slot *calls* (a batched chunk is
    /// one call); `served`/`fallbacks` count requests.
    #[must_use]
    pub fn slot_table(&self) -> Table {
        let mut t = Table::new([
            "model",
            "served",
            "fallbacks",
            "timeouts",
            "panics",
            "brk skips",
        ]);
        for slot in ModelSlot::ALL {
            let i = slot.index();
            t.push_row([
                slot.label().to_owned(),
                self.served[i].to_string(),
                self.fallbacks[i].to_string(),
                self.timeouts[i].to_string(),
                self.panics[i].to_string(),
                self.breaker_skips[i].to_string(),
            ]);
        }
        t
    }

    /// Circuit-breaker transition counts per slot.
    #[must_use]
    pub fn breaker_table(&self) -> Table {
        let mut t = Table::new(["model", "opened", "half-open", "closed"]);
        for slot in ModelSlot::ALL {
            let i = slot.index();
            t.push_row([
                slot.label().to_owned(),
                self.breaker_opened[i].to_string(),
                self.breaker_half_open[i].to_string(),
                self.breaker_closed[i].to_string(),
            ]);
        }
        t
    }

    /// All three tables, ready to print.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}",
            self.latency_table().render(),
            self.slot_table().render(),
            self.breaker_table().render()
        )
    }
}

/// Nanoseconds as a human-readable microsecond figure.
fn fmt_micros(nanos: u64) -> String {
    format!("{} us", fmt_f64(nanos as f64 / 1_000.0, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_serve(Duration::from_micros(100), Some(ModelSlot::Bpr), &[]);
        m.record_serve(
            Duration::from_micros(200),
            Some(ModelSlot::MostRead),
            &[ModelSlot::Bpr, ModelSlot::ClosestItems],
        );
        m.record_hit(Duration::from_micros(1));
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.served[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.served[ModelSlot::MostRead.index()], 1);
        assert_eq!(s.fallbacks[ModelSlot::Bpr.index()], 1);
        assert_eq!(s.fallbacks[ModelSlot::ClosestItems.index()], 1);
        assert_eq!(s.latency.count(), 3);
        assert!((s.cache_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_stats_fold_in_fault_counters() {
        let m = ServeMetrics::new();
        let mut stats = ChunkStats::new(8, 2);
        stats.elapsed = Duration::from_micros(800);
        stats.served[ModelSlot::ClosestItems.index()] = 6;
        stats.fallbacks[ModelSlot::Bpr.index()] = 6;
        stats.timeouts[ModelSlot::Bpr.index()] = 1;
        stats.panics[ModelSlot::Bpr.index()] = 1;
        stats.breaker_skips[ModelSlot::Bpr.index()] = 3;
        stats.breaker_opened[ModelSlot::Bpr.index()] = 1;
        stats.breaker_half_open[ModelSlot::Bpr.index()] = 1;
        stats.breaker_closed[ModelSlot::Bpr.index()] = 1;
        stats.deadline_skips = 2;
        m.record_chunk(&stats);
        m.record_worker_panic(4);

        let s = m.snapshot();
        let i = ModelSlot::Bpr.index();
        assert_eq!(s.requests, 12);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.timeouts[i], 1);
        assert_eq!(s.panics[i], 1);
        assert_eq!(s.breaker_skips[i], 3);
        assert_eq!(s.breaker_opened[i], 1);
        assert_eq!(s.breaker_half_open[i], 1);
        assert_eq!(s.breaker_closed[i], 1);
        assert_eq!(s.deadline_skips, 2);
        assert_eq!(s.worker_panics, 1);
        // 2 hits + 6 served out of 12 requests answered non-degraded.
        assert!((s.availability() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let s = ServeMetrics::new().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.latency.quantile(0.99), 0);
        // QPS may be 0/epsilon but must not be NaN.
        assert!(s.qps().is_finite());
    }

    #[test]
    fn render_mentions_every_headline_number() {
        let m = ServeMetrics::new();
        m.record_serve(Duration::from_micros(50), Some(ModelSlot::Random), &[]);
        let text = m.snapshot().render();
        for needle in [
            "p50",
            "p95",
            "p99",
            "cache hit ratio",
            "qps",
            "Random Items",
            "timeouts",
            "panics",
            "brk skips",
            "half-open",
            "deadline skips",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn reset_zeroes_and_restarts() {
        let mut m = ServeMetrics::new();
        m.record_hit(Duration::from_micros(5));
        m.reset();
        assert_eq!(m.snapshot().requests, 0);
    }
}
