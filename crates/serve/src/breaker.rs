//! Per-slot circuit breakers for the serving fallback chain.
//!
//! A breaker protects the chain from a slot that fails *repeatedly at
//! runtime* (panics, timeouts, injected errors) — the complement of the
//! load-time degradation the registry already provides. The state
//! machine:
//!
//! ```text
//!            failures >= threshold
//!   Closed ─────────────────────────▶ Open
//!     ▲                                │ cooldown elapses
//!     │ probe succeeds                 ▼ (next admit)
//!     └────────────────────────── HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! While `Open`, the slot is skipped without being attempted; after
//! [`BreakerConfig::cooldown`] the next request is admitted as a single
//! half-open *probe* (concurrent requests keep skipping), and its
//! outcome decides between closing the breaker and re-opening it. All
//! timing is expressed as readings of the engine's
//! [`Clock`](rm_util::clock::Clock), so tests drive transitions with a
//! fake clock.

use std::time::Duration;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive slot failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// The observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request is admitted.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe request is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Display label for report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half-open",
        }
    }
}

/// A state transition that just happened (for the metrics counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The breaker tripped (`Closed → Open` or a failed probe).
    Opened,
    /// The cooldown elapsed and a probe was admitted (`Open → HalfOpen`).
    HalfOpened,
    /// A probe succeeded (`HalfOpen → Closed`).
    Closed,
}

impl Transition {
    /// The state the breaker moved *to*, as a trace-event label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Opened => "open",
            Self::HalfOpened => "half_open",
            Self::Closed => "closed",
        }
    }
}

/// One slot's breaker. Not internally synchronised — the engine guards
/// its per-slot array with a single mutex.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock reading at which an open breaker starts probing.
    open_until: Duration,
}

impl CircuitBreaker {
    /// A closed breaker with `config` (a zero threshold behaves as one).
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: Duration::ZERO,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive failures recorded since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Asks to send a request through the slot at clock reading `now`.
    ///
    /// Returns whether the request is admitted, plus any transition the
    /// decision caused (an elapsed cooldown moves `Open → HalfOpen` and
    /// admits the caller as the probe).
    pub fn admit(&mut self, now: Duration) -> (bool, Option<Transition>) {
        match self.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open if now >= self.open_until => {
                self.state = BreakerState::HalfOpen;
                (true, Some(Transition::HalfOpened))
            }
            // A probe is in flight (or the cooldown is running): skip.
            BreakerState::Open | BreakerState::HalfOpen => (false, None),
        }
    }

    /// Records a successful slot call admitted earlier.
    pub fn record_success(&mut self) -> Option<Transition> {
        self.consecutive_failures = 0;
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                Some(Transition::Closed)
            }
            BreakerState::Closed | BreakerState::Open => None,
        }
    }

    /// Records a failed slot call (panic, timeout, error) at `now`.
    pub fn record_failure(&mut self, now: Duration) -> Option<Transition> {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                self.consecutive_failures >= self.config.failure_threshold.max(1)
            }
            // Stragglers admitted before the trip change nothing.
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until = now + self.config.cooldown;
            Some(Transition::Opened)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn stays_closed_below_threshold() {
        let mut b = breaker(3, 100);
        let now = Duration::ZERO;
        assert_eq!(b.record_failure(now), None);
        assert_eq!(b.record_failure(now), None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(now).0);
        // A success resets the streak.
        assert_eq!(b.record_success(), None);
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(b.record_failure(now), None);
        assert_eq!(b.record_failure(now), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn opens_at_threshold_and_rejects_during_cooldown() {
        let mut b = breaker(2, 100);
        let now = Duration::ZERO;
        assert_eq!(b.record_failure(now), None);
        assert_eq!(b.record_failure(now), Some(Transition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(Duration::from_millis(50)), (false, None));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = breaker(1, 100);
        b.record_failure(Duration::ZERO);
        let (admitted, t) = b.admit(Duration::from_millis(100));
        assert!(admitted);
        assert_eq!(t, Some(Transition::HalfOpened));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent requests are rejected while the probe is out.
        assert_eq!(b.admit(Duration::from_millis(101)), (false, None));
    }

    #[test]
    fn probe_success_closes() {
        let mut b = breaker(1, 100);
        b.record_failure(Duration::ZERO);
        b.admit(Duration::from_millis(100));
        assert_eq!(b.record_success(), Some(Transition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(Duration::from_millis(101)).0);
    }

    #[test]
    fn probe_failure_reopens_with_fresh_cooldown() {
        let mut b = breaker(1, 100);
        b.record_failure(Duration::ZERO);
        b.admit(Duration::from_millis(100));
        assert_eq!(
            b.record_failure(Duration::from_millis(100)),
            Some(Transition::Opened)
        );
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(Duration::from_millis(150)), (false, None));
        let (admitted, t) = b.admit(Duration::from_millis(200));
        assert!(admitted);
        assert_eq!(t, Some(Transition::HalfOpened));
    }

    #[test]
    fn zero_threshold_behaves_as_one() {
        let mut b = breaker(0, 100);
        assert_eq!(b.record_failure(Duration::ZERO), Some(Transition::Opened));
    }
}
