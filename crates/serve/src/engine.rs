//! The online serving engine: artifacts in, ranked book lists out.
//!
//! [`ServingEngine::load`] restores the trained models from an
//! [`ArtifactRegistry`] and answers [`ServingEngine::recommend`] /
//! [`ServingEngine::recommend_batch`] requests through the candidate
//! pipeline (sources → merge → filters → rank, see [`crate::pipeline`]):
//! the configured [`CandidateSource`]s emit provenance-stamped
//! candidate pools, the pools are merged and filtered, and the primary
//! source's model re-scores the survivors down to top-k. Users the
//! pipeline could not serve — every source degraded, breaker-open,
//! panicking, or simply empty-handed — fall back to the legacy chain
//! walk (default BPR → Closest Items → Most Read Items → Random Items),
//! served by the first remaining slot that is healthy **and** returns a
//! non-empty list. A slot degrades — without failing the load — when
//! its artifact is missing, truncated, checksum-corrupted, or
//! dimensionally incompatible with the training interactions; a healthy
//! slot still falls through when it has nothing to say (e.g. Closest
//! Items for a reader with no history).
//!
//! Runtime failures degrade the same way instead of taking serving down:
//!
//! * every slot call runs under [`std::panic::catch_unwind`], so a
//!   panicking model degrades the affected requests down the chain;
//! * an optional per-slot budget ([`EngineConfig::slot_budget`]) cuts
//!   off slow slot calls — the answers are discarded, a timeout is
//!   recorded, and the chain advances — while an optional whole-request
//!   budget ([`EngineConfig::request_budget`]) stops the chain walk once
//!   a request's [`Deadline`] expires;
//! * each slot carries a [`CircuitBreaker`]: repeated failures (panics,
//!   timeouts, injected errors) open it and the slot is skipped without
//!   being attempted until a cooldown admits a half-open probe;
//! * [`ServingEngine::reload_with_retry`] retries a failed artifact
//!   reload with deterministic, seeded-jitter exponential backoff
//!   ([`Backoff`]) and keeps serving the old epoch until a reload
//!   succeeds.
//!
//! All timing flows through the [`Clock`] in [`EngineConfig::clock`], so
//! tests drive deadlines, cooldowns, and backoff with a fake clock.
//!
//! Results are memoised in a bounded LRU keyed `(user, k, model_epoch)`;
//! the epoch comes from the registry manifest, and
//! [`ServingEngine::reload`] both bumps it and explicitly clears the
//! cache, so a retrain can never serve stale lists. Batch requests are
//! fanned out over a `std::thread::scope` worker pool sharing the same
//! cache and [`ServeMetrics`]; a worker that somehow panics outside the
//! per-slot isolation degrades only its own chunk.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
use crate::cache::LruCache;
use crate::metrics::{ChunkStats, MetricsSnapshot, ServeMetrics};
use crate::overload::{
    DegradationLevel, LevelTransition, OverloadConfig, OverloadGovernor, ShedReason,
};
use crate::pipeline::{
    merge_into, rank_pool_into, AnnCfNeighboursSource, AnnContentSimilarSource, BookGenres,
    Candidate, CandidateFilter, CandidateSource, CfNeighboursSource, ContentSimilarSource,
    Explanation, FallbackSource, FilterCtx, MostReadSource, PipelineConfig,
    QuantCfNeighboursSource, Reason, SourceId,
};
use crate::registry::{ArtifactRegistry, LoadedArtifacts};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::quant::{QuantArtifact, QuantMatrix};
use rm_core::random::RandomItems;
use rm_core::Recommender;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_util::clock::{Backoff, Clock, Deadline, MonotonicClock};
use rm_util::trace::Tracer;
use rm_util::{RecError, TopK};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One link of the fallback chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSlot {
    /// Collaborative filtering (the paper's best model).
    Bpr,
    /// Content-based Closest Items.
    ClosestItems,
    /// Global-popularity Most Read Items.
    MostRead,
    /// Uniform-random terminal fallback.
    Random,
}

impl ModelSlot {
    /// Number of slots (sizes the metrics arrays).
    pub const COUNT: usize = 4;

    /// Every slot, in default chain order.
    pub const ALL: [Self; Self::COUNT] =
        [Self::Bpr, Self::ClosestItems, Self::MostRead, Self::Random];

    /// Dense index for metrics arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Bpr => 0,
            Self::ClosestItems => 1,
            Self::MostRead => 2,
            Self::Random => 3,
        }
    }

    /// Display name, matching the recommenders' [`Recommender::name`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Bpr => "BPR",
            Self::ClosestItems => "Closest Items",
            Self::MostRead => "Most Read Items",
            Self::Random => "Random Items",
        }
    }

    /// Snake-case identifier used as the `slot` label in Prometheus
    /// exposition and trace events.
    #[must_use]
    pub fn metric_label(self) -> &'static str {
        match self {
            Self::Bpr => "bpr",
            Self::ClosestItems => "closest_items",
            Self::MostRead => "most_read",
            Self::Random => "random",
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Slots tried in order; the first non-empty answer wins. Slots not
    /// listed are never consulted.
    pub chain: Vec<ModelSlot>,
    /// Worker threads for [`ServingEngine::recommend_batch`].
    pub workers: usize,
    /// LRU entries; `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Seed of the terminal Random Items fallback.
    pub random_seed: u64,
    /// Per-slot-call time budget: a call exceeding it is cut off (its
    /// answers discarded, a timeout recorded, the breaker notified) and
    /// the chain advances. `None` disables the check — and its two
    /// clock reads — entirely.
    pub slot_budget: Option<Duration>,
    /// Whole-request budget: each request carries a [`Deadline`] this
    /// far in the future, and once it expires the chain walk stops (the
    /// remaining requests answer empty, counted as deadline skips).
    /// `None` disables the check.
    pub request_budget: Option<Duration>,
    /// Per-slot circuit-breaker configuration; `None` disables breakers.
    pub breaker: Option<BreakerConfig>,
    /// The monotonic clock deadlines, breaker cooldowns, and reload
    /// backoff read. Tests substitute a
    /// [`FakeClock`](rm_util::clock::FakeClock).
    pub clock: Arc<dyn Clock>,
    /// Structured trace sink for per-chunk spans, slot-call outcomes,
    /// breaker transitions, and reloads. Disabled by default — a
    /// disabled tracer costs one branch per call site and allocates
    /// nothing.
    pub tracer: Arc<Tracer>,
    /// Candidate-pipeline configuration (sources, pool size, filters,
    /// genre lookup). The default derives a single source from the
    /// chain's head, which reproduces the legacy chain bit-for-bit.
    pub pipeline: PipelineConfig,
    /// Overload control: admission queue, CoDel shedding, and the
    /// brownout degradation ladder. `None` (the default) disables all
    /// of it — the engine serves every request at full service, exactly
    /// as before overload control existed.
    pub overload: Option<OverloadConfig>,
}

impl EngineConfig {
    /// A builder with typed defaults and validation — the preferred way
    /// to construct a config (struct literals keep working for
    /// backwards compatibility, but skip validation).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: Self::default(),
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            chain: ModelSlot::ALL.to_vec(),
            workers: 4,
            cache_capacity: 4096,
            random_seed: 42,
            slot_budget: None,
            request_budget: None,
            breaker: Some(BreakerConfig::default()),
            clock: Arc::new(MonotonicClock::new()),
            tracer: Arc::new(Tracer::disabled()),
            pipeline: PipelineConfig::default(),
            overload: None,
        }
    }
}

/// Builder for [`EngineConfig`]: every setter consumes and returns the
/// builder, and [`EngineConfigBuilder::build`] validates the result
/// ([`RecError::Config`] on a nonsensical combination) so an invalid
/// config is caught at construction instead of deep inside serving.
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until build() is called"]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the fallback chain (slots tried in order on the degraded
    /// path; the head also seeds the default pipeline source).
    pub fn chain(mut self, chain: Vec<ModelSlot>) -> Self {
        self.config.chain = chain;
        self
    }

    /// Sets the worker-thread count for batch serving.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the LRU capacity; `0` disables caching entirely.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Seeds the terminal Random Items fallback.
    pub fn random_seed(mut self, seed: u64) -> Self {
        self.config.random_seed = seed;
        self
    }

    /// Enables the per-slot-call time budget.
    pub fn slot_budget(mut self, budget: Duration) -> Self {
        self.config.slot_budget = Some(budget);
        self
    }

    /// Enables the whole-request deadline budget.
    pub fn request_budget(mut self, budget: Duration) -> Self {
        self.config.request_budget = Some(budget);
        self
    }

    /// Sets the per-slot circuit-breaker configuration.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = Some(breaker);
        self
    }

    /// Disables circuit breakers entirely.
    pub fn no_breaker(mut self) -> Self {
        self.config.breaker = None;
        self
    }

    /// Substitutes the engine clock (tests pass a fake).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.config.clock = clock;
        self
    }

    /// Installs a trace sink.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.config.tracer = tracer;
        self
    }

    /// Sets the explicit pipeline source slots (priority order).
    pub fn pipeline_sources(mut self, sources: Vec<ModelSlot>) -> Self {
        self.config.pipeline.sources = Some(sources);
        self
    }

    /// Sets the per-source candidate pool size.
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.config.pipeline.pool_size = pool_size;
        self
    }

    /// Appends one candidate filter (applied in push order).
    pub fn filter(mut self, filter: Arc<dyn CandidateFilter>) -> Self {
        self.config.pipeline.filters.push(filter);
        self
    }

    /// Replaces the whole filter list.
    pub fn filters(mut self, filters: Vec<Arc<dyn CandidateFilter>>) -> Self {
        self.config.pipeline.filters = filters;
        self
    }

    /// Supplies the catalogue genre lookup for genre-aware filters.
    pub fn book_genres(mut self, genres: Arc<BookGenres>) -> Self {
        self.config.pipeline.book_genres = Some(genres);
        self
    }

    /// Sets the posting lists probed per ANN-accelerated source call
    /// (only consulted when the registry carries a valid ANN artifact).
    pub fn ann_nprobe(mut self, nprobe: usize) -> Self {
        self.config.pipeline.ann_nprobe = nprobe;
        self
    }

    /// Enables overload control (admission queue, CoDel shedding, the
    /// brownout ladder) with the given tuning.
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        self.config.overload = Some(overload);
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// [`RecError::Config`] when `workers == 0`, the chain is empty,
    /// `pool_size == 0`, or an explicit source list is empty.
    pub fn build(self) -> Result<EngineConfig, RecError> {
        let config = self.config;
        if config.workers == 0 {
            return Err(RecError::Config("workers must be >= 1".into()));
        }
        if config.chain.is_empty() {
            return Err(RecError::Config(
                "fallback chain must name at least one slot".into(),
            ));
        }
        if config.pipeline.pool_size == 0 {
            return Err(RecError::Config("pipeline pool_size must be >= 1".into()));
        }
        if config.pipeline.ann_nprobe == 0 {
            return Err(RecError::Config("pipeline ann_nprobe must be >= 1".into()));
        }
        if let Some(sources) = &config.pipeline.sources {
            if sources.is_empty() {
                return Err(RecError::Config(
                    "pipeline sources, when set, must name at least one slot".into(),
                ));
            }
        }
        if let Some(overload) = &config.overload {
            if overload.queue_capacity == 0 {
                return Err(RecError::Config(
                    "overload queue_capacity must be >= 1".into(),
                ));
            }
            if !(overload.ewma_alpha > 0.0 && overload.ewma_alpha <= 1.0) {
                return Err(RecError::Config(
                    "overload ewma_alpha must be in (0, 1]".into(),
                ));
            }
            if overload.step_up > overload.step_down {
                return Err(RecError::Config(
                    "overload step_up must not exceed step_down (the gap is the hysteresis)".into(),
                ));
            }
        }
        Ok(config)
    }
}

type CacheKey = (u32, usize, u64);

/// One request processed off the admission queue by
/// [`ServingEngine::serve_queued`].
#[derive(Debug)]
pub struct QueuedOutcome {
    /// The requesting user.
    pub user: UserIdx,
    /// Requested list length.
    pub k: usize,
    /// The answer, or [`RecError::Shed`] when admission control shed
    /// the request instead of serving it.
    pub result: Result<Vec<u32>, RecError>,
    /// Brownout level the request was served at.
    pub level: DegradationLevel,
    /// Time the request spent in the admission queue.
    pub queue_delay: Duration,
    /// Admission-to-answer time (queueing plus service).
    pub sojourn: Duration,
}

/// The offline-trained / online-serving recommendation engine.
#[derive(Debug)]
pub struct ServingEngine {
    config: EngineConfig,
    train: Interactions,
    epoch: u64,
    bpr: Option<Bpr>,
    closest: Option<ClosestItems>,
    most_read: Option<MostReadItems>,
    random: RandomItems,
    /// Validated IVF indexes accelerating the pipeline's content-similar
    /// and CF-neighbour sources. Not a [`ModelSlot`]: losing ANN loses
    /// only the acceleration — the exact scans keep serving — so it
    /// reports through [`ServingEngine::ann_notes`], not `degraded`.
    ann: Option<rm_embed::AnnArtifact>,
    /// Why each absent ANN half is absent (empty when fully active or
    /// the registry simply has no ANN artifact).
    ann_notes: Vec<String>,
    /// Validated quantized artifact: compact i8/f16 rows the rank stage
    /// and pipeline sources score from. Like ANN, losing it loses only
    /// the memory optimisation — exact f32 scoring keeps serving — so
    /// it reports through [`ServingEngine::quant_notes`], not
    /// `degraded`.
    quant: Option<QuantArtifact>,
    /// True when the factor sections validated against the installed
    /// BPR model (CF scoring reads quantized rows).
    quant_cf_active: bool,
    /// True when the embeddings section validated against the installed
    /// Closest Items store (IVF content probes re-score quantized rows).
    quant_content_active: bool,
    /// Why quantized halves (or the whole artifact) were dropped at
    /// install time; empty when fully active or simply not published.
    quant_notes: Vec<String>,
    degraded: Vec<(ModelSlot, String)>,
    cache: Mutex<LruCache<CacheKey, Vec<u32>>>,
    breakers: Option<Mutex<[CircuitBreaker; ModelSlot::COUNT]>>,
    governor: Option<Mutex<OverloadGovernor>>,
    metrics: ServeMetrics,
    #[cfg(feature = "testing")]
    faults: crate::fault::FaultInjector,
}

impl ServingEngine {
    /// Opens `registry` and builds the engine over `train` (the
    /// interactions the artifacts were fitted on — rebuilt
    /// deterministically from the corpus, they are not part of the
    /// registry). Slot-level artifact failures degrade the chain and are
    /// reported via [`ServingEngine::degraded`]; only a missing or
    /// unparsable manifest fails the load.
    pub fn load(
        registry: &ArtifactRegistry,
        train: &Interactions,
        config: EngineConfig,
    ) -> Result<Self, RecError> {
        let loaded = registry.load()?;
        let cache_capacity = config.cache_capacity;
        let random_seed = config.random_seed;
        let breakers = config
            .breaker
            .map(|cfg| Mutex::new(std::array::from_fn(|_| CircuitBreaker::new(cfg))));
        let mut random = RandomItems::new(random_seed);
        random.fit(train);
        let metrics = ServeMetrics::new(Arc::clone(&config.clock));
        let governor = config.overload.clone().map(|overload| {
            Mutex::new(OverloadGovernor::new(
                overload,
                config.request_budget,
                config.clock.now(),
            ))
        });
        let mut engine = Self {
            config,
            train: train.clone(),
            epoch: 0,
            bpr: None,
            closest: None,
            most_read: None,
            random,
            ann: None,
            ann_notes: Vec::new(),
            quant: None,
            quant_cf_active: false,
            quant_content_active: false,
            quant_notes: Vec::new(),
            degraded: Vec::new(),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            breakers,
            governor,
            metrics,
            #[cfg(feature = "testing")]
            faults: crate::fault::FaultInjector::default(),
        };
        engine.install_artifacts(loaded);
        Ok(engine)
    }

    /// [`ServingEngine::load`], then arms the fault-injection plan —
    /// the chaos harness's entry point.
    #[cfg(feature = "testing")]
    pub fn load_with_faults(
        registry: &ArtifactRegistry,
        train: &Interactions,
        config: EngineConfig,
        plan: crate::fault::FaultPlan,
    ) -> Result<Self, RecError> {
        let mut engine = Self::load(registry, train, config)?;
        engine.inject_faults(plan);
        Ok(engine)
    }

    /// Replaces the active fault plan (and resets its call counters).
    #[cfg(feature = "testing")]
    pub fn inject_faults(&mut self, plan: crate::fault::FaultPlan) {
        self.faults = crate::fault::FaultInjector::new(plan);
    }

    /// The active fault injector (call counts, plan).
    #[cfg(feature = "testing")]
    #[must_use]
    pub fn fault_injector(&self) -> &crate::fault::FaultInjector {
        &self.faults
    }

    /// Swaps in a freshly saved artifact set: re-reads every slot, bumps
    /// the epoch from the manifest, resets the circuit breakers (a new
    /// epoch deserves a clean slate), and explicitly clears the cache
    /// (the epoch in the key already fences stale entries; clearing also
    /// returns their memory). On error the engine is untouched and keeps
    /// serving the old epoch.
    pub fn reload(&mut self, registry: &ArtifactRegistry) -> Result<(), RecError> {
        // The span must borrow a local handle, not `self.config`, so the
        // `&mut self` artifact swap below stays borrowable.
        let tracer = Arc::clone(&self.config.tracer);
        let span = tracer.span("reload");
        let loaded = match registry.load() {
            Ok(loaded) => loaded,
            Err(e) => {
                span.finish(|f| {
                    f.push("ok", false).push("error", e.to_string());
                });
                return Err(e);
            }
        };
        self.install_artifacts(loaded);
        self.cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        span.finish(|f| {
            f.push("ok", true)
                .push("epoch", self.epoch)
                .push("degraded_slots", self.degraded.len());
        });
        Ok(())
    }

    /// [`ServingEngine::reload`] with bounded retries: each failed
    /// attempt sleeps the backoff schedule's next deterministic,
    /// seeded-jitter delay (through the engine clock) before trying
    /// again. Returns the number of attempts a successful reload took;
    /// on exhaustion returns the last error with the engine untouched,
    /// still serving the old epoch.
    pub fn reload_with_retry(
        &mut self,
        registry: &ArtifactRegistry,
        backoff: &Backoff,
    ) -> Result<u32, RecError> {
        let attempts = backoff.attempts.max(1);
        let mut attempt = 0;
        loop {
            match self.reload(registry) {
                Ok(()) => return Ok(attempt + 1),
                Err(e) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(e);
                    }
                    self.config.clock.sleep(backoff.delay(attempt - 1));
                }
            }
        }
    }

    fn install_artifacts(&mut self, loaded: LoadedArtifacts) {
        self.epoch = loaded.manifest.epoch;
        self.degraded.clear();
        if let (Some(breakers), Some(cfg)) = (&mut self.breakers, self.config.breaker) {
            for b in breakers
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .iter_mut()
            {
                *b = CircuitBreaker::new(cfg);
            }
        }

        self.bpr = match loaded.bpr {
            Ok(model)
                if model.user_factors.rows() == self.train.n_users()
                    && model.item_factors.rows() == self.train.n_books() =>
            {
                let mut bpr = Bpr::new(BprConfig::default());
                bpr.install(model, &self.train);
                Some(bpr)
            }
            Ok(model) => {
                self.degrade(
                    ModelSlot::Bpr,
                    format!(
                        "dimension mismatch: model {}x{}, train {}x{}",
                        model.user_factors.rows(),
                        model.item_factors.rows(),
                        self.train.n_users(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::Bpr, e.to_string());
                None
            }
        };

        self.closest = match loaded.embeddings {
            Ok(store) if store.len() == self.train.n_books() => {
                let mut ci = ClosestItems::from_store(store, loaded.manifest.fields);
                ci.fit(&self.train);
                Some(ci)
            }
            Ok(store) => {
                self.degrade(
                    ModelSlot::ClosestItems,
                    format!(
                        "dimension mismatch: {} embeddings, {} books",
                        store.len(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::ClosestItems, e.to_string());
                None
            }
        };

        self.most_read = match loaded.most_read {
            Ok(mut mr) if mr.counts().len() == self.train.n_books() => {
                mr.install(&self.train);
                Some(mr)
            }
            Ok(mr) => {
                self.degrade(
                    ModelSlot::MostRead,
                    format!(
                        "dimension mismatch: {} counts, {} books",
                        mr.counts().len(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::MostRead, e.to_string());
                None
            }
        };

        self.install_ann(loaded.ann);
        self.install_quant(loaded.quant);
    }

    /// Validates the ANN artifact against the *installed* models (so a
    /// degraded model slot automatically disables its accelerated
    /// source) and keeps only the halves whose dimensions line up.
    /// Failure here never degrades a slot — the exact scans serve —
    /// it only records a note for the operator.
    fn install_ann(&mut self, ann: crate::registry::SlotResult<rm_embed::AnnArtifact>) {
        self.ann_notes.clear();
        self.ann = None;
        let mut art = match ann {
            Ok(art) => art,
            // No artifact is the normal state for a registry trained
            // without ANN; only a present-but-broken file is noteworthy.
            Err(crate::registry::SlotError::Missing) => return,
            Err(e) => {
                self.ann_notes.push(format!("ann artifact dropped: {e}"));
                return;
            }
        };
        if let Some(idx) = &art.content {
            let ok = self.closest.as_ref().is_some_and(|c| {
                idx.n_items() as usize == c.store().len() && idx.dim() == c.store().dim()
            });
            if !ok {
                self.ann_notes.push(match &self.closest {
                    Some(c) => format!(
                        "ann content index dropped: index {}x{} vs store {}x{}",
                        idx.n_items(),
                        idx.dim(),
                        c.store().len(),
                        c.store().dim()
                    ),
                    None => "ann content index dropped: closest-items slot degraded".into(),
                });
                art.content = None;
            }
        }
        if let Some(idx) = &art.cf {
            let ok = self.bpr.as_ref().and_then(Bpr::model).is_some_and(|m| {
                idx.n_items() as usize == m.item_factors.rows()
                    && idx.dim() == m.item_factors.cols() + 1
            });
            if !ok {
                self.ann_notes
                    .push(match self.bpr.as_ref().and_then(Bpr::model) {
                        Some(m) => format!(
                            "ann cf index dropped: index {}x{} vs factors {}x{}+1",
                            idx.n_items(),
                            idx.dim(),
                            m.item_factors.rows(),
                            m.item_factors.cols()
                        ),
                        None => "ann cf index dropped: bpr slot degraded".into(),
                    });
                art.cf = None;
            }
        }
        if art.content.is_some() || art.cf.is_some() {
            self.ann = Some(art);
        }
    }

    /// True when the content-similar source retrieves through the IVF
    /// index (a valid ANN artifact half is installed).
    #[must_use]
    pub fn ann_content_active(&self) -> bool {
        self.ann.as_ref().is_some_and(|a| a.content.is_some())
    }

    /// True when the CF-neighbours source retrieves through the MIPS
    /// IVF index.
    #[must_use]
    pub fn ann_cf_active(&self) -> bool {
        self.ann.as_ref().is_some_and(|a| a.cf.is_some())
    }

    /// Why ANN halves (or the whole artifact) were dropped at install
    /// time; empty when fully active or simply not published.
    #[must_use]
    pub fn ann_notes(&self) -> &[String] {
        &self.ann_notes
    }

    /// Validates the quantized artifact against the *installed* models
    /// (so a degraded model slot automatically disables its quantized
    /// scoring path) and records which halves are usable. The sections
    /// share one zero-copy buffer, so nothing is dropped from the
    /// artifact itself — the active flags gate every read. Failure here
    /// never degrades a slot: exact f32 scoring serves identically, it
    /// only costs the memory saving.
    fn install_quant(&mut self, quant: crate::registry::SlotResult<QuantArtifact>) {
        self.quant_notes.clear();
        self.quant = None;
        self.quant_cf_active = false;
        self.quant_content_active = false;
        let art = match quant {
            Ok(art) => art,
            // No artifact is the normal state for a registry trained
            // with --quant off; only a present-but-broken file is
            // noteworthy.
            Err(crate::registry::SlotError::Missing) => return,
            Err(e) => {
                self.quant_notes
                    .push(format!("quant artifact dropped: {e}"));
                return;
            }
        };
        let cf_ok = match (
            art.user_factors(),
            art.item_factors(),
            self.bpr.as_ref().and_then(Bpr::model),
        ) {
            (Some(qu), Some(qi), Some(m)) => {
                let ok = qu.rows() == m.user_factors.rows()
                    && qu.cols() == m.user_factors.cols()
                    && qi.rows() == m.item_factors.rows()
                    && qi.cols() == m.item_factors.cols();
                if !ok {
                    self.quant_notes.push(format!(
                        "quant cf sections dropped: quant {}x{}/{}x{} vs factors {}x{}/{}x{}",
                        qu.rows(),
                        qu.cols(),
                        qi.rows(),
                        qi.cols(),
                        m.user_factors.rows(),
                        m.user_factors.cols(),
                        m.item_factors.rows(),
                        m.item_factors.cols()
                    ));
                }
                ok
            }
            (Some(_), Some(_), None) => {
                self.quant_notes
                    .push("quant cf sections dropped: bpr slot degraded".into());
                false
            }
            // A factors-free artifact (quantize_parts) simply has no CF
            // half to activate.
            _ => false,
        };
        let content_ok = match (art.embeddings(), self.closest.as_ref()) {
            (Some(qe), Some(c)) => {
                let ok = qe.rows() == c.store().len() && qe.cols() == c.store().dim();
                if !ok {
                    self.quant_notes.push(format!(
                        "quant embeddings section dropped: quant {}x{} vs store {}x{}",
                        qe.rows(),
                        qe.cols(),
                        c.store().len(),
                        c.store().dim()
                    ));
                }
                ok
            }
            (Some(_), None) => {
                self.quant_notes
                    .push("quant embeddings section dropped: closest-items slot degraded".into());
                false
            }
            _ => false,
        };
        if cf_ok || content_ok {
            self.quant = Some(art);
            self.quant_cf_active = cf_ok;
            self.quant_content_active = content_ok;
        }
    }

    /// True when CF scoring (exact source, IVF re-score, and the rank
    /// stage under a BPR primary) reads quantized factor rows.
    #[must_use]
    pub fn quant_cf_active(&self) -> bool {
        self.quant_cf_active
    }

    /// True when IVF content probes re-score against the quantized
    /// embeddings section.
    #[must_use]
    pub fn quant_content_active(&self) -> bool {
        self.quant_content_active
    }

    /// Why quantized halves (or the whole artifact) were dropped at
    /// install time; empty when fully active or simply not published.
    #[must_use]
    pub fn quant_notes(&self) -> &[String] {
        &self.quant_notes
    }

    /// The quantized factor sections, when validated: `(user, item)`
    /// zero-copy row views.
    fn quant_cf_rows(&self) -> Option<(QuantMatrix<'_>, QuantMatrix<'_>)> {
        if !self.quant_cf_active {
            return None;
        }
        let art = self.quant.as_ref()?;
        Some((art.user_factors()?, art.item_factors()?))
    }

    /// The quantized embeddings section, when validated.
    fn quant_embedding_rows(&self) -> Option<QuantMatrix<'_>> {
        if !self.quant_content_active {
            return None;
        }
        self.quant.as_ref()?.embeddings()
    }

    fn degrade(&mut self, slot: ModelSlot, reason: String) {
        self.degraded.push((slot, reason));
    }

    /// The slots that failed to load, with the reason — the health report
    /// an operator would page on.
    #[must_use]
    pub fn degraded(&self) -> &[(ModelSlot, String)] {
        &self.degraded
    }

    /// True when the slot's model loaded and is servable.
    #[must_use]
    pub fn slot_loaded(&self, slot: ModelSlot) -> bool {
        match slot {
            ModelSlot::Bpr => self.bpr.is_some(),
            ModelSlot::ClosestItems => self.closest.is_some(),
            ModelSlot::MostRead => self.most_read.is_some(),
            ModelSlot::Random => true,
        }
    }

    /// The current artifact epoch (from the registry manifest).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Point-in-time request metrics. With overload control enabled the
    /// snapshot also carries the governor's live ladder state: current
    /// level, transitions into each level, and per-level residency.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(governor) = &self.governor {
            let g = governor.lock().unwrap_or_else(PoisonError::into_inner);
            snap.degradation_level = g.level().index() as u8;
            snap.level_entries = g.level_entries();
            snap.level_residency_ns = g.level_residency_ns(self.config.clock.now());
        }
        snap.cache_bytes_estimate = self.cache_bytes_estimate();
        snap
    }

    /// Estimated bytes held by the answer cache: every cached list's
    /// `len × 4` payload plus fixed per-entry bookkeeping (key, `Vec`
    /// header, slab links, map slot). An estimate, not an accounting —
    /// it tracks the real footprint closely enough to alert on.
    #[must_use]
    pub fn cache_bytes_estimate(&self) -> u64 {
        // Key tuple + Vec header + two slab links + map entry.
        const ENTRY_OVERHEAD: usize = std::mem::size_of::<CacheKey>()
            + std::mem::size_of::<Vec<u32>>()
            + 2 * std::mem::size_of::<usize>()
            + std::mem::size_of::<(CacheKey, usize)>();
        self.lock_cache()
            .bytes_estimate(|answer| answer.len() * 4 + ENTRY_OVERHEAD) as u64
    }

    /// Point-in-time metrics in Prometheus text exposition format,
    /// including the live breaker state per slot (when breakers are on).
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.metrics().render_prometheus(self.breaker_states())
    }

    /// The engine's trace sink (drain it for JSONL output).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.config.tracer
    }

    /// Current circuit-breaker state per slot (by [`ModelSlot::index`]);
    /// `None` when breakers are disabled.
    #[must_use]
    pub fn breaker_states(&self) -> Option<[BreakerState; ModelSlot::COUNT]> {
        let breakers = self.breakers.as_ref()?;
        let guard = breakers.lock().unwrap_or_else(PoisonError::into_inner);
        Some(std::array::from_fn(|i| guard[i].state()))
    }

    /// Number of cached recommendation lists.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.lock_cache().len()
    }

    /// Users in the training matrix (the load generator's user universe).
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.train.n_users()
    }

    /// The cache holds plain answer lists; recover a poisoned mutex
    /// rather than letting one isolated panic end serving.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, LruCache<CacheKey, Vec<u32>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn slot_model(&self, slot: ModelSlot) -> Option<&dyn Recommender> {
        match slot {
            ModelSlot::Bpr => self.bpr.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::ClosestItems => self.closest.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::MostRead => self.most_read.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::Random => Some(&self.random),
        }
    }

    /// Wraps `slot`'s loaded model as its pipeline candidate source
    /// (`None` when the slot is degraded, mirroring [`Self::slot_model`]).
    fn slot_source(&self, slot: ModelSlot) -> Option<Box<dyn CandidateSource + '_>> {
        let nprobe = self.config.pipeline.ann_nprobe;
        match slot {
            ModelSlot::Bpr => {
                self.bpr
                    .as_ref()
                    .map(|m| match self.ann.as_ref().and_then(|a| a.cf.as_ref()) {
                        Some(idx) => {
                            let src = AnnCfNeighboursSource::new(m, &self.train, idx, nprobe);
                            match self.quant_cf_rows() {
                                Some((qu, qi)) => {
                                    Box::new(src.with_quant(qu, qi)) as Box<dyn CandidateSource>
                                }
                                None => Box::new(src) as Box<dyn CandidateSource>,
                            }
                        }
                        None => match self.quant.as_ref().filter(|_| self.quant_cf_active) {
                            Some(art) => Box::new(QuantCfNeighboursSource::new(art, &self.train))
                                as Box<dyn CandidateSource>,
                            None => {
                                Box::new(CfNeighboursSource::new(m)) as Box<dyn CandidateSource>
                            }
                        },
                    })
            }
            ModelSlot::ClosestItems => self.closest.as_ref().map(|m| {
                match self.ann.as_ref().and_then(|a| a.content.as_ref()) {
                    Some(idx) => {
                        let src = AnnContentSimilarSource::new(m, &self.train, idx, nprobe);
                        match self.quant_embedding_rows() {
                            Some(qe) => Box::new(src.with_quant(qe)) as Box<dyn CandidateSource>,
                            None => Box::new(src) as Box<dyn CandidateSource>,
                        }
                    }
                    None => Box::new(ContentSimilarSource::new(m, &self.train))
                        as Box<dyn CandidateSource>,
                }
            }),
            ModelSlot::MostRead => self
                .most_read
                .as_ref()
                .map(|m| Box::new(MostReadSource::new(m)) as Box<dyn CandidateSource>),
            ModelSlot::Random => Some(
                Box::new(FallbackSource::new(ModelSlot::Random, &self.random))
                    as Box<dyn CandidateSource>,
            ),
        }
    }

    /// Provenance reason for a book served by `slot` on the degraded
    /// chain path. Pipeline sources stamp reasons at emission time; the
    /// legacy walk reconstructs them on demand (explain requests only).
    fn reason_for(&self, slot: ModelSlot, user: UserIdx, book: u32) -> Reason {
        match slot {
            ModelSlot::Bpr => Reason::CfNeighbours,
            ModelSlot::ClosestItems => self
                .closest
                .as_ref()
                .and_then(|c| crate::pipeline::anchor_book(c, self.train.seen(user)))
                .map_or(Reason::Exploration, |anchor| Reason::SimilarToBorrowed {
                    anchor,
                }),
            ModelSlot::MostRead => Reason::MostRead {
                count: self
                    .most_read
                    .as_ref()
                    .map_or(0, |m| m.count(BookIdx(book))),
            },
            ModelSlot::Random => Reason::Exploration,
        }
    }

    /// Asks `slot`'s breaker to admit a call, folding any state
    /// transition into the chunk stats. Always true with breakers off.
    fn breaker_admit(&self, slot: ModelSlot, stats: &mut ChunkStats) -> bool {
        let Some(breakers) = &self.breakers else {
            return true;
        };
        let now = self.config.clock.now();
        let (admitted, transition) =
            breakers.lock().unwrap_or_else(PoisonError::into_inner)[slot.index()].admit(now);
        self.count_transition(transition, slot, stats);
        admitted
    }

    /// Reports a successful slot call to its breaker.
    fn breaker_success(&self, slot: ModelSlot, stats: &mut ChunkStats) {
        if let Some(breakers) = &self.breakers {
            let transition = breakers.lock().unwrap_or_else(PoisonError::into_inner)[slot.index()]
                .record_success();
            self.count_transition(transition, slot, stats);
        }
    }

    /// Reports a failed slot call (panic, timeout, injected error) to
    /// its breaker.
    fn breaker_failure(&self, slot: ModelSlot, stats: &mut ChunkStats) {
        if let Some(breakers) = &self.breakers {
            let now = self.config.clock.now();
            let transition = breakers.lock().unwrap_or_else(PoisonError::into_inner)[slot.index()]
                .record_failure(now);
            self.count_transition(transition, slot, stats);
        }
    }

    /// Folds a breaker state transition into the chunk counters and
    /// emits a `breaker_transition` trace event.
    fn count_transition(
        &self,
        transition: Option<Transition>,
        slot: ModelSlot,
        stats: &mut ChunkStats,
    ) {
        let Some(t) = transition else { return };
        match t {
            Transition::Opened => stats.breaker_opened[slot.index()] += 1,
            Transition::HalfOpened => stats.breaker_half_open[slot.index()] += 1,
            Transition::Closed => stats.breaker_closed[slot.index()] += 1,
        }
        self.config.tracer.event("breaker_transition", |f| {
            f.push("slot", slot.metric_label()).push("to", t.label());
        });
    }

    /// The brownout ladder's current level ([`DegradationLevel::Full`]
    /// whenever overload control is disabled).
    #[must_use]
    pub fn degradation_level(&self) -> DegradationLevel {
        self.current_level()
    }

    /// Admitted-but-unserved requests in the overload queue (`0` when
    /// overload control is disabled).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.governor.as_ref().map_or(0, |g| {
            g.lock().unwrap_or_else(PoisonError::into_inner).queue_len()
        })
    }

    fn current_level(&self) -> DegradationLevel {
        self.governor.as_ref().map_or(DegradationLevel::Full, |g| {
            g.lock().unwrap_or_else(PoisonError::into_inner).level()
        })
    }

    /// Emits a ladder transition as a trace event (the counters live in
    /// the governor and surface through [`ServingEngine::metrics`]).
    fn note_transition(&self, t: LevelTransition) {
        self.config.tracer.event("degradation_transition", |f| {
            f.push("from", t.from.label()).push("to", t.to.label());
        });
    }

    fn note_shed(&self, reason: ShedReason, user: UserIdx) -> RecError {
        self.metrics.record_shed(reason);
        self.config.tracer.event("shed", |f| {
            f.push("reason", reason.metric_label()).push("user", user.0);
        });
        RecError::Shed(format!("{} (user {})", reason.metric_label(), user.0))
    }

    /// Offers a request to admission control. Accepted requests wait in
    /// the bounded queue until [`ServingEngine::serve_queued`] reaches
    /// them; rejected ones are shed up front — queue full, or remaining
    /// deadline budget already below the observed service cost.
    ///
    /// # Errors
    ///
    /// [`RecError::Shed`] when admission control rejects the request;
    /// [`RecError::Config`] when overload control is disabled.
    pub fn offer(&self, user: UserIdx, k: usize) -> Result<(), RecError> {
        let Some(governor) = &self.governor else {
            return Err(RecError::Config(
                "admission control requires EngineConfig::overload".into(),
            ));
        };
        let now = self.config.clock.now();
        let outcome = governor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .offer(user, k, now);
        outcome.map_err(|reason| self.note_shed(reason, user))
    }

    /// Serves (or sheds) exactly one queued request — the head of the
    /// admission queue. Returns `None` when the queue is empty or
    /// overload control is disabled. Shed heads (CoDel episode, hopeless
    /// deadline) answer [`RecError::Shed`] without running any model;
    /// served heads run the pipeline at the governor's current brownout
    /// level, and their observed cost feeds the shedding estimate back.
    pub fn serve_queued(&self) -> Option<QueuedOutcome> {
        let governor = self.governor.as_ref()?;
        let now = self.config.clock.now();
        let (popped, transition) = governor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop(now)?;
        if let Some(t) = transition {
            self.note_transition(t);
        }
        let user = popped.request.user;
        let k = popped.request.k;
        if let Some(reason) = popped.shed {
            return Some(QueuedOutcome {
                user,
                k,
                result: Err(self.note_shed(reason, user)),
                level: self.current_level(),
                queue_delay: popped.delay,
                sojourn: popped.delay,
            });
        }
        let (level, simulated) = {
            let g = governor.lock().unwrap_or_else(PoisonError::into_inner);
            let level = g.level();
            (level, g.simulated_cost(level))
        };
        let t0 = self.config.clock.now();
        if let Some(cost) = simulated {
            self.config.clock.sleep(cost);
        }
        let books = self
            .serve_chunk_with(&[user], k, None, level)
            .pop()
            .unwrap_or_default();
        let served_at = self.config.clock.now();
        governor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record_cost(served_at.saturating_sub(t0));
        Some(QueuedOutcome {
            user,
            k,
            result: Ok(books),
            level,
            queue_delay: popped.delay,
            sojourn: served_at.saturating_sub(popped.request.arrival),
        })
    }

    /// [`ServingEngine::recommend`] through admission control: offers
    /// the request, then drains the queue (FIFO, so the final outcome is
    /// this request's). Without overload control configured it degrades
    /// to a plain [`ServingEngine::recommend`].
    ///
    /// # Errors
    ///
    /// [`RecError::Shed`] when admission control rejects or sheds the
    /// request.
    pub fn recommend_governed(&self, user: UserIdx, k: usize) -> Result<Vec<u32>, RecError> {
        if self.governor.is_none() {
            // Same full-pipeline path recommend() takes.
            return Ok(self.serve_chunk(&[user], k).pop().unwrap_or_default());
        }
        self.offer(user, k)?;
        let mut last = None;
        while let Some(outcome) = self.serve_queued() {
            last = Some(outcome);
        }
        // The queue was non-empty after offer(), so `last` is Some; an
        // empty answer degrades the impossible case instead of panicking.
        last.map_or_else(|| Ok(Vec::new()), |outcome| outcome.result)
    }

    /// Top-`k` books for `user`, served by the candidate pipeline with
    /// the fallback chain as the degraded path. An unknown user (outside
    /// the training matrix) gets an empty list. The call records
    /// latency, cache, and per-slot counters.
    pub fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        // serve_chunk answers every request; an empty Vec here is
        // unreachable in practice, but the request path degrades to "no
        // recommendations" rather than aborting on an internal bug.
        self.serve_chunk(&[user], k).pop().unwrap_or_default()
    }

    /// [`ServingEngine::recommend`] plus one provenance-backed
    /// [`Explanation`] per recommended book ("because you borrowed X"),
    /// aligned index-for-index with the returned list. Explained
    /// requests bypass the answer cache in both directions — cached
    /// lists carry no provenance — so they always exercise the
    /// pipeline; fault isolation, metrics, and the degraded fallback
    /// behave identically to [`ServingEngine::recommend`].
    #[must_use]
    pub fn recommend_explained(&self, user: UserIdx, k: usize) -> (Vec<u32>, Vec<Explanation>) {
        let mut explanations: Vec<Vec<Explanation>> = Vec::new();
        let books = self
            .serve_chunk_with(&[user], k, Some(&mut explanations), self.current_level())
            .pop()
            .unwrap_or_default();
        (books, explanations.pop().unwrap_or_default())
    }

    /// Serves one worker's share of a batch (or a single request): the
    /// cache is probed once for the whole chunk, the candidate pipeline
    /// runs with the sources' batched entry points (which reuse one
    /// catalogue-sized buffer across the chunk), and the metrics mutex is
    /// taken once. Amortising the per-request overhead this way is what
    /// makes batched serving outrun single calls even on one core.
    fn serve_chunk(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        self.serve_chunk_with(users, k, None, self.current_level())
    }

    /// [`ServingEngine::serve_chunk`] with optional per-user explanation
    /// capture. The chunk runs the pipeline in three stages:
    ///
    /// 1. **Sources** — each configured source slot gets one attempt
    ///    over the whole chunk, inside the same fault envelope a legacy
    ///    chain slot had (deadline check, degradation, circuit breaker,
    ///    fault injection, panic isolation, slot budget);
    /// 2. **Merge → filters → rank** — per user, the emissions are
    ///    pooled (first-source-wins provenance), pruned by the
    ///    configured filters, and re-scored by the primary source's
    ///    model down to top-k;
    /// 3. **Degraded chain walk** — users the pipeline could not serve
    ///    walk the remaining fallback-chain slots exactly as before the
    ///    pipeline existed (each slot gets one attempt per chunk).
    ///
    /// When `explain` is `Some`, the cache is bypassed in both
    /// directions (cached answers carry no provenance) and the vector is
    /// filled with one explanation list per user, aligned with the
    /// returned answers.
    ///
    /// `level` is the brownout rung the chunk serves at
    /// (DESIGN.md §16): [`DegradationLevel::Full`] runs everything
    /// exactly as configured; deeper levels prune expensive sources,
    /// then filters, then the pipeline itself, down to the most-read
    /// list. Degraded answers are never written to the cache — only
    /// full-service lists may outlive the brownout.
    #[allow(clippy::too_many_lines)] // one request's full story reads best in one place
    fn serve_chunk_with(
        &self,
        users: &[UserIdx],
        k: usize,
        mut explain: Option<&mut Vec<Vec<Explanation>>>,
        level: DegradationLevel,
    ) -> Vec<Vec<u32>> {
        let tracer = &self.config.tracer;
        let span = tracer.span("serve_chunk");
        let t0 = self.config.clock.now();
        if let Some(ex) = explain.as_deref_mut() {
            ex.clear();
            ex.resize_with(users.len(), Vec::new);
        }
        let mut out: Vec<Option<Vec<u32>>> = vec![None; users.len()];
        let mut stats = ChunkStats::new(users.len() as u64, 0);
        let mut misses: Vec<usize> = Vec::with_capacity(users.len());
        let use_cache = self.config.cache_capacity > 0 && explain.is_none();
        if use_cache {
            let mut cache = self.lock_cache();
            for (i, &u) in users.iter().enumerate() {
                match cache.get(&(u.0, k, self.epoch)) {
                    Some(books) => {
                        out[i] = Some(books.clone());
                        stats.hits += 1;
                    }
                    None => misses.push(i),
                }
            }
        } else {
            misses.extend(0..users.len());
        }
        tracer.event("cache_lookup", |f| {
            f.push("n", users.len())
                .push("hits", stats.hits)
                .push("epoch", self.epoch);
        });

        // Unknown users (outside the training matrix) get empty lists
        // without consulting any model.
        misses.retain(|&i| {
            let known = users[i].index() < self.train.n_users();
            if !known {
                out[i] = Some(Vec::new());
            }
            known
        });

        let deadline = self
            .config
            .request_budget
            .map(|budget| Deadline::after(&*self.config.clock, budget));
        let mut remaining = misses.clone();
        let mut deadline_hit = false;

        // ---- Stage 1: candidate sources fan out ------------------------
        // The brownout level prunes the configured pipeline
        // (DESIGN.md §16): CF neighbours and content similarity are the
        // expensive stages, the most-read list is the cheap floor.
        let expensive = |s: ModelSlot| matches!(s, ModelSlot::Bpr | ModelSlot::ClosestItems);
        let base_sources: Vec<ModelSlot> = match &self.config.pipeline.sources {
            Some(slots) => slots.clone(),
            // Default: the chain's head as the single source, which
            // reproduces the legacy chain's behaviour bit-for-bit.
            None => self.config.chain.first().copied().into_iter().collect(),
        };
        let source_slots: Vec<ModelSlot> = match level {
            DegradationLevel::Full => base_sources,
            DegradationLevel::DropExpensiveSources | DegradationLevel::SkipFilters => {
                let cheap: Vec<ModelSlot> = base_sources
                    .into_iter()
                    .filter(|&s| !expensive(s))
                    .collect();
                if cheap.is_empty() {
                    // Every configured source was expensive: substitute
                    // the popularity source so the pipeline still runs.
                    vec![ModelSlot::MostRead]
                } else {
                    cheap
                }
            }
            // The deepest levels bypass the pipeline entirely; the
            // degraded chain walk below answers everything.
            DegradationLevel::LegacyFallback | DegradationLevel::MostReadOnly => Vec::new(),
        };
        let apply_filters = matches!(
            level,
            DegradationLevel::Full | DegradationLevel::DropExpensiveSources
        );
        let degraded_chain: Vec<ModelSlot> = match level {
            DegradationLevel::LegacyFallback => {
                let cheap: Vec<ModelSlot> = self
                    .config
                    .chain
                    .iter()
                    .copied()
                    .filter(|&s| !expensive(s))
                    .collect();
                if cheap.is_empty() {
                    vec![ModelSlot::MostRead, ModelSlot::Random]
                } else {
                    cheap
                }
            }
            // "Most-read only", with the terminal random fallback kept
            // as never-empty insurance (degrade, don't go dark).
            DegradationLevel::MostReadOnly => vec![ModelSlot::MostRead, ModelSlot::Random],
            _ => self.config.chain.clone(),
        };
        let pool_size = self.config.pipeline.pool_size.max(k);
        let mut emitted: Vec<(ModelSlot, Vec<Vec<Candidate>>)> = Vec::new();
        if !remaining.is_empty() {
            for &slot in &source_slots {
                if let Some(d) = deadline {
                    if d.expired(&*self.config.clock) {
                        stats.deadline_skips += remaining.len() as u64;
                        tracer.event("deadline_expired", |f| {
                            f.push("skipped", remaining.len());
                        });
                        deadline_hit = true;
                        break;
                    }
                }
                let Some(source) = self.slot_source(slot) else {
                    // Degraded slot: every remaining request falls through.
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "degraded");
                    });
                    continue;
                };
                if !self.breaker_admit(slot, &mut stats) {
                    stats.breaker_skips[slot.index()] += 1;
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "breaker_open");
                    });
                    continue;
                }
                // The budget clock starts before fault injection so injected
                // latency counts against the slot like real slowness would.
                let slot_started = self.config.slot_budget.map(|_| self.config.clock.now());
                #[cfg(feature = "testing")]
                let injected = self.faults.on_call(slot);
                #[cfg(feature = "testing")]
                {
                    if let Some(d) = injected.latency {
                        self.config.clock.sleep(d);
                    }
                    if injected.error {
                        self.breaker_failure(slot, &mut stats);
                        stats.fallbacks[slot.index()] += remaining.len() as u64;
                        tracer.event("slot_call", |f| {
                            f.push("slot", slot.metric_label())
                                .push("requests", remaining.len())
                                .push("outcome", "injected_error");
                        });
                        continue;
                    }
                }
                let chunk_users: Vec<UserIdx> = remaining.iter().map(|&i| users[i]).collect();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    #[cfg(feature = "testing")]
                    if injected.panic {
                        panic!("injected fault: {} slot panic", slot.label());
                    }
                    let mut candidates: Vec<Vec<Candidate>> = Vec::new();
                    source.emit_batch(&chunk_users, pool_size, &mut candidates);
                    candidates
                }));
                let candidates = match outcome {
                    Ok(candidates) => candidates,
                    Err(_) => {
                        // The source panicked: isolate it, degrade the
                        // chunk to the later stages, and let the breaker
                        // see a failure.
                        stats.panics[slot.index()] += 1;
                        stats.fallbacks[slot.index()] += remaining.len() as u64;
                        self.breaker_failure(slot, &mut stats);
                        tracer.event("slot_call", |f| {
                            f.push("slot", slot.metric_label())
                                .push("requests", remaining.len())
                                .push("outcome", "panic");
                        });
                        continue;
                    }
                };
                if let (Some(budget), Some(started)) = (self.config.slot_budget, slot_started) {
                    let elapsed = self.config.clock.now().saturating_sub(started);
                    if elapsed > budget {
                        // Too slow: cut the source off (its candidates
                        // are discarded) and move on.
                        stats.timeouts[slot.index()] += 1;
                        stats.fallbacks[slot.index()] += remaining.len() as u64;
                        self.breaker_failure(slot, &mut stats);
                        tracer.event("slot_call", |f| {
                            f.push("slot", slot.metric_label())
                                .push("requests", remaining.len())
                                .push("outcome", "timeout")
                                .push("elapsed_ns", elapsed.as_nanos() as u64);
                        });
                        continue;
                    }
                }
                self.breaker_success(slot, &mut stats);
                let mut emitted_for = 0usize;
                for per_user in &candidates {
                    if per_user.is_empty() {
                        // A healthy source with nothing to say (e.g.
                        // content similarity on an empty history) falls
                        // through like a legacy empty answer did.
                        stats.fallbacks[slot.index()] += 1;
                    } else {
                        emitted_for += 1;
                    }
                }
                tracer.event("slot_call", |f| {
                    f.push("slot", slot.metric_label())
                        .push("requests", remaining.len())
                        .push("outcome", "ok")
                        .push("served", emitted_for);
                });
                emitted.push((slot, candidates));
            }
        }

        // ---- Stage 2: merge → filters → rank ---------------------------
        if !deadline_hit && !emitted.is_empty() {
            // The highest-priority source that emitted supplies the
            // rank-stage scoring model; with the default single source
            // this reproduces the legacy slot's own ranking bit-for-bit.
            let primary = emitted[0].0;
            let scorer = self.slot_model(primary);
            // Under a BPR primary with validated quantized factors the
            // rank stage scores from the compact rows; any mismatch or
            // corruption fell back to `scorer` (exact f32) at install.
            let quant_cf = match primary {
                ModelSlot::Bpr => self.quant_cf_rows(),
                _ => None,
            };
            let genres = self.config.pipeline.book_genres.as_deref();
            let mut pool: Vec<Candidate> = Vec::new();
            let mut top = TopK::new(1);
            let mut ranked: Vec<u32> = Vec::new();
            let mut still_empty = Vec::new();
            for (j, &i) in remaining.iter().enumerate() {
                merge_into(
                    emitted.iter().map(|(_, per_user)| per_user[j].as_slice()),
                    &mut pool,
                );
                let user = users[i];
                let ctx = FilterCtx {
                    user,
                    seen: self.train.seen(user),
                    genres,
                };
                if apply_filters {
                    for filter in &self.config.pipeline.filters {
                        filter.retain(&ctx, &mut pool);
                    }
                }
                let ranked_ok = match (quant_cf, scorer) {
                    (Some((qu, qi)), _) => {
                        let urow = qu.row(user.index());
                        rank_pool_into(
                            &pool,
                            k,
                            |b| qi.row(b as usize).dot(&urow),
                            &mut top,
                            &mut ranked,
                        );
                        !ranked.is_empty()
                    }
                    (None, Some(model)) => {
                        rank_pool_into(
                            &pool,
                            k,
                            |b| model.score(user, BookIdx(b)),
                            &mut top,
                            &mut ranked,
                        );
                        !ranked.is_empty()
                    }
                    (None, None) => false,
                };
                if !ranked_ok {
                    // Empty pool, everything filtered out, or the primary
                    // model vanished: the degraded chain walk below gets
                    // another shot at this user.
                    still_empty.push(i);
                    continue;
                }
                // Attribute the serve to the slot whose source proposed
                // the winning (top-ranked) book.
                let winner = pool.iter().find(|c| c.book == ranked[0]).map(|c| c.source);
                let slot = winner.and_then(SourceId::slot).unwrap_or(primary);
                stats.served[slot.index()] += 1;
                if let Some(ex) = explain.as_deref_mut() {
                    ex[i] = ranked
                        .iter()
                        .filter_map(|&b| {
                            pool.iter().find(|c| c.book == b).map(|c| Explanation {
                                book: b,
                                source: c.source,
                                reason: c.reason,
                            })
                        })
                        .collect();
                }
                out[i] = Some(std::mem::take(&mut ranked));
            }
            remaining = still_empty;
        }

        // ---- Stage 3: degraded fallback chain --------------------------
        // Users the pipeline could not serve walk the legacy chain,
        // skipping the slots that already ran as sources (every slot gets
        // at most one attempt per chunk, exactly as before the pipeline).
        if !deadline_hit {
            for &slot in &degraded_chain {
                if remaining.is_empty() {
                    break;
                }
                if source_slots.contains(&slot) {
                    continue;
                }
                if let Some(d) = deadline {
                    if d.expired(&*self.config.clock) {
                        stats.deadline_skips += remaining.len() as u64;
                        tracer.event("deadline_expired", |f| {
                            f.push("skipped", remaining.len());
                        });
                        break;
                    }
                }
                let Some(model) = self.slot_model(slot) else {
                    // Degraded slot: every remaining request falls through.
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "degraded");
                    });
                    continue;
                };
                if !self.breaker_admit(slot, &mut stats) {
                    stats.breaker_skips[slot.index()] += 1;
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "breaker_open");
                    });
                    continue;
                }
                // The budget clock starts before fault injection so injected
                // latency counts against the slot like real slowness would.
                let slot_started = self.config.slot_budget.map(|_| self.config.clock.now());
                #[cfg(feature = "testing")]
                let injected = self.faults.on_call(slot);
                #[cfg(feature = "testing")]
                {
                    if let Some(d) = injected.latency {
                        self.config.clock.sleep(d);
                    }
                    if injected.error {
                        self.breaker_failure(slot, &mut stats);
                        stats.fallbacks[slot.index()] += remaining.len() as u64;
                        tracer.event("slot_call", |f| {
                            f.push("slot", slot.metric_label())
                                .push("requests", remaining.len())
                                .push("outcome", "injected_error");
                        });
                        continue;
                    }
                }
                let chunk_users: Vec<UserIdx> = remaining.iter().map(|&i| users[i]).collect();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    #[cfg(feature = "testing")]
                    if injected.panic {
                        panic!("injected fault: {} slot panic", slot.label());
                    }
                    model.recommend_batch(&chunk_users, k)
                }));
                let answers = match outcome {
                    Ok(answers) => answers,
                    Err(_) => {
                        // The slot panicked: isolate it, degrade the chunk
                        // down the chain, and let the breaker see a failure.
                        stats.panics[slot.index()] += 1;
                        stats.fallbacks[slot.index()] += remaining.len() as u64;
                        self.breaker_failure(slot, &mut stats);
                        tracer.event("slot_call", |f| {
                            f.push("slot", slot.metric_label())
                                .push("requests", remaining.len())
                                .push("outcome", "panic");
                        });
                        continue;
                    }
                };
                if let (Some(budget), Some(started)) = (self.config.slot_budget, slot_started) {
                    let elapsed = self.config.clock.now().saturating_sub(started);
                    if elapsed > budget {
                        // Too slow: cut the slot off (its answers are
                        // discarded) and advance the chain.
                        stats.timeouts[slot.index()] += 1;
                        stats.fallbacks[slot.index()] += remaining.len() as u64;
                        self.breaker_failure(slot, &mut stats);
                        tracer.event("slot_call", |f| {
                            f.push("slot", slot.metric_label())
                                .push("requests", remaining.len())
                                .push("outcome", "timeout")
                                .push("elapsed_ns", elapsed.as_nanos() as u64);
                        });
                        continue;
                    }
                }
                self.breaker_success(slot, &mut stats);
                let attempted = remaining.len();
                let mut still_empty = Vec::new();
                for (&i, books) in remaining.iter().zip(answers) {
                    if books.is_empty() {
                        // Healthy slot with nothing to say (e.g. Closest
                        // Items for an empty history): fall through too.
                        stats.fallbacks[slot.index()] += 1;
                        still_empty.push(i);
                    } else {
                        stats.served[slot.index()] += 1;
                        if let Some(ex) = explain.as_deref_mut() {
                            ex[i] = books
                                .iter()
                                .map(|&b| Explanation {
                                    book: b,
                                    source: SourceId::Fallback(slot),
                                    reason: self.reason_for(slot, users[i], b),
                                })
                                .collect();
                        }
                        out[i] = Some(books);
                    }
                }
                tracer.event("slot_call", |f| {
                    f.push("slot", slot.metric_label())
                        .push("requests", attempted)
                        .push("outcome", "ok")
                        .push("served", attempted - still_empty.len());
                });
                remaining = still_empty;
            }
        }
        // Pipeline and chain exhausted (or deadline expired): empty
        // answers, not served by any slot.
        for i in remaining {
            out[i] = Some(Vec::new());
        }

        if use_cache && !misses.is_empty() && level == DegradationLevel::Full {
            let mut cache = self.lock_cache();
            for &i in &misses {
                // Every miss index was answered above; skip (rather than
                // abort on) a hole if that invariant is ever broken.
                let Some(books) = out[i].as_ref() else {
                    continue;
                };
                if !books.is_empty() {
                    cache.insert((users[i].0, k, self.epoch), books.clone());
                }
            }
        }

        stats.elapsed = self.config.clock.now().saturating_sub(t0);
        self.metrics.record_chunk(&stats);
        span.finish(|f| {
            f.push("n", users.len())
                .push("hits", stats.hits)
                .push("deadline_skips", stats.deadline_skips);
            // Full service is the steady state; only brownout is news.
            if level != DegradationLevel::Full {
                f.push("level", level.label());
            }
        });
        // All slots are Some by construction; degrade a hole to an empty
        // answer instead of panicking in the serving path.
        out.into_iter().map(Option::unwrap_or_default).collect()
    }

    /// [`ServingEngine::recommend`] for a batch of users, fanned out over
    /// [`EngineConfig::workers`] scoped threads. Answers come back in
    /// request order and are byte-identical to single calls.
    pub fn recommend_batch(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        let workers = self.config.workers.max(1).min(users.len().max(1));
        if workers <= 1 {
            return self.serve_chunk(users, k);
        }
        let chunk = users.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = users
                .chunks(chunk)
                .map(|part| (s.spawn(move || self.serve_chunk(part, k)), part.len()))
                .collect();
            handles
                .into_iter()
                .flat_map(|(h, len)| match h.join() {
                    Ok(answers) => answers,
                    // Slot panics are already isolated inside
                    // serve_chunk, so this is a harness bug — but one
                    // poisoned chunk must degrade to empty answers, not
                    // take the rest of the batch (and the process) down.
                    Err(_) => {
                        self.metrics.record_worker_panic(len as u64);
                        self.config.tracer.event("worker_panic", |f| {
                            f.push("requests", len);
                        });
                        vec![Vec::new(); len]
                    }
                })
                .collect()
        })
    }
}
