//! The online serving engine: artifacts in, ranked book lists out.
//!
//! [`ServingEngine::load`] restores the trained models from an
//! [`ArtifactRegistry`] and answers [`ServingEngine::recommend`] /
//! [`ServingEngine::recommend_batch`] requests through a configurable
//! *fallback chain*: each request walks the chain (default
//! BPR → Closest Items → Most Read Items → Random Items) and is served
//! by the first slot that is healthy **and** returns a non-empty list.
//! A slot degrades — without failing the load — when its artifact is
//! missing, truncated, checksum-corrupted, or dimensionally incompatible
//! with the training interactions; a healthy slot still falls through
//! when it has nothing to say (e.g. Closest Items for a reader with no
//! history).
//!
//! Results are memoised in a bounded LRU keyed `(user, k, model_epoch)`;
//! the epoch comes from the registry manifest, and
//! [`ServingEngine::reload`] both bumps it and explicitly clears the
//! cache, so a retrain can never serve stale lists. Batch requests are
//! fanned out over a `std::thread::scope` worker pool sharing the same
//! cache and [`ServeMetrics`].

use crate::cache::LruCache;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::{ArtifactRegistry, LoadedArtifacts, RegistryError};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::random::RandomItems;
use rm_core::Recommender;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use std::sync::Mutex;
use std::time::Instant;

/// One link of the fallback chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSlot {
    /// Collaborative filtering (the paper's best model).
    Bpr,
    /// Content-based Closest Items.
    ClosestItems,
    /// Global-popularity Most Read Items.
    MostRead,
    /// Uniform-random terminal fallback.
    Random,
}

impl ModelSlot {
    /// Number of slots (sizes the metrics arrays).
    pub const COUNT: usize = 4;

    /// Every slot, in default chain order.
    pub const ALL: [Self; Self::COUNT] =
        [Self::Bpr, Self::ClosestItems, Self::MostRead, Self::Random];

    /// Dense index for metrics arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Bpr => 0,
            Self::ClosestItems => 1,
            Self::MostRead => 2,
            Self::Random => 3,
        }
    }

    /// Display name, matching the recommenders' [`Recommender::name`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Bpr => "BPR",
            Self::ClosestItems => "Closest Items",
            Self::MostRead => "Most Read Items",
            Self::Random => "Random Items",
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Slots tried in order; the first non-empty answer wins. Slots not
    /// listed are never consulted.
    pub chain: Vec<ModelSlot>,
    /// Worker threads for [`ServingEngine::recommend_batch`].
    pub workers: usize,
    /// LRU entries; `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Seed of the terminal Random Items fallback.
    pub random_seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            chain: ModelSlot::ALL.to_vec(),
            workers: 4,
            cache_capacity: 4096,
            random_seed: 42,
        }
    }
}

type CacheKey = (u32, usize, u64);

/// The offline-trained / online-serving recommendation engine.
#[derive(Debug)]
pub struct ServingEngine {
    config: EngineConfig,
    train: Interactions,
    epoch: u64,
    bpr: Option<Bpr>,
    closest: Option<ClosestItems>,
    most_read: Option<MostReadItems>,
    random: RandomItems,
    degraded: Vec<(ModelSlot, String)>,
    cache: Mutex<LruCache<CacheKey, Vec<u32>>>,
    metrics: ServeMetrics,
}

impl ServingEngine {
    /// Opens `registry` and builds the engine over `train` (the
    /// interactions the artifacts were fitted on — rebuilt
    /// deterministically from the corpus, they are not part of the
    /// registry). Slot-level artifact failures degrade the chain and are
    /// reported via [`ServingEngine::degraded`]; only a missing or
    /// unparsable manifest fails the load.
    pub fn load(
        registry: &ArtifactRegistry,
        train: &Interactions,
        config: EngineConfig,
    ) -> Result<Self, RegistryError> {
        let loaded = registry.load()?;
        let cache_capacity = config.cache_capacity;
        let random_seed = config.random_seed;
        let mut random = RandomItems::new(random_seed);
        random.fit(train);
        let mut engine = Self {
            config,
            train: train.clone(),
            epoch: 0,
            bpr: None,
            closest: None,
            most_read: None,
            random,
            degraded: Vec::new(),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            metrics: ServeMetrics::new(),
        };
        engine.install_artifacts(loaded);
        Ok(engine)
    }

    /// Swaps in a freshly saved artifact set: re-reads every slot, bumps
    /// the epoch from the manifest, and explicitly clears the cache (the
    /// epoch in the key already fences stale entries; clearing also
    /// returns their memory).
    pub fn reload(&mut self, registry: &ArtifactRegistry) -> Result<(), RegistryError> {
        let loaded = registry.load()?;
        self.install_artifacts(loaded);
        self.cache.get_mut().expect("cache mutex poisoned").clear();
        Ok(())
    }

    fn install_artifacts(&mut self, loaded: LoadedArtifacts) {
        self.epoch = loaded.manifest.epoch;
        self.degraded.clear();

        self.bpr = match loaded.bpr {
            Ok(model)
                if model.user_factors.rows() == self.train.n_users()
                    && model.item_factors.rows() == self.train.n_books() =>
            {
                let mut bpr = Bpr::new(BprConfig::default());
                bpr.install(model, &self.train);
                Some(bpr)
            }
            Ok(model) => {
                self.degrade(
                    ModelSlot::Bpr,
                    format!(
                        "dimension mismatch: model {}x{}, train {}x{}",
                        model.user_factors.rows(),
                        model.item_factors.rows(),
                        self.train.n_users(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::Bpr, e.to_string());
                None
            }
        };

        self.closest = match loaded.embeddings {
            Ok(store) if store.len() == self.train.n_books() => {
                let mut ci = ClosestItems::from_store(store, loaded.manifest.fields);
                ci.fit(&self.train);
                Some(ci)
            }
            Ok(store) => {
                self.degrade(
                    ModelSlot::ClosestItems,
                    format!(
                        "dimension mismatch: {} embeddings, {} books",
                        store.len(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::ClosestItems, e.to_string());
                None
            }
        };

        self.most_read = match loaded.most_read {
            Ok(mut mr) if mr.counts().len() == self.train.n_books() => {
                mr.install(&self.train);
                Some(mr)
            }
            Ok(mr) => {
                self.degrade(
                    ModelSlot::MostRead,
                    format!(
                        "dimension mismatch: {} counts, {} books",
                        mr.counts().len(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::MostRead, e.to_string());
                None
            }
        };
    }

    fn degrade(&mut self, slot: ModelSlot, reason: String) {
        self.degraded.push((slot, reason));
    }

    /// The slots that failed to load, with the reason — the health report
    /// an operator would page on.
    #[must_use]
    pub fn degraded(&self) -> &[(ModelSlot, String)] {
        &self.degraded
    }

    /// True when the slot's model loaded and is servable.
    #[must_use]
    pub fn slot_loaded(&self, slot: ModelSlot) -> bool {
        match slot {
            ModelSlot::Bpr => self.bpr.is_some(),
            ModelSlot::ClosestItems => self.closest.is_some(),
            ModelSlot::MostRead => self.most_read.is_some(),
            ModelSlot::Random => true,
        }
    }

    /// The current artifact epoch (from the registry manifest).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Point-in-time request metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of cached recommendation lists.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache mutex poisoned").len()
    }

    fn slot_model(&self, slot: ModelSlot) -> Option<&dyn Recommender> {
        match slot {
            ModelSlot::Bpr => self.bpr.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::ClosestItems => self.closest.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::MostRead => self.most_read.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::Random => Some(&self.random),
        }
    }

    /// Top-`k` books for `user`, walking the fallback chain. An unknown
    /// user (outside the training matrix) gets an empty list. The call
    /// records latency, cache, and per-slot counters.
    pub fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        self.serve_chunk(&[user], k)
            .pop()
            .expect("one answer per user")
    }

    /// Serves one worker's share of a batch (or a single request): the
    /// cache is probed once for the whole chunk, the fallback chain is
    /// walked with the models' batched entry points (which reuse one
    /// catalogue-sized buffer across the chunk), and the metrics mutex is
    /// taken once. Amortising the per-request overhead this way is what
    /// makes batched serving outrun single calls even on one core.
    fn serve_chunk(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        let t0 = Instant::now();
        let mut out: Vec<Option<Vec<u32>>> = vec![None; users.len()];
        let mut hits = 0u64;
        let mut misses: Vec<usize> = Vec::with_capacity(users.len());
        if self.config.cache_capacity > 0 {
            let mut cache = self.cache.lock().expect("cache mutex poisoned");
            for (i, &u) in users.iter().enumerate() {
                match cache.get(&(u.0, k, self.epoch)) {
                    Some(books) => {
                        out[i] = Some(books.clone());
                        hits += 1;
                    }
                    None => misses.push(i),
                }
            }
        } else {
            misses.extend(0..users.len());
        }

        // Unknown users (outside the training matrix) get empty lists
        // without consulting the chain.
        misses.retain(|&i| {
            let known = users[i].index() < self.train.n_users();
            if !known {
                out[i] = Some(Vec::new());
            }
            known
        });

        let mut served = [0u64; ModelSlot::COUNT];
        let mut fallbacks = [0u64; ModelSlot::COUNT];
        let mut remaining = misses.clone();
        for &slot in &self.config.chain {
            if remaining.is_empty() {
                break;
            }
            let Some(model) = self.slot_model(slot) else {
                // Degraded slot: every remaining request falls through.
                fallbacks[slot.index()] += remaining.len() as u64;
                continue;
            };
            let chunk_users: Vec<UserIdx> = remaining.iter().map(|&i| users[i]).collect();
            let answers = model.recommend_batch(&chunk_users, k);
            let mut still_empty = Vec::new();
            for (&i, books) in remaining.iter().zip(answers) {
                if books.is_empty() {
                    // Healthy slot with nothing to say (e.g. Closest
                    // Items for an empty history): fall through too.
                    fallbacks[slot.index()] += 1;
                    still_empty.push(i);
                } else {
                    served[slot.index()] += 1;
                    out[i] = Some(books);
                }
            }
            remaining = still_empty;
        }
        // Chain exhausted: empty answers, not served by any slot.
        for i in remaining {
            out[i] = Some(Vec::new());
        }

        if self.config.cache_capacity > 0 && !misses.is_empty() {
            let mut cache = self.cache.lock().expect("cache mutex poisoned");
            for &i in &misses {
                let books = out[i].as_ref().expect("answered above");
                if !books.is_empty() {
                    cache.insert((users[i].0, k, self.epoch), books.clone());
                }
            }
        }

        self.metrics
            .record_chunk(t0.elapsed(), users.len() as u64, hits, &served, &fallbacks);
        out.into_iter()
            .map(|o| o.expect("answered above"))
            .collect()
    }

    /// [`ServingEngine::recommend`] for a batch of users, fanned out over
    /// [`EngineConfig::workers`] scoped threads. Answers come back in
    /// request order and are byte-identical to single calls.
    pub fn recommend_batch(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        let workers = self.config.workers.max(1).min(users.len().max(1));
        if workers <= 1 {
            return self.serve_chunk(users, k);
        }
        let chunk = users.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = users
                .chunks(chunk)
                .map(|part| s.spawn(move || self.serve_chunk(part, k)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("serve worker panicked"))
                .collect()
        })
    }
}
