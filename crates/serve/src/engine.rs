//! The online serving engine: artifacts in, ranked book lists out.
//!
//! [`ServingEngine::load`] restores the trained models from an
//! [`ArtifactRegistry`] and answers [`ServingEngine::recommend`] /
//! [`ServingEngine::recommend_batch`] requests through a configurable
//! *fallback chain*: each request walks the chain (default
//! BPR → Closest Items → Most Read Items → Random Items) and is served
//! by the first slot that is healthy **and** returns a non-empty list.
//! A slot degrades — without failing the load — when its artifact is
//! missing, truncated, checksum-corrupted, or dimensionally incompatible
//! with the training interactions; a healthy slot still falls through
//! when it has nothing to say (e.g. Closest Items for a reader with no
//! history).
//!
//! Runtime failures degrade the same way instead of taking serving down:
//!
//! * every slot call runs under [`std::panic::catch_unwind`], so a
//!   panicking model degrades the affected requests down the chain;
//! * an optional per-slot budget ([`EngineConfig::slot_budget`]) cuts
//!   off slow slot calls — the answers are discarded, a timeout is
//!   recorded, and the chain advances — while an optional whole-request
//!   budget ([`EngineConfig::request_budget`]) stops the chain walk once
//!   a request's [`Deadline`] expires;
//! * each slot carries a [`CircuitBreaker`]: repeated failures (panics,
//!   timeouts, injected errors) open it and the slot is skipped without
//!   being attempted until a cooldown admits a half-open probe;
//! * [`ServingEngine::reload_with_retry`] retries a failed artifact
//!   reload with deterministic, seeded-jitter exponential backoff
//!   ([`Backoff`]) and keeps serving the old epoch until a reload
//!   succeeds.
//!
//! All timing flows through the [`Clock`] in [`EngineConfig::clock`], so
//! tests drive deadlines, cooldowns, and backoff with a fake clock.
//!
//! Results are memoised in a bounded LRU keyed `(user, k, model_epoch)`;
//! the epoch comes from the registry manifest, and
//! [`ServingEngine::reload`] both bumps it and explicitly clears the
//! cache, so a retrain can never serve stale lists. Batch requests are
//! fanned out over a `std::thread::scope` worker pool sharing the same
//! cache and [`ServeMetrics`]; a worker that somehow panics outside the
//! per-slot isolation degrades only its own chunk.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
use crate::cache::LruCache;
use crate::metrics::{ChunkStats, MetricsSnapshot, ServeMetrics};
use crate::registry::{ArtifactRegistry, LoadedArtifacts, RegistryError};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::random::RandomItems;
use rm_core::Recommender;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_util::clock::{Backoff, Clock, Deadline, MonotonicClock};
use rm_util::trace::Tracer;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One link of the fallback chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSlot {
    /// Collaborative filtering (the paper's best model).
    Bpr,
    /// Content-based Closest Items.
    ClosestItems,
    /// Global-popularity Most Read Items.
    MostRead,
    /// Uniform-random terminal fallback.
    Random,
}

impl ModelSlot {
    /// Number of slots (sizes the metrics arrays).
    pub const COUNT: usize = 4;

    /// Every slot, in default chain order.
    pub const ALL: [Self; Self::COUNT] =
        [Self::Bpr, Self::ClosestItems, Self::MostRead, Self::Random];

    /// Dense index for metrics arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Bpr => 0,
            Self::ClosestItems => 1,
            Self::MostRead => 2,
            Self::Random => 3,
        }
    }

    /// Display name, matching the recommenders' [`Recommender::name`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Bpr => "BPR",
            Self::ClosestItems => "Closest Items",
            Self::MostRead => "Most Read Items",
            Self::Random => "Random Items",
        }
    }

    /// Snake-case identifier used as the `slot` label in Prometheus
    /// exposition and trace events.
    #[must_use]
    pub fn metric_label(self) -> &'static str {
        match self {
            Self::Bpr => "bpr",
            Self::ClosestItems => "closest_items",
            Self::MostRead => "most_read",
            Self::Random => "random",
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Slots tried in order; the first non-empty answer wins. Slots not
    /// listed are never consulted.
    pub chain: Vec<ModelSlot>,
    /// Worker threads for [`ServingEngine::recommend_batch`].
    pub workers: usize,
    /// LRU entries; `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Seed of the terminal Random Items fallback.
    pub random_seed: u64,
    /// Per-slot-call time budget: a call exceeding it is cut off (its
    /// answers discarded, a timeout recorded, the breaker notified) and
    /// the chain advances. `None` disables the check — and its two
    /// clock reads — entirely.
    pub slot_budget: Option<Duration>,
    /// Whole-request budget: each request carries a [`Deadline`] this
    /// far in the future, and once it expires the chain walk stops (the
    /// remaining requests answer empty, counted as deadline skips).
    /// `None` disables the check.
    pub request_budget: Option<Duration>,
    /// Per-slot circuit-breaker configuration; `None` disables breakers.
    pub breaker: Option<BreakerConfig>,
    /// The monotonic clock deadlines, breaker cooldowns, and reload
    /// backoff read. Tests substitute a
    /// [`FakeClock`](rm_util::clock::FakeClock).
    pub clock: Arc<dyn Clock>,
    /// Structured trace sink for per-chunk spans, slot-call outcomes,
    /// breaker transitions, and reloads. Disabled by default — a
    /// disabled tracer costs one branch per call site and allocates
    /// nothing.
    pub tracer: Arc<Tracer>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            chain: ModelSlot::ALL.to_vec(),
            workers: 4,
            cache_capacity: 4096,
            random_seed: 42,
            slot_budget: None,
            request_budget: None,
            breaker: Some(BreakerConfig::default()),
            clock: Arc::new(MonotonicClock::new()),
            tracer: Arc::new(Tracer::disabled()),
        }
    }
}

type CacheKey = (u32, usize, u64);

/// The offline-trained / online-serving recommendation engine.
#[derive(Debug)]
pub struct ServingEngine {
    config: EngineConfig,
    train: Interactions,
    epoch: u64,
    bpr: Option<Bpr>,
    closest: Option<ClosestItems>,
    most_read: Option<MostReadItems>,
    random: RandomItems,
    degraded: Vec<(ModelSlot, String)>,
    cache: Mutex<LruCache<CacheKey, Vec<u32>>>,
    breakers: Option<Mutex<[CircuitBreaker; ModelSlot::COUNT]>>,
    metrics: ServeMetrics,
    #[cfg(feature = "testing")]
    faults: crate::fault::FaultInjector,
}

impl ServingEngine {
    /// Opens `registry` and builds the engine over `train` (the
    /// interactions the artifacts were fitted on — rebuilt
    /// deterministically from the corpus, they are not part of the
    /// registry). Slot-level artifact failures degrade the chain and are
    /// reported via [`ServingEngine::degraded`]; only a missing or
    /// unparsable manifest fails the load.
    pub fn load(
        registry: &ArtifactRegistry,
        train: &Interactions,
        config: EngineConfig,
    ) -> Result<Self, RegistryError> {
        let loaded = registry.load()?;
        let cache_capacity = config.cache_capacity;
        let random_seed = config.random_seed;
        let breakers = config
            .breaker
            .map(|cfg| Mutex::new(std::array::from_fn(|_| CircuitBreaker::new(cfg))));
        let mut random = RandomItems::new(random_seed);
        random.fit(train);
        let metrics = ServeMetrics::new(Arc::clone(&config.clock));
        let mut engine = Self {
            config,
            train: train.clone(),
            epoch: 0,
            bpr: None,
            closest: None,
            most_read: None,
            random,
            degraded: Vec::new(),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            breakers,
            metrics,
            #[cfg(feature = "testing")]
            faults: crate::fault::FaultInjector::default(),
        };
        engine.install_artifacts(loaded);
        Ok(engine)
    }

    /// [`ServingEngine::load`], then arms the fault-injection plan —
    /// the chaos harness's entry point.
    #[cfg(feature = "testing")]
    pub fn load_with_faults(
        registry: &ArtifactRegistry,
        train: &Interactions,
        config: EngineConfig,
        plan: crate::fault::FaultPlan,
    ) -> Result<Self, RegistryError> {
        let mut engine = Self::load(registry, train, config)?;
        engine.inject_faults(plan);
        Ok(engine)
    }

    /// Replaces the active fault plan (and resets its call counters).
    #[cfg(feature = "testing")]
    pub fn inject_faults(&mut self, plan: crate::fault::FaultPlan) {
        self.faults = crate::fault::FaultInjector::new(plan);
    }

    /// The active fault injector (call counts, plan).
    #[cfg(feature = "testing")]
    #[must_use]
    pub fn fault_injector(&self) -> &crate::fault::FaultInjector {
        &self.faults
    }

    /// Swaps in a freshly saved artifact set: re-reads every slot, bumps
    /// the epoch from the manifest, resets the circuit breakers (a new
    /// epoch deserves a clean slate), and explicitly clears the cache
    /// (the epoch in the key already fences stale entries; clearing also
    /// returns their memory). On error the engine is untouched and keeps
    /// serving the old epoch.
    pub fn reload(&mut self, registry: &ArtifactRegistry) -> Result<(), RegistryError> {
        // The span must borrow a local handle, not `self.config`, so the
        // `&mut self` artifact swap below stays borrowable.
        let tracer = Arc::clone(&self.config.tracer);
        let span = tracer.span("reload");
        let loaded = match registry.load() {
            Ok(loaded) => loaded,
            Err(e) => {
                span.finish(|f| {
                    f.push("ok", false).push("error", e.to_string());
                });
                return Err(e);
            }
        };
        self.install_artifacts(loaded);
        self.cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        span.finish(|f| {
            f.push("ok", true)
                .push("epoch", self.epoch)
                .push("degraded_slots", self.degraded.len());
        });
        Ok(())
    }

    /// [`ServingEngine::reload`] with bounded retries: each failed
    /// attempt sleeps the backoff schedule's next deterministic,
    /// seeded-jitter delay (through the engine clock) before trying
    /// again. Returns the number of attempts a successful reload took;
    /// on exhaustion returns the last error with the engine untouched,
    /// still serving the old epoch.
    pub fn reload_with_retry(
        &mut self,
        registry: &ArtifactRegistry,
        backoff: &Backoff,
    ) -> Result<u32, RegistryError> {
        let attempts = backoff.attempts.max(1);
        let mut attempt = 0;
        loop {
            match self.reload(registry) {
                Ok(()) => return Ok(attempt + 1),
                Err(e) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(e);
                    }
                    self.config.clock.sleep(backoff.delay(attempt - 1));
                }
            }
        }
    }

    fn install_artifacts(&mut self, loaded: LoadedArtifacts) {
        self.epoch = loaded.manifest.epoch;
        self.degraded.clear();
        if let (Some(breakers), Some(cfg)) = (&mut self.breakers, self.config.breaker) {
            for b in breakers
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .iter_mut()
            {
                *b = CircuitBreaker::new(cfg);
            }
        }

        self.bpr = match loaded.bpr {
            Ok(model)
                if model.user_factors.rows() == self.train.n_users()
                    && model.item_factors.rows() == self.train.n_books() =>
            {
                let mut bpr = Bpr::new(BprConfig::default());
                bpr.install(model, &self.train);
                Some(bpr)
            }
            Ok(model) => {
                self.degrade(
                    ModelSlot::Bpr,
                    format!(
                        "dimension mismatch: model {}x{}, train {}x{}",
                        model.user_factors.rows(),
                        model.item_factors.rows(),
                        self.train.n_users(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::Bpr, e.to_string());
                None
            }
        };

        self.closest = match loaded.embeddings {
            Ok(store) if store.len() == self.train.n_books() => {
                let mut ci = ClosestItems::from_store(store, loaded.manifest.fields);
                ci.fit(&self.train);
                Some(ci)
            }
            Ok(store) => {
                self.degrade(
                    ModelSlot::ClosestItems,
                    format!(
                        "dimension mismatch: {} embeddings, {} books",
                        store.len(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::ClosestItems, e.to_string());
                None
            }
        };

        self.most_read = match loaded.most_read {
            Ok(mut mr) if mr.counts().len() == self.train.n_books() => {
                mr.install(&self.train);
                Some(mr)
            }
            Ok(mr) => {
                self.degrade(
                    ModelSlot::MostRead,
                    format!(
                        "dimension mismatch: {} counts, {} books",
                        mr.counts().len(),
                        self.train.n_books()
                    ),
                );
                None
            }
            Err(e) => {
                self.degrade(ModelSlot::MostRead, e.to_string());
                None
            }
        };
    }

    fn degrade(&mut self, slot: ModelSlot, reason: String) {
        self.degraded.push((slot, reason));
    }

    /// The slots that failed to load, with the reason — the health report
    /// an operator would page on.
    #[must_use]
    pub fn degraded(&self) -> &[(ModelSlot, String)] {
        &self.degraded
    }

    /// True when the slot's model loaded and is servable.
    #[must_use]
    pub fn slot_loaded(&self, slot: ModelSlot) -> bool {
        match slot {
            ModelSlot::Bpr => self.bpr.is_some(),
            ModelSlot::ClosestItems => self.closest.is_some(),
            ModelSlot::MostRead => self.most_read.is_some(),
            ModelSlot::Random => true,
        }
    }

    /// The current artifact epoch (from the registry manifest).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Point-in-time request metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Point-in-time metrics in Prometheus text exposition format,
    /// including the live breaker state per slot (when breakers are on).
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.metrics
            .snapshot()
            .render_prometheus(self.breaker_states())
    }

    /// The engine's trace sink (drain it for JSONL output).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.config.tracer
    }

    /// Current circuit-breaker state per slot (by [`ModelSlot::index`]);
    /// `None` when breakers are disabled.
    #[must_use]
    pub fn breaker_states(&self) -> Option<[BreakerState; ModelSlot::COUNT]> {
        let breakers = self.breakers.as_ref()?;
        let guard = breakers.lock().unwrap_or_else(PoisonError::into_inner);
        Some(std::array::from_fn(|i| guard[i].state()))
    }

    /// Number of cached recommendation lists.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.lock_cache().len()
    }

    /// The cache holds plain answer lists; recover a poisoned mutex
    /// rather than letting one isolated panic end serving.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, LruCache<CacheKey, Vec<u32>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn slot_model(&self, slot: ModelSlot) -> Option<&dyn Recommender> {
        match slot {
            ModelSlot::Bpr => self.bpr.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::ClosestItems => self.closest.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::MostRead => self.most_read.as_ref().map(|m| m as &dyn Recommender),
            ModelSlot::Random => Some(&self.random),
        }
    }

    /// Asks `slot`'s breaker to admit a call, folding any state
    /// transition into the chunk stats. Always true with breakers off.
    fn breaker_admit(&self, slot: ModelSlot, stats: &mut ChunkStats) -> bool {
        let Some(breakers) = &self.breakers else {
            return true;
        };
        let now = self.config.clock.now();
        let (admitted, transition) =
            breakers.lock().unwrap_or_else(PoisonError::into_inner)[slot.index()].admit(now);
        self.count_transition(transition, slot, stats);
        admitted
    }

    /// Reports a successful slot call to its breaker.
    fn breaker_success(&self, slot: ModelSlot, stats: &mut ChunkStats) {
        if let Some(breakers) = &self.breakers {
            let transition = breakers.lock().unwrap_or_else(PoisonError::into_inner)[slot.index()]
                .record_success();
            self.count_transition(transition, slot, stats);
        }
    }

    /// Reports a failed slot call (panic, timeout, injected error) to
    /// its breaker.
    fn breaker_failure(&self, slot: ModelSlot, stats: &mut ChunkStats) {
        if let Some(breakers) = &self.breakers {
            let now = self.config.clock.now();
            let transition = breakers.lock().unwrap_or_else(PoisonError::into_inner)[slot.index()]
                .record_failure(now);
            self.count_transition(transition, slot, stats);
        }
    }

    /// Folds a breaker state transition into the chunk counters and
    /// emits a `breaker_transition` trace event.
    fn count_transition(
        &self,
        transition: Option<Transition>,
        slot: ModelSlot,
        stats: &mut ChunkStats,
    ) {
        let Some(t) = transition else { return };
        match t {
            Transition::Opened => stats.breaker_opened[slot.index()] += 1,
            Transition::HalfOpened => stats.breaker_half_open[slot.index()] += 1,
            Transition::Closed => stats.breaker_closed[slot.index()] += 1,
        }
        self.config.tracer.event("breaker_transition", |f| {
            f.push("slot", slot.metric_label()).push("to", t.label());
        });
    }

    /// Top-`k` books for `user`, walking the fallback chain. An unknown
    /// user (outside the training matrix) gets an empty list. The call
    /// records latency, cache, and per-slot counters.
    pub fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
        // serve_chunk answers every request; an empty Vec here is
        // unreachable in practice, but the request path degrades to "no
        // recommendations" rather than aborting on an internal bug.
        self.serve_chunk(&[user], k).pop().unwrap_or_default()
    }

    /// Serves one worker's share of a batch (or a single request): the
    /// cache is probed once for the whole chunk, the fallback chain is
    /// walked with the models' batched entry points (which reuse one
    /// catalogue-sized buffer across the chunk), and the metrics mutex is
    /// taken once. Amortising the per-request overhead this way is what
    /// makes batched serving outrun single calls even on one core.
    ///
    /// Each slot call is one *attempt*: it runs under panic isolation
    /// and (when configured) a deadline budget and a circuit breaker; a
    /// failed attempt degrades every not-yet-served request in the chunk
    /// down the chain, never the process.
    fn serve_chunk(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        let tracer = &self.config.tracer;
        let span = tracer.span("serve_chunk");
        let t0 = self.config.clock.now();
        let mut out: Vec<Option<Vec<u32>>> = vec![None; users.len()];
        let mut stats = ChunkStats::new(users.len() as u64, 0);
        let mut misses: Vec<usize> = Vec::with_capacity(users.len());
        if self.config.cache_capacity > 0 {
            let mut cache = self.lock_cache();
            for (i, &u) in users.iter().enumerate() {
                match cache.get(&(u.0, k, self.epoch)) {
                    Some(books) => {
                        out[i] = Some(books.clone());
                        stats.hits += 1;
                    }
                    None => misses.push(i),
                }
            }
        } else {
            misses.extend(0..users.len());
        }
        tracer.event("cache_lookup", |f| {
            f.push("n", users.len())
                .push("hits", stats.hits)
                .push("epoch", self.epoch);
        });

        // Unknown users (outside the training matrix) get empty lists
        // without consulting the chain.
        misses.retain(|&i| {
            let known = users[i].index() < self.train.n_users();
            if !known {
                out[i] = Some(Vec::new());
            }
            known
        });

        let deadline = self
            .config
            .request_budget
            .map(|budget| Deadline::after(&*self.config.clock, budget));
        let mut remaining = misses.clone();
        for &slot in &self.config.chain {
            if remaining.is_empty() {
                break;
            }
            if let Some(d) = deadline {
                if d.expired(&*self.config.clock) {
                    stats.deadline_skips += remaining.len() as u64;
                    tracer.event("deadline_expired", |f| {
                        f.push("skipped", remaining.len());
                    });
                    break;
                }
            }
            let Some(model) = self.slot_model(slot) else {
                // Degraded slot: every remaining request falls through.
                stats.fallbacks[slot.index()] += remaining.len() as u64;
                tracer.event("slot_call", |f| {
                    f.push("slot", slot.metric_label())
                        .push("requests", remaining.len())
                        .push("outcome", "degraded");
                });
                continue;
            };
            if !self.breaker_admit(slot, &mut stats) {
                stats.breaker_skips[slot.index()] += 1;
                stats.fallbacks[slot.index()] += remaining.len() as u64;
                tracer.event("slot_call", |f| {
                    f.push("slot", slot.metric_label())
                        .push("requests", remaining.len())
                        .push("outcome", "breaker_open");
                });
                continue;
            }
            // The budget clock starts before fault injection so injected
            // latency counts against the slot like real slowness would.
            let slot_started = self.config.slot_budget.map(|_| self.config.clock.now());
            #[cfg(feature = "testing")]
            let injected = self.faults.on_call(slot);
            #[cfg(feature = "testing")]
            {
                if let Some(d) = injected.latency {
                    self.config.clock.sleep(d);
                }
                if injected.error {
                    self.breaker_failure(slot, &mut stats);
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "injected_error");
                    });
                    continue;
                }
            }
            let chunk_users: Vec<UserIdx> = remaining.iter().map(|&i| users[i]).collect();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(feature = "testing")]
                if injected.panic {
                    panic!("injected fault: {} slot panic", slot.label());
                }
                model.recommend_batch(&chunk_users, k)
            }));
            let answers = match outcome {
                Ok(answers) => answers,
                Err(_) => {
                    // The slot panicked: isolate it, degrade the chunk
                    // down the chain, and let the breaker see a failure.
                    stats.panics[slot.index()] += 1;
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    self.breaker_failure(slot, &mut stats);
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "panic");
                    });
                    continue;
                }
            };
            if let (Some(budget), Some(started)) = (self.config.slot_budget, slot_started) {
                let elapsed = self.config.clock.now().saturating_sub(started);
                if elapsed > budget {
                    // Too slow: cut the slot off (its answers are
                    // discarded) and advance the chain.
                    stats.timeouts[slot.index()] += 1;
                    stats.fallbacks[slot.index()] += remaining.len() as u64;
                    self.breaker_failure(slot, &mut stats);
                    tracer.event("slot_call", |f| {
                        f.push("slot", slot.metric_label())
                            .push("requests", remaining.len())
                            .push("outcome", "timeout")
                            .push("elapsed_ns", elapsed.as_nanos() as u64);
                    });
                    continue;
                }
            }
            self.breaker_success(slot, &mut stats);
            let attempted = remaining.len();
            let mut still_empty = Vec::new();
            for (&i, books) in remaining.iter().zip(answers) {
                if books.is_empty() {
                    // Healthy slot with nothing to say (e.g. Closest
                    // Items for an empty history): fall through too.
                    stats.fallbacks[slot.index()] += 1;
                    still_empty.push(i);
                } else {
                    stats.served[slot.index()] += 1;
                    out[i] = Some(books);
                }
            }
            tracer.event("slot_call", |f| {
                f.push("slot", slot.metric_label())
                    .push("requests", attempted)
                    .push("outcome", "ok")
                    .push("served", attempted - still_empty.len());
            });
            remaining = still_empty;
        }
        // Chain exhausted (or deadline expired): empty answers, not
        // served by any slot.
        for i in remaining {
            out[i] = Some(Vec::new());
        }

        if self.config.cache_capacity > 0 && !misses.is_empty() {
            let mut cache = self.lock_cache();
            for &i in &misses {
                // Every miss index was answered above; skip (rather than
                // abort on) a hole if that invariant is ever broken.
                let Some(books) = out[i].as_ref() else {
                    continue;
                };
                if !books.is_empty() {
                    cache.insert((users[i].0, k, self.epoch), books.clone());
                }
            }
        }

        stats.elapsed = self.config.clock.now().saturating_sub(t0);
        self.metrics.record_chunk(&stats);
        span.finish(|f| {
            f.push("n", users.len())
                .push("hits", stats.hits)
                .push("deadline_skips", stats.deadline_skips);
        });
        // All slots are Some by construction; degrade a hole to an empty
        // answer instead of panicking in the serving path.
        out.into_iter().map(Option::unwrap_or_default).collect()
    }

    /// [`ServingEngine::recommend`] for a batch of users, fanned out over
    /// [`EngineConfig::workers`] scoped threads. Answers come back in
    /// request order and are byte-identical to single calls.
    pub fn recommend_batch(&self, users: &[UserIdx], k: usize) -> Vec<Vec<u32>> {
        let workers = self.config.workers.max(1).min(users.len().max(1));
        if workers <= 1 {
            return self.serve_chunk(users, k);
        }
        let chunk = users.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = users
                .chunks(chunk)
                .map(|part| (s.spawn(move || self.serve_chunk(part, k)), part.len()))
                .collect();
            handles
                .into_iter()
                .flat_map(|(h, len)| match h.join() {
                    Ok(answers) => answers,
                    // Slot panics are already isolated inside
                    // serve_chunk, so this is a harness bug — but one
                    // poisoned chunk must degrade to empty answers, not
                    // take the rest of the batch (and the process) down.
                    Err(_) => {
                        self.metrics.record_worker_panic(len as u64);
                        self.config.tracer.event("worker_panic", |f| {
                            f.push("requests", len);
                        });
                        vec![Vec::new(); len]
                    }
                })
                .collect()
        })
    }
}
