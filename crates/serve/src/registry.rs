//! The on-disk artifact registry: one directory per trained model set.
//!
//! Layout:
//!
//! ```text
//! <dir>/manifest.txt        epoch + Closest Items summary fields
//! <dir>/bpr.rmodel          BprModel        (tag 0x01)
//! <dir>/most_read.rmodel    MostReadItems   (tag 0x02)
//! <dir>/embeddings.rmodel   EmbeddingStore  (tag 0x03)
//! <dir>/ann.rmodel          AnnArtifact     (tag 0x04, optional)
//! ```
//!
//! Loading is *slot-tolerant*: the manifest is mandatory, but each model
//! slot resolves to its own `Result` so a missing, truncated, or
//! checksum-corrupted artifact degrades exactly one link of the serving
//! fallback chain instead of failing the whole load.
//!
//! Publication is *crash-safe*: every file is written through
//! [`rm_core::persist::write_atomic`] (`.tmp` sibling, fsync, rename) so
//! no artifact is ever torn, and the fsync'd manifest goes last so the
//! epoch bump is the commit point. `save` and `load` additionally take a
//! cooperative `registry.lock` file, so a trainer publishing into a
//! directory and a server reloading from it can never interleave.

use rm_core::bpr::BprModel;
use rm_core::most_read::MostReadItems;
use rm_core::persist::{write_atomic, DecodeError, PersistModel};
use rm_core::quant::QuantArtifact;
use rm_dataset::summary::SummaryFields;
use rm_embed::{AnnArtifact, EmbeddingStore};
use rm_util::clock::{Clock, MonotonicClock};
use rm_util::RecError;
use std::fmt;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Manifest file name inside a registry directory.
pub const MANIFEST_FILE: &str = "manifest.txt";
/// Cooperative lock file guarding saves and loads of one directory.
pub const LOCK_FILE: &str = "registry.lock";
/// BPR model artifact file name.
pub const BPR_FILE: &str = "bpr.rmodel";
/// Most Read Items artifact file name.
pub const MOST_READ_FILE: &str = "most_read.rmodel";
/// Embedding store artifact file name.
pub const EMBEDDINGS_FILE: &str = "embeddings.rmodel";
/// ANN (IVF) index artifact file name. Optional: a registry trained
/// before the ANN subsystem existed simply has no such file and the
/// serve pipeline keeps its exact scans.
pub const ANN_FILE: &str = "ann.rmodel";
/// Quantized factor/embedding artifact file name. Optional: when
/// present and dimension-consistent the engine scores its rank stage
/// from quantized rows; any failure here degrades only the memory
/// optimisation — exact f32 scoring keeps serving.
pub const QUANT_FILE: &str = "quant.rmodel";

const MANIFEST_HEADER: &str = "rm-serve-manifest 1";

/// The registry metadata persisted alongside the model artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Training epoch: bumped on every retrain, part of the serving-cache
    /// key so stale entries can never survive a reload.
    pub epoch: u64,
    /// The metadata summary the embeddings were built from.
    pub fields: SummaryFields,
}

impl Manifest {
    /// Renders the manifest as `key value` lines.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{MANIFEST_HEADER}\nepoch {}\nfields {}\n",
            self.epoch,
            self.fields.bits()
        )
    }

    /// Parses [`Manifest::render`] output.
    ///
    /// # Errors
    ///
    /// [`RecError::Corrupt`] when the header, a line, or a required key
    /// fails to parse.
    pub fn parse(text: &str) -> Result<Self, RecError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(MANIFEST_HEADER) {
            return Err(RecError::Corrupt("manifest: missing header".into()));
        }
        let mut epoch = None;
        let mut fields = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| RecError::Corrupt(format!("manifest: bad line: {line}")))?;
            match key {
                "epoch" => {
                    epoch =
                        Some(value.parse::<u64>().map_err(|_| {
                            RecError::Corrupt(format!("manifest: bad epoch: {value}"))
                        })?);
                }
                "fields" => {
                    fields = Some(SummaryFields::from_bits(value.parse::<u8>().map_err(
                        |_| RecError::Corrupt(format!("manifest: bad fields: {value}")),
                    )?));
                }
                // Unknown keys are ignored for forward compatibility.
                _ => {}
            }
        }
        Ok(Self {
            epoch: epoch.ok_or_else(|| RecError::Corrupt("manifest: missing epoch".into()))?,
            fields: fields.ok_or_else(|| RecError::Corrupt("manifest: missing fields".into()))?,
        })
    }
}

/// Why one model slot failed to load (the registry itself is fine).
#[derive(Debug)]
pub enum SlotError {
    /// The artifact file does not exist.
    Missing,
    /// The file exists but could not be read.
    Io(String),
    /// The bytes were read but failed the codec (truncation, checksum,
    /// wrong model tag, …).
    Decode(DecodeError),
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Missing => write!(f, "artifact missing"),
            Self::Io(msg) => write!(f, "artifact unreadable: {msg}"),
            Self::Decode(e) => write!(f, "artifact corrupt: {e}"),
        }
    }
}

/// Per-slot load outcome.
pub type SlotResult<T> = Result<T, SlotError>;

/// Everything a [`crate::engine::ServingEngine`] needs from disk, with
/// per-slot success or failure.
#[derive(Debug)]
pub struct LoadedArtifacts {
    /// The parsed manifest.
    pub manifest: Manifest,
    /// The collaborative-filtering model.
    pub bpr: SlotResult<BprModel>,
    /// The popularity baseline's read counts.
    pub most_read: SlotResult<MostReadItems>,
    /// The catalogue embeddings for Closest Items.
    pub embeddings: SlotResult<EmbeddingStore>,
    /// The IVF indexes accelerating the content-similar and
    /// CF-neighbour candidate sources. `Missing` is the normal state
    /// for registries trained without ANN; any failure here degrades
    /// only the acceleration — the exact scans keep serving.
    pub ann: SlotResult<AnnArtifact>,
    /// The quantized factor/embedding rows for the low-memory scoring
    /// path. `Missing` is the normal state for registries trained with
    /// `--quant off`; any failure here degrades only the quantized
    /// path — exact f32 scoring keeps serving.
    pub quant: SlotResult<QuantArtifact>,
}

/// A held `registry.lock`: created with `O_EXCL`, removed on drop.
///
/// The lock is *cooperative* — it only excludes other
/// [`ArtifactRegistry`] users, which is exactly the save-vs-reload race
/// it exists to prevent. The holder writes `PID owner-token` into the
/// file: the PID makes a stale lock diagnosable by hand, and the token
/// lets waiters recover from one automatically — a waiter that has
/// watched the *same* token sit unchanged for the registry's stale-after
/// window concludes the holder crashed between create and drop, removes
/// the file, and races for a fresh `O_EXCL` acquisition (losing that
/// race is fine; the winner holds a valid lock).
#[derive(Debug)]
pub struct RegistryLock {
    path: PathBuf,
}

/// Process-wide acquisition counter: makes every owner token unique even
/// when one process re-acquires the same lock in a tight loop.
static LOCK_SEQ: AtomicU64 = AtomicU64::new(0);

impl RegistryLock {
    /// Polling interval while waiting for a held lock.
    const POLL: Duration = Duration::from_millis(2);

    fn acquire(
        dir: &Path,
        wait: Duration,
        stale_after: Duration,
        clock: &dyn Clock,
    ) -> io::Result<Self> {
        let path = dir.join(LOCK_FILE);
        let deadline = clock.now() + wait;
        // The token last read out of the lock file and when we first saw
        // it. A change resets the staleness window: the lock is moving.
        let mut observed: Option<(String, Duration)> = None;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let token = LOCK_SEQ.fetch_add(1, Ordering::Relaxed);
                    let _ = write!(f, "{} {token}", std::process::id());
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let now = clock.now();
                    // Holder bookkeeping: an unreadable file (mid-write
                    // or just-deleted) simply doesn't advance the window.
                    if let Ok(contents) = std::fs::read_to_string(&path) {
                        match &observed {
                            Some((token, first_seen)) if *token == contents => {
                                if now.saturating_sub(*first_seen) >= stale_after {
                                    // Same owner for the whole window:
                                    // its process died holding the lock.
                                    let _ = std::fs::remove_file(&path);
                                    observed = None;
                                    continue;
                                }
                            }
                            _ => observed = Some((contents, now)),
                        }
                    }
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            format!(
                                "registry.lock held by another process (waited {wait:?}, \
                                 stale takeover after {stale_after:?}); remove {} if its \
                                 holder crashed",
                                path.display()
                            ),
                        ));
                    }
                    clock.sleep(Self::POLL);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for RegistryLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Handle to an artifact directory.
#[derive(Debug, Clone)]
pub struct ArtifactRegistry {
    dir: PathBuf,
    lock_wait: Duration,
    stale_after: Duration,
    clock: Arc<dyn Clock>,
}

impl ArtifactRegistry {
    /// How long `save`/`load` wait for the cooperative lock by default.
    pub const DEFAULT_LOCK_WAIT: Duration = Duration::from_secs(5);

    /// How long an unchanged owner token must sit in `registry.lock`
    /// before waiters treat the holder as crashed and take the lock
    /// over. A healthy save or load holds the lock for milliseconds, so
    /// two seconds of a frozen token means a dead holder — and keeping
    /// this below [`Self::DEFAULT_LOCK_WAIT`] lets recovery happen
    /// within a default wait instead of timing out behind a corpse.
    pub const DEFAULT_STALE_AFTER: Duration = Duration::from_secs(2);

    /// Points at (but does not create) an artifact directory.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            lock_wait: Self::DEFAULT_LOCK_WAIT,
            stale_after: Self::DEFAULT_STALE_AFTER,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// The same registry with a different lock-acquisition timeout.
    #[must_use]
    pub fn with_lock_wait(mut self, wait: Duration) -> Self {
        self.lock_wait = wait;
        self
    }

    /// The same registry with a different stale-lock takeover window.
    #[must_use]
    pub fn with_stale_after(mut self, stale_after: Duration) -> Self {
        self.stale_after = stale_after;
        self
    }

    /// The same registry timed by `clock` (tests pass a fake so lock
    /// waits and stale takeovers run on simulated time).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Takes the cooperative `registry.lock` explicitly (for callers
    /// doing multi-step maintenance). `save` and `load` take it
    /// internally; while a caller holds it they will block, then fail.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when another holder keeps the lock past the
    /// registry's lock-wait timeout; any other I/O error from creating
    /// the lock file.
    pub fn lock(&self) -> io::Result<RegistryLock> {
        std::fs::create_dir_all(&self.dir)?;
        RegistryLock::acquire(&self.dir, self.lock_wait, self.stale_after, &*self.clock)
    }

    /// The registry directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of a file inside the registry.
    #[must_use]
    pub fn path_of(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Writes the full artifact set (creating the directory if needed)
    /// under the cooperative lock. Every file goes through an atomic
    /// `.tmp`-then-rename publication so a crash mid-save can tear
    /// nothing; the fsync'd manifest is written last, making the epoch
    /// bump the commit point — a crash before it leaves the previous
    /// manifest (and epoch) in force.
    /// `ann` and `quant` are optional: `Some` publishes the artifact
    /// alongside the models, `None` *removes* any previous file so a
    /// retrain that skips the optional artifact can never leave a stale
    /// one whose dimensions happen to match the new models.
    pub fn save(
        &self,
        manifest: &Manifest,
        bpr: &BprModel,
        most_read: &MostReadItems,
        embeddings: &EmbeddingStore,
        ann: Option<&AnnArtifact>,
        quant: Option<&QuantArtifact>,
    ) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let _lock =
            RegistryLock::acquire(&self.dir, self.lock_wait, self.stale_after, &*self.clock)?;
        write_atomic(&self.path_of(BPR_FILE), &bpr.to_bytes())?;
        write_atomic(&self.path_of(MOST_READ_FILE), &most_read.to_bytes())?;
        write_atomic(&self.path_of(EMBEDDINGS_FILE), &embeddings.to_bytes())?;
        for (file, bytes) in [
            (ANN_FILE, ann.map(PersistModel::to_bytes)),
            (QUANT_FILE, quant.map(PersistModel::to_bytes)),
        ] {
            match bytes {
                Some(bytes) => write_atomic(&self.path_of(file), &bytes)?,
                None => match std::fs::remove_file(self.path_of(file)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                },
            }
        }
        write_atomic(&self.path_of(MANIFEST_FILE), manifest.render().as_bytes())?;
        Ok(())
    }

    /// [`ArtifactRegistry::save`], then corrupts the slots a
    /// [`FaultPlan`](crate::fault::FaultPlan) marks `corrupt_on_save` —
    /// each such artifact is truncated to half its length, simulating a
    /// publisher that died mid-write *without* the atomic-rename
    /// protocol. Chaos tests use this to prove a reload degrades exactly
    /// the corrupted slots.
    #[cfg(feature = "testing")]
    pub fn save_with_faults(
        &self,
        manifest: &Manifest,
        bpr: &BprModel,
        most_read: &MostReadItems,
        embeddings: &EmbeddingStore,
        ann: Option<&AnnArtifact>,
        quant: Option<&QuantArtifact>,
        plan: &crate::fault::FaultPlan,
    ) -> io::Result<()> {
        use crate::engine::ModelSlot;
        self.save(manifest, bpr, most_read, embeddings, ann, quant)?;
        let files = [
            (ModelSlot::Bpr, BPR_FILE),
            (ModelSlot::MostRead, MOST_READ_FILE),
            (ModelSlot::ClosestItems, EMBEDDINGS_FILE),
        ];
        for (slot, file) in files {
            if plan.slot(slot).corrupt_on_save {
                let path = self.path_of(file);
                let bytes = std::fs::read(&path)?;
                std::fs::write(&path, &bytes[..bytes.len() / 2])?;
            }
        }
        Ok(())
    }

    fn load_slot<M: PersistModel>(&self, file: &str) -> SlotResult<M> {
        let bytes = match std::fs::read(self.path_of(file)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(SlotError::Missing),
            Err(e) => return Err(SlotError::Io(e.to_string())),
        };
        M::from_bytes(&bytes).map_err(SlotError::Decode)
    }

    /// Opens the registry: the manifest must parse, each model slot loads
    /// independently. The cooperative lock is held across the reads so a
    /// concurrent `save` cannot interleave; a registry directory that
    /// does not exist yet skips the lock and reports the manifest's
    /// `NotFound` as usual.
    ///
    /// # Errors
    ///
    /// [`RecError::Io`] when the lock or manifest cannot be read,
    /// [`RecError::Corrupt`] when the manifest does not parse.
    pub fn load(&self) -> Result<LoadedArtifacts, RecError> {
        let _lock = match RegistryLock::acquire(
            &self.dir,
            self.lock_wait,
            self.stale_after,
            &*self.clock,
        ) {
            Ok(lock) => Some(lock),
            // Missing directory: fall through to the manifest read, which
            // produces the canonical "registry absent" error.
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(RecError::Io(e)),
        };
        let manifest_text = std::fs::read_to_string(self.path_of(MANIFEST_FILE))?;
        let manifest = Manifest::parse(&manifest_text)?;
        Ok(LoadedArtifacts {
            manifest,
            bpr: self.load_slot(BPR_FILE),
            most_read: self.load_slot(MOST_READ_FILE),
            embeddings: self.load_slot(EMBEDDINGS_FILE),
            ann: self.load_slot(ANN_FILE),
            quant: self.load_slot(QUANT_FILE),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_sparse::DenseMatrix;

    fn temp_registry(tag: &str) -> ArtifactRegistry {
        let dir =
            std::env::temp_dir().join(format!("rm-serve-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactRegistry::new(dir)
    }

    fn tiny_artifacts() -> (BprModel, MostReadItems, EmbeddingStore) {
        let bpr = BprModel {
            user_factors: DenseMatrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
            item_factors: DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5]),
        };
        let most_read = MostReadItems::from_counts(vec![5, 0, 2]);
        let embeddings = EmbeddingStore::from_matrix(DenseMatrix::from_vec(
            3,
            2,
            vec![3.0, 4.0, 1.0, 0.0, 0.0, 2.0],
        ));
        (bpr, most_read, embeddings)
    }

    #[test]
    fn manifest_round_trip() {
        let m = Manifest {
            epoch: 42,
            fields: SummaryFields::BEST,
        };
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(matches!(
            Manifest::parse("not a manifest"),
            Err(RecError::Corrupt(_))
        ));
        assert!(matches!(
            Manifest::parse(MANIFEST_HEADER),
            Err(RecError::Corrupt(_))
        ));
        assert!(matches!(
            Manifest::parse(&format!("{MANIFEST_HEADER}\nepoch x\nfields 2")),
            Err(RecError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_ignores_unknown_keys() {
        let text = format!("{MANIFEST_HEADER}\nepoch 7\nfields 10\nfuture stuff\n");
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(m.epoch, 7);
        assert_eq!(m.fields, SummaryFields::BEST);
    }

    #[test]
    fn save_then_load_round_trips_every_slot() {
        let reg = temp_registry("roundtrip");
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let manifest = Manifest {
            epoch: 3,
            fields: SummaryFields::ALL,
        };
        reg.save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .unwrap();

        let loaded = reg.load().unwrap();
        assert_eq!(loaded.manifest, manifest);
        // No ANN was published: that slot is Missing, not an error.
        assert!(matches!(loaded.ann, Err(SlotError::Missing)));
        assert_eq!(loaded.bpr.unwrap(), bpr);
        assert_eq!(loaded.most_read.unwrap().counts(), most_read.counts());
        let store = loaded.embeddings.unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.embedding(0), embeddings.embedding(0));
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    fn tiny_ann(bpr: &BprModel, embeddings: &EmbeddingStore) -> AnnArtifact {
        let cfg = rm_embed::IvfConfig {
            nlist: 2,
            iters: 2,
            seed: 1,
            train_sample: 0,
        };
        AnnArtifact {
            content: Some(rm_embed::IvfIndex::build(embeddings, &cfg)),
            cf: Some(rm_embed::IvfIndex::build_mips(&bpr.item_factors, &cfg)),
        }
    }

    #[test]
    fn ann_slot_round_trips_and_none_scrubs_stale_index() {
        let reg = temp_registry("ann-slot");
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let ann = tiny_ann(&bpr, &embeddings);
        let manifest = Manifest {
            epoch: 1,
            fields: SummaryFields::BEST,
        };
        reg.save(&manifest, &bpr, &most_read, &embeddings, Some(&ann), None)
            .unwrap();
        assert_eq!(reg.load().unwrap().ann.unwrap(), ann);

        // A retrain without ANN must remove the stale index: its
        // dimensions could accidentally match the new models.
        reg.save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .unwrap();
        assert!(!reg.path_of(ANN_FILE).exists());
        assert!(matches!(reg.load().unwrap().ann, Err(SlotError::Missing)));
    }

    #[test]
    fn corrupt_ann_slot_degrades_not_fails() {
        let reg = temp_registry("ann-corrupt");
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let ann = tiny_ann(&bpr, &embeddings);
        let manifest = Manifest {
            epoch: 1,
            fields: SummaryFields::BEST,
        };
        reg.save(&manifest, &bpr, &most_read, &embeddings, Some(&ann), None)
            .unwrap();
        let path = reg.path_of(ANN_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = reg.load().unwrap();
        assert!(matches!(loaded.ann, Err(SlotError::Decode(_))));
        assert!(loaded.bpr.is_ok());
        assert!(loaded.embeddings.is_ok());
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn save_leaves_no_temp_or_lock_files() {
        let reg = temp_registry("atomic");
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let manifest = Manifest {
            epoch: 1,
            fields: SummaryFields::BEST,
        };
        reg.save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(reg.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp") || n == LOCK_FILE)
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn save_while_locked_times_out_and_succeeds_after_release() {
        let reg = temp_registry("locked").with_lock_wait(Duration::from_millis(50));
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let manifest = Manifest {
            epoch: 1,
            fields: SummaryFields::BEST,
        };

        let held = reg.lock().expect("explicit lock");
        let err = reg
            .save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .expect_err("save under a held lock must fail");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{err}");
        assert!(err.to_string().contains("registry.lock"), "{err}");

        // Loads respect the same lock.
        assert!(matches!(reg.load(), Err(RecError::Io(_))));

        drop(held);
        reg.save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .expect("save after release");
        assert!(reg.load().is_ok());
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn lock_is_released_on_drop_even_after_timeout() {
        let reg = temp_registry("lock-drop").with_lock_wait(Duration::from_millis(10));
        let first = reg.lock().unwrap();
        assert!(reg.lock().is_err(), "second lock while held");
        drop(first);
        let second = reg.lock().expect("lock after drop");
        drop(second);
        assert!(
            !reg.path_of(LOCK_FILE).exists(),
            "lock file must be removed on drop"
        );
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn stale_lock_from_a_dead_holder_is_taken_over() {
        use rm_util::clock::FakeClock;
        let clock = Arc::new(FakeClock::new());
        let reg = temp_registry("stale-takeover")
            .with_lock_wait(Duration::from_secs(5))
            .with_stale_after(Duration::from_millis(100))
            .with_clock(clock.clone());
        std::fs::create_dir_all(reg.dir()).unwrap();
        // A holder that crashed between create and drop: the file stays,
        // its owner token never changes again.
        std::fs::write(reg.path_of(LOCK_FILE), "999999 dead-token").unwrap();
        let lock = reg.lock().expect("waiter takes over the stale lock");
        // Takeover waited out the staleness window on simulated time,
        // well inside the acquisition deadline.
        assert!(clock.now() >= Duration::from_millis(100));
        assert!(clock.now() < Duration::from_secs(5));
        let contents = std::fs::read_to_string(reg.path_of(LOCK_FILE)).unwrap();
        assert_ne!(contents, "999999 dead-token", "new owner wrote its token");
        assert!(
            contents.starts_with(&std::process::id().to_string()),
            "{contents}"
        );
        drop(lock);
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn held_lock_inside_the_stale_window_is_not_stolen() {
        use rm_util::clock::FakeClock;
        let clock = Arc::new(FakeClock::new());
        let reg = temp_registry("no-steal")
            .with_lock_wait(Duration::from_millis(50))
            .with_stale_after(Duration::from_secs(10))
            .with_clock(clock);
        let held = reg.lock().expect("first lock");
        let err = reg.lock().expect_err("waiter must time out, not steal");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(
            reg.path_of(LOCK_FILE).exists(),
            "the live holder keeps its lock"
        );
        drop(held);
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn missing_registry_is_an_io_error() {
        let reg = ArtifactRegistry::new("/nonexistent/rm-serve-nowhere");
        assert!(matches!(reg.load(), Err(RecError::Io(_))));
    }

    #[test]
    fn missing_slot_degrades_not_fails() {
        let reg = temp_registry("missing-slot");
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let manifest = Manifest {
            epoch: 1,
            fields: SummaryFields::BEST,
        };
        reg.save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .unwrap();
        std::fs::remove_file(reg.path_of(BPR_FILE)).unwrap();

        let loaded = reg.load().unwrap();
        assert!(matches!(loaded.bpr, Err(SlotError::Missing)));
        assert!(loaded.most_read.is_ok());
        assert!(loaded.embeddings.is_ok());
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn swapped_artifacts_fail_with_wrong_model() {
        // A valid most-read file parked under the BPR name passes the
        // checksum but trips the tag check.
        let reg = temp_registry("swapped");
        let (bpr, most_read, embeddings) = tiny_artifacts();
        let manifest = Manifest {
            epoch: 1,
            fields: SummaryFields::BEST,
        };
        reg.save(&manifest, &bpr, &most_read, &embeddings, None, None)
            .unwrap();
        std::fs::copy(reg.path_of(MOST_READ_FILE), reg.path_of(BPR_FILE)).unwrap();

        let loaded = reg.load().unwrap();
        assert!(matches!(
            loaded.bpr,
            Err(SlotError::Decode(DecodeError::WrongModel { .. }))
        ));
        let _ = std::fs::remove_dir_all(reg.dir());
    }
}
