//! Overload resilience: admission control and the brownout ladder
//! (DESIGN.md §16).
//!
//! The engine's fault envelope (breakers, budgets, panic isolation)
//! handles *broken* dependencies; this module handles *too much load*.
//! Three cooperating pieces sit in front of `serve_chunk`:
//!
//! * [`AdmissionQueue`] — a bounded FIFO. A full queue rejects new
//!   arrivals ([`ShedReason::QueueFull`]), and a CoDel-style controller
//!   sheds from the *head* once queueing delay has exceeded its target
//!   for a sustained interval ([`ShedReason::CodelOverload`]) — head
//!   drops push back on the arrival rate instead of serving requests
//!   whose callers have long given up.
//! * [`PressureController`] — an EWMA of queueing delay plus the recent
//!   p95 of a rolling quarter-octave histogram, driving the brownout
//!   [`DegradationLevel`] ladder: pressure steps the pipeline down one
//!   level at a time (cheaper answers, same availability), and recovery
//!   steps back up only hysteretically — pressure must stay below a
//!   *lower* threshold for a hold period, so the ladder cannot flap.
//! * [`OverloadGovernor`] — composes the two and adds deadline-aware
//!   shedding: a request whose remaining [`Deadline`] budget is already
//!   below the observed per-request service cost (an EWMA the engine
//!   feeds back after every serve) is rejected up front
//!   ([`ShedReason::DeadlineHopeless`]) rather than served late.
//!
//! Everything is driven by the engine's [`Clock`], so identical arrival
//! schedules under a `FakeClock` produce identical shed decisions and
//! ladder transitions — the determinism tests assert exactly that.

use rm_dataset::ids::UserIdx;
use rm_util::stats::Histogram;
use std::collections::VecDeque;
use std::time::Duration;

/// One rung of the brownout ladder, cheapest last. Each level names the
/// work the pipeline *still does*; stepping down removes the most
/// expensive remaining stage (DESIGN.md §16 defines the exact mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// The full pipeline: all configured sources, filters, rank.
    Full,
    /// Expensive sources (CF neighbours, content similarity) are
    /// dropped; cheap sources, filters, and rank still run.
    DropExpensiveSources,
    /// Diversity/genre filters are skipped on top of the source drop.
    SkipFilters,
    /// The pipeline is bypassed entirely: the legacy fallback chain
    /// serves, minus its expensive slots.
    LegacyFallback,
    /// Only the precomputed most-read list answers (with the terminal
    /// random fallback as never-empty insurance).
    MostReadOnly,
}

impl DegradationLevel {
    /// Number of levels (sizes the residency arrays).
    pub const COUNT: usize = 5;

    /// Every level, from full service down to maximum brownout.
    pub const ALL: [Self; Self::COUNT] = [
        Self::Full,
        Self::DropExpensiveSources,
        Self::SkipFilters,
        Self::LegacyFallback,
        Self::MostReadOnly,
    ];

    /// Dense index for residency/metrics arrays (0 = full service).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Full => 0,
            Self::DropExpensiveSources => 1,
            Self::SkipFilters => 2,
            Self::LegacyFallback => 3,
            Self::MostReadOnly => 4,
        }
    }

    /// The level with dense index `i`, clamped to the deepest level.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        *Self::ALL.get(i).unwrap_or(&Self::MostReadOnly)
    }

    /// Human-readable name for tables and trace events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::DropExpensiveSources => "drop_expensive_sources",
            Self::SkipFilters => "skip_filters",
            Self::LegacyFallback => "legacy_fallback",
            Self::MostReadOnly => "most_read_only",
        }
    }

    /// One level deeper into brownout (saturates at the bottom).
    #[must_use]
    pub fn stepped_down(self) -> Self {
        Self::from_index(self.index() + 1)
    }

    /// One level back toward full service (saturates at the top).
    #[must_use]
    pub fn stepped_up(self) -> Self {
        Self::from_index(self.index().saturating_sub(1))
    }
}

/// Why admission control rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full on arrival.
    QueueFull,
    /// The remaining deadline budget was below the observed per-request
    /// service cost — serving it would only have produced a late answer.
    DeadlineHopeless,
    /// Queueing delay stayed above the CoDel target for a sustained
    /// interval; the head of the queue was shed to relieve pressure.
    CodelOverload,
}

impl ShedReason {
    /// Number of reasons (sizes the shed-counter array).
    pub const COUNT: usize = 3;

    /// Every reason, in counter order.
    pub const ALL: [Self; Self::COUNT] =
        [Self::QueueFull, Self::DeadlineHopeless, Self::CodelOverload];

    /// Dense index for the shed-counter array.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::QueueFull => 0,
            Self::DeadlineHopeless => 1,
            Self::CodelOverload => 2,
        }
    }

    /// Snake-case `reason` label for Prometheus and trace events.
    #[must_use]
    pub fn metric_label(self) -> &'static str {
        match self {
            Self::QueueFull => "queue_full",
            Self::DeadlineHopeless => "deadline",
            Self::CodelOverload => "codel",
        }
    }
}

/// One ladder transition, breaker-style: the old and new level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelTransition {
    /// Level before the transition.
    pub from: DegradationLevel,
    /// Level after the transition.
    pub to: DegradationLevel,
}

/// Overload-control tuning knobs, validated by the engine builder.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Bounded admission-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// CoDel target: queueing delay below this is acceptable.
    pub codel_target: Duration,
    /// CoDel interval: delay must stay above target this long before
    /// head-shedding starts.
    pub codel_interval: Duration,
    /// EWMA smoothing factor for queue delay and service cost, in
    /// `(0, 1]` (higher = more reactive).
    pub ewma_alpha: f64,
    /// Smoothed queue delay above this steps the ladder down.
    pub step_down: Duration,
    /// Smoothed queue delay must fall below this (strictly lower than
    /// `step_down` for hysteresis) before the ladder may step up.
    pub step_up: Duration,
    /// Minimum residency at a level before stepping back up.
    pub recover_hold: Duration,
    /// Optional second pressure signal: recent-window p95 sojourn time
    /// above this also steps the ladder down.
    pub p95_budget: Option<Duration>,
    /// Samples per rolling p95 window (the histogram resets each window
    /// so the p95 tracks *recent* pressure, not the whole run).
    pub p95_window: u64,
    /// Optional simulated per-level service cost, slept through the
    /// engine clock on every queued serve. Loadgen smoke runs set this
    /// so a `FakeClock` drives fully deterministic overload dynamics;
    /// production leaves it `None` and the cost EWMA observes reality.
    pub service_cost: Option<[Duration; DegradationLevel::COUNT]>,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            codel_target: Duration::from_millis(5),
            codel_interval: Duration::from_millis(100),
            ewma_alpha: 0.2,
            step_down: Duration::from_millis(10),
            step_up: Duration::from_millis(2),
            recover_hold: Duration::from_millis(500),
            p95_budget: None,
            p95_window: 256,
            service_cost: None,
        }
    }
}

/// One admitted, not-yet-served request.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// The requesting user.
    pub user: UserIdx,
    /// Requested list length.
    pub k: usize,
    /// Clock reading at admission.
    pub arrival: Duration,
}

/// A bounded FIFO with CoDel-style sustained-delay head shedding.
#[derive(Debug)]
pub struct AdmissionQueue {
    entries: VecDeque<QueuedRequest>,
    capacity: usize,
    target: Duration,
    interval: Duration,
    /// Clock reading when queueing delay first exceeded the target
    /// (cleared whenever a head comes out under target).
    first_above: Option<Duration>,
}

impl AdmissionQueue {
    /// An empty queue with the given bounds.
    #[must_use]
    pub fn new(capacity: usize, target: Duration, interval: Duration) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            target,
            interval,
            first_above: None,
        }
    }

    /// Queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admits a request, or rejects it when the queue is full.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueFull`] when the queue is at capacity.
    pub fn offer(&mut self, user: UserIdx, k: usize, now: Duration) -> Result<(), ShedReason> {
        if self.entries.len() >= self.capacity {
            return Err(ShedReason::QueueFull);
        }
        self.entries.push_back(QueuedRequest {
            user,
            k,
            arrival: now,
        });
        Ok(())
    }

    /// Takes the head, returning it with its queueing delay and the
    /// CoDel verdict: `true` means delay has been above target for a
    /// sustained interval and this head should be shed, not served.
    pub fn pop(&mut self, now: Duration) -> Option<(QueuedRequest, Duration, bool)> {
        let req = self.entries.pop_front()?;
        let delay = now.saturating_sub(req.arrival);
        let shed = if delay < self.target {
            // Out from under the target: the episode (if any) is over.
            self.first_above = None;
            false
        } else {
            match self.first_above {
                None => {
                    self.first_above = Some(now);
                    false
                }
                // Still above target: shed once the episode has lasted
                // the full interval (and keep shedding until delay
                // drops back under target).
                Some(since) => now.saturating_sub(since) >= self.interval,
            }
        };
        Some((req, delay, shed))
    }
}

/// The brownout ladder controller: EWMA + recent-p95 pressure in,
/// hysteretic level transitions out.
#[derive(Debug)]
pub struct PressureController {
    level: DegradationLevel,
    ewma_delay_ns: f64,
    alpha: f64,
    step_down: Duration,
    step_up: Duration,
    recover_hold: Duration,
    p95_budget: Option<Duration>,
    p95_window: u64,
    recent: Histogram,
    /// Clock reading of the last level change (hold-period anchor).
    last_change: Duration,
    /// Clock reading of the last residency accrual.
    last_seen: Duration,
    /// Transitions *into* each level (by [`DegradationLevel::index`]).
    entries: [u64; DegradationLevel::COUNT],
    /// Nanoseconds spent at each level.
    residency_ns: [u64; DegradationLevel::COUNT],
}

impl PressureController {
    /// A controller at [`DegradationLevel::Full`], anchored at `now`.
    #[must_use]
    pub fn new(cfg: &OverloadConfig, now: Duration) -> Self {
        Self {
            level: DegradationLevel::Full,
            ewma_delay_ns: 0.0,
            alpha: cfg.ewma_alpha,
            step_down: cfg.step_down,
            step_up: cfg.step_up,
            recover_hold: cfg.recover_hold,
            p95_budget: cfg.p95_budget,
            p95_window: cfg.p95_window.max(1),
            recent: Histogram::new(),
            last_change: now,
            last_seen: now,
            entries: [0; DegradationLevel::COUNT],
            residency_ns: [0; DegradationLevel::COUNT],
        }
    }

    /// The current ladder level.
    #[must_use]
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Smoothed queueing delay.
    #[must_use]
    pub fn ewma_delay(&self) -> Duration {
        Duration::from_nanos(self.ewma_delay_ns as u64)
    }

    /// Transitions into each level so far.
    #[must_use]
    pub fn entries(&self) -> [u64; DegradationLevel::COUNT] {
        self.entries
    }

    /// Time spent at each level, the open interval at `now` included.
    #[must_use]
    pub fn residency_ns(&self, now: Duration) -> [u64; DegradationLevel::COUNT] {
        let mut r = self.residency_ns;
        r[self.level.index()] += now.saturating_sub(self.last_seen).as_nanos() as u64;
        r
    }

    fn accrue(&mut self, now: Duration) {
        self.residency_ns[self.level.index()] +=
            now.saturating_sub(self.last_seen).as_nanos() as u64;
        self.last_seen = now;
    }

    /// Feeds one queueing-delay observation and applies the ladder
    /// policy: step down immediately under pressure, step up only after
    /// `recover_hold` at the current level with pressure below the
    /// (lower) step-up threshold. Returns the transition, if any.
    pub fn observe(&mut self, delay: Duration, now: Duration) -> Option<LevelTransition> {
        self.accrue(now);
        let delay_ns = delay.as_nanos() as f64;
        self.ewma_delay_ns = self.alpha * delay_ns + (1.0 - self.alpha) * self.ewma_delay_ns;
        if self.recent.count() >= self.p95_window {
            self.recent = Histogram::new();
        }
        self.recent.record(delay.as_nanos() as u64);

        let p95_over = self.p95_budget.is_some_and(|budget| {
            // A handful of samples is enough to call a p95 "recent";
            // fewer and the window is still warming up.
            self.recent.count() >= 8 && self.recent.quantile(0.95) > budget.as_nanos() as u64
        });
        let ewma = Duration::from_nanos(self.ewma_delay_ns as u64);
        if (ewma > self.step_down || p95_over) && self.level != DegradationLevel::MostReadOnly {
            return Some(self.transition(self.level.stepped_down(), now));
        }
        if ewma < self.step_up
            && !p95_over
            && self.level != DegradationLevel::Full
            && now.saturating_sub(self.last_change) >= self.recover_hold
        {
            return Some(self.transition(self.level.stepped_up(), now));
        }
        None
    }

    fn transition(&mut self, to: DegradationLevel, now: Duration) -> LevelTransition {
        let from = self.level;
        self.level = to;
        self.last_change = now;
        self.entries[to.index()] += 1;
        LevelTransition { from, to }
    }
}

/// A request taken off the queue: either cleared to serve at the
/// governor's current level, or shed.
#[derive(Debug, Clone, Copy)]
pub struct Popped {
    /// The request.
    pub request: QueuedRequest,
    /// Time it spent queued.
    pub delay: Duration,
    /// `Some` when admission control shed it instead of serving.
    pub shed: Option<ShedReason>,
}

/// Admission queue + pressure controller + service-cost feedback, the
/// single lock-guarded state the engine consults per queued request.
#[derive(Debug)]
pub struct OverloadGovernor {
    config: OverloadConfig,
    queue: AdmissionQueue,
    controller: PressureController,
    /// EWMA of observed per-request service cost, the deadline-shedding
    /// estimate. Zero until the first serve completes.
    cost_ewma_ns: f64,
    /// The engine's whole-request budget, when configured.
    request_budget: Option<Duration>,
}

impl OverloadGovernor {
    /// A governor at full service, anchored at `now`.
    #[must_use]
    pub fn new(config: OverloadConfig, request_budget: Option<Duration>, now: Duration) -> Self {
        let queue = AdmissionQueue::new(
            config.queue_capacity,
            config.codel_target,
            config.codel_interval,
        );
        let controller = PressureController::new(&config, now);
        Self {
            config,
            queue,
            controller,
            cost_ewma_ns: 0.0,
            request_budget,
        }
    }

    /// The governor's configuration.
    #[must_use]
    pub fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// Queued (admitted, unserved) requests.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The current brownout level.
    #[must_use]
    pub fn level(&self) -> DegradationLevel {
        self.controller.level()
    }

    /// Transitions into each level so far.
    #[must_use]
    pub fn level_entries(&self) -> [u64; DegradationLevel::COUNT] {
        self.controller.entries()
    }

    /// Time spent at each level up to `now`.
    #[must_use]
    pub fn level_residency_ns(&self, now: Duration) -> [u64; DegradationLevel::COUNT] {
        self.controller.residency_ns(now)
    }

    /// The current per-request service-cost estimate.
    #[must_use]
    pub fn cost_estimate(&self) -> Duration {
        Duration::from_nanos(self.cost_ewma_ns as u64)
    }

    /// Simulated service cost for `level`, when configured.
    #[must_use]
    pub fn simulated_cost(&self, level: DegradationLevel) -> Option<Duration> {
        self.config.service_cost.map(|costs| costs[level.index()])
    }

    /// Admits a request into the queue, or sheds it up front.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueFull`] at capacity;
    /// [`ShedReason::DeadlineHopeless`] when the expected wait —
    /// everything already queued plus this request, at the observed
    /// per-request cost — already exceeds the request budget.
    pub fn offer(&mut self, user: UserIdx, k: usize, now: Duration) -> Result<(), ShedReason> {
        if let Some(budget) = self.request_budget {
            let cost = self.cost_ewma_ns as u64;
            if cost > 0 {
                let expected_wait = cost.saturating_mul(self.queue.len() as u64 + 1);
                if Duration::from_nanos(expected_wait) > budget {
                    return Err(ShedReason::DeadlineHopeless);
                }
            }
        }
        self.queue.offer(user, k, now)
    }

    /// Takes the head of the queue, applying CoDel and dequeue-time
    /// deadline shedding, and feeds the pressure controller. Returns
    /// the popped request plus any ladder transition it triggered.
    pub fn pop(&mut self, now: Duration) -> Option<(Popped, Option<LevelTransition>)> {
        let (request, delay, codel_shed) = self.queue.pop(now)?;
        let shed = if codel_shed {
            Some(ShedReason::CodelOverload)
        } else if self.request_budget.is_some_and(|budget| {
            let cost = self.cost_ewma_ns as u64;
            let remaining = budget.saturating_sub(delay);
            cost > 0 && remaining < Duration::from_nanos(cost)
        }) {
            Some(ShedReason::DeadlineHopeless)
        } else {
            None
        };
        let transition = self.controller.observe(delay, now);
        Some((
            Popped {
                request,
                delay,
                shed,
            },
            transition,
        ))
    }

    /// Feeds back one observed per-request service cost.
    pub fn record_cost(&mut self, cost: Duration) {
        let alpha = self.config.ewma_alpha;
        let cost_ns = cost.as_nanos() as f64;
        if self.cost_ewma_ns == 0.0 {
            self.cost_ewma_ns = cost_ns;
        } else {
            self.cost_ewma_ns = alpha * cost_ns + (1.0 - alpha) * self.cost_ewma_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_util::clock::{Clock, FakeClock};
    use std::sync::Arc;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn user(i: u32) -> UserIdx {
        UserIdx(i)
    }

    #[test]
    fn ladder_steps_saturate_at_both_ends() {
        assert_eq!(
            DegradationLevel::Full.stepped_down(),
            DegradationLevel::DropExpensiveSources
        );
        assert_eq!(
            DegradationLevel::MostReadOnly.stepped_down(),
            DegradationLevel::MostReadOnly
        );
        assert_eq!(DegradationLevel::Full.stepped_up(), DegradationLevel::Full);
        assert_eq!(
            DegradationLevel::SkipFilters.stepped_up(),
            DegradationLevel::DropExpensiveSources
        );
        for (i, level) in DegradationLevel::ALL.into_iter().enumerate() {
            assert_eq!(level.index(), i);
            assert_eq!(DegradationLevel::from_index(i), level);
        }
    }

    #[test]
    fn queue_bounds_admissions() {
        let mut q = AdmissionQueue::new(2, ms(5), ms(100));
        assert!(q.offer(user(0), 10, ms(0)).is_ok());
        assert!(q.offer(user(1), 10, ms(0)).is_ok());
        assert_eq!(q.offer(user(2), 10, ms(0)), Err(ShedReason::QueueFull));
        assert_eq!(q.len(), 2);
        let (req, delay, shed) = q.pop(ms(1)).unwrap();
        assert_eq!(req.user, user(0));
        assert_eq!(delay, ms(1));
        assert!(!shed, "delay under target never sheds");
        assert!(q.offer(user(2), 10, ms(1)).is_ok());
    }

    #[test]
    fn codel_sheds_only_after_a_sustained_episode() {
        let mut q = AdmissionQueue::new(16, ms(5), ms(100));
        // Head comes out 20ms late: above target, episode starts, but
        // the interval has not elapsed — served, not shed.
        q.offer(user(0), 10, ms(0)).unwrap();
        let (_, _, shed) = q.pop(ms(20)).unwrap();
        assert!(!shed);
        // 50ms into the episode: still inside the interval.
        q.offer(user(1), 10, ms(30)).unwrap();
        let (_, _, shed) = q.pop(ms(70)).unwrap();
        assert!(!shed);
        // 120ms after the episode began and still above target: shed.
        q.offer(user(2), 10, ms(80)).unwrap();
        let (_, _, shed) = q.pop(ms(140)).unwrap();
        assert!(shed, "sustained over-target delay sheds the head");
        // A head under target ends the episode and resets the clock.
        q.offer(user(3), 10, ms(150)).unwrap();
        let (_, _, shed) = q.pop(ms(151)).unwrap();
        assert!(!shed);
        q.offer(user(4), 10, ms(160)).unwrap();
        let (_, _, shed) = q.pop(ms(180)).unwrap();
        assert!(!shed, "a fresh episode must last the interval again");
    }

    #[test]
    fn controller_steps_down_fast_and_up_hysteretically() {
        let cfg = OverloadConfig {
            ewma_alpha: 1.0, // EWMA == last observation: exact thresholds
            step_down: ms(10),
            step_up: ms(2),
            recover_hold: ms(50),
            ..OverloadConfig::default()
        };
        let mut c = PressureController::new(&cfg, ms(0));
        assert_eq!(c.level(), DegradationLevel::Full);
        // Pressure: one observation over step_down is enough.
        let t = c.observe(ms(15), ms(1)).expect("step down");
        assert_eq!(t.from, DegradationLevel::Full);
        assert_eq!(t.to, DegradationLevel::DropExpensiveSources);
        let t = c.observe(ms(15), ms(2)).expect("step down again");
        assert_eq!(t.to, DegradationLevel::SkipFilters);
        // Delay between thresholds: no transition either way.
        assert!(c.observe(ms(5), ms(3)).is_none());
        // Low pressure but inside the hold period: still no step up.
        assert!(c.observe(ms(1), ms(10)).is_none());
        // Past the hold with pressure below step_up: one step up.
        let t = c.observe(ms(1), ms(60)).expect("step up after hold");
        assert_eq!(t.from, DegradationLevel::SkipFilters);
        assert_eq!(t.to, DegradationLevel::DropExpensiveSources);
        // The hold re-arms after every transition.
        assert!(c.observe(ms(1), ms(70)).is_none());
        let t = c.observe(ms(1), ms(115)).expect("full recovery");
        assert_eq!(t.to, DegradationLevel::Full);
        assert_eq!(c.entries()[DegradationLevel::Full.index()], 1);
        assert_eq!(
            c.entries()[DegradationLevel::DropExpensiveSources.index()],
            2
        );
    }

    #[test]
    fn controller_tracks_residency_per_level() {
        let cfg = OverloadConfig {
            ewma_alpha: 1.0,
            step_down: ms(10),
            ..OverloadConfig::default()
        };
        let mut c = PressureController::new(&cfg, ms(0));
        c.observe(ms(20), ms(4)).expect("step down at t=4ms");
        let r = c.residency_ns(ms(10));
        assert_eq!(r[DegradationLevel::Full.index()], ms(4).as_nanos() as u64);
        assert_eq!(
            r[DegradationLevel::DropExpensiveSources.index()],
            ms(6).as_nanos() as u64
        );
        assert_eq!(r.iter().sum::<u64>(), ms(10).as_nanos() as u64);
    }

    #[test]
    fn p95_budget_is_a_second_pressure_signal() {
        let cfg = OverloadConfig {
            ewma_alpha: 0.01, // EWMA far too sluggish to trip on its own
            step_down: ms(1000),
            p95_budget: Some(ms(8)),
            p95_window: 64,
            ..OverloadConfig::default()
        };
        let mut c = PressureController::new(&cfg, ms(0));
        let mut stepped = false;
        for i in 0..16u64 {
            if c.observe(ms(20), ms(i + 1)).is_some() {
                stepped = true;
                break;
            }
        }
        assert!(stepped, "recent p95 over budget must step the ladder down");
    }

    #[test]
    fn governor_sheds_hopeless_deadlines_up_front() {
        let clock = Arc::new(FakeClock::new());
        let mut g = OverloadGovernor::new(OverloadConfig::default(), Some(ms(10)), clock.now());
        // No cost estimate yet: everything is admitted.
        assert!(g.offer(user(0), 10, clock.now()).is_ok());
        let (popped, _) = g.pop(clock.now()).unwrap();
        assert!(popped.shed.is_none());
        // Observed cost 6ms against a 10ms budget: a queue of one means
        // the *second* arrival would wait 12ms > budget — hopeless.
        g.record_cost(ms(6));
        assert!(g.offer(user(1), 10, clock.now()).is_ok());
        assert_eq!(
            g.offer(user(2), 10, clock.now()),
            Err(ShedReason::DeadlineHopeless)
        );
        // Dequeue-time check too: a head that already waited 7ms has
        // 3ms of budget left, under the 6ms cost estimate.
        clock.advance(ms(7));
        let (popped, _) = g.pop(clock.now()).unwrap();
        assert_eq!(popped.shed, Some(ShedReason::DeadlineHopeless));
    }

    #[test]
    fn identical_schedules_make_identical_decisions() {
        // The determinism contract: run the same arrival schedule twice
        // and every shed decision and ladder transition must match.
        let run = || {
            let cfg = OverloadConfig {
                queue_capacity: 6,
                codel_target: ms(1),
                codel_interval: ms(10),
                ewma_alpha: 0.5,
                step_down: ms(2),
                step_up: ms(1),
                recover_hold: ms(20),
                ..OverloadConfig::default()
            };
            let clock = FakeClock::new();
            let mut g = OverloadGovernor::new(cfg, Some(ms(50)), clock.now());
            let mut decisions: Vec<String> = Vec::new();
            for step in 0..200u32 {
                clock.advance(Duration::from_micros(700));
                let now = clock.now();
                // Bursty phase every other 50 steps: two arrivals per
                // step; drain one request per step throughout.
                let arrivals = if (step / 50) % 2 == 0 { 2 } else { 1 };
                for a in 0..arrivals {
                    match g.offer(user(step * 4 + a), 10, now) {
                        Ok(()) => decisions.push(format!("admit {step}.{a}")),
                        Err(r) => decisions.push(format!("shed {step}.{a} {}", r.metric_label())),
                    }
                }
                if let Some((popped, transition)) = g.pop(now) {
                    g.record_cost(ms(3));
                    decisions.push(format!(
                        "pop {} shed={:?}",
                        popped.request.user.0, popped.shed
                    ));
                    if let Some(t) = transition {
                        decisions.push(format!("ladder {}->{}", t.from.label(), t.to.label()));
                    }
                }
            }
            decisions
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical schedules must replay bit-for-bit");
        assert!(
            a.iter().any(|d| d.starts_with("shed")),
            "the bursty schedule must actually shed: {a:?}"
        );
        assert!(
            a.iter().any(|d| d.starts_with("ladder")),
            "the bursty schedule must actually transition: {a:?}"
        );
    }
}
