//! A bounded LRU cache for recommendation lists.
//!
//! Intrusive doubly-linked list over a slab of nodes plus a `HashMap`
//! from key to slab index: `get`, `insert`, and eviction are all O(1)
//! (amortised). The serving engine wraps one of these in a `Mutex` and
//! keys it by `(user, k, model_epoch)` so stale entries can never be
//! served across an artifact reload even before the explicit
//! [`LruCache::clear`] the reload performs.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Bounded least-recently-used map. A capacity of zero disables caching:
/// every `insert` is a no-op and every `get` misses.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (the eviction candidate).
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting it to most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.nodes[i].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if the cache is full. No-op at capacity zero.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    /// Estimated bytes held by the cached values: `weigh` applied to
    /// every live entry, summed. O(len); the engine calls this from its
    /// metrics snapshot, not per request.
    pub fn bytes_estimate(&self, mut weigh: impl FnMut(&V) -> usize) -> usize {
        self.map
            .values()
            .map(|&i| weigh(&self.nodes[i].value))
            .sum()
    }

    /// Drops every entry (explicit invalidation on artifact reload).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3); // evicts "a"
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_promotes_entry() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // "b" becomes LRU
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // "b" becomes LRU
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn zero_capacity_survives_repeated_insert_and_get() {
        // The disabled cache is the `cache_capacity: 0` engine config;
        // it must stay inert (and allocation-free) under churn.
        let mut c = LruCache::new(0);
        for i in 0..100 {
            c.insert(i, i);
            assert_eq!(c.get(&i), None);
            assert_eq!(c.len(), 0);
        }
        assert!(c.nodes.is_empty(), "disabled cache allocated nodes");
        c.clear();
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn reinsert_updates_value_and_recency_without_growing() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Re-inserting an existing key must not consume a slot …
        c.insert("a", 100);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&"a"), Some(&100));
        // … and must have promoted "a": the next two evictions take
        // "b" then "c", never "a".
        c.insert("d", 4);
        c.insert("e", 5);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), None);
        assert_eq!(c.get(&"a"), Some(&100));
    }

    #[test]
    fn eviction_order_after_mixed_get_and_insert() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Recency now (MRU→LRU): c, b, a. Touch "a", re-insert "b":
        assert_eq!(c.get(&"a"), Some(&1)); // a, c, b
        c.insert("b", 20); // b, a, c
        c.insert("d", 4); // evicts "c"
        assert_eq!(c.get(&"c"), None);
        // d, b, a → next eviction takes "a".
        c.insert("e", 5);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&20));
        assert_eq!(c.get(&"d"), Some(&4));
        assert_eq!(c.get(&"e"), Some(&5));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn clear_empties_and_cache_still_works() {
        let mut c = LruCache::new(3);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            c.insert(k, v);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
        c.insert("d", 4);
        assert_eq!(c.get(&"d"), Some(&4));
    }

    #[test]
    fn capacity_one_churn() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&(i * 2)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
        }
    }

    #[test]
    fn bytes_estimate_tracks_live_entries() {
        let mut c: LruCache<u32, Vec<u32>> = LruCache::new(2);
        let weigh = |v: &Vec<u32>| v.len() * 4;
        assert_eq!(c.bytes_estimate(weigh), 0);
        c.insert(1, vec![10, 11, 12]);
        c.insert(2, vec![20]);
        assert_eq!(c.bytes_estimate(weigh), 16);
        // Eviction and replacement both drop the old value's weight.
        c.insert(3, vec![30, 31]); // evicts key 1
        assert_eq!(c.bytes_estimate(weigh), 12);
        c.insert(2, vec![21, 22, 23, 24]);
        assert_eq!(c.bytes_estimate(weigh), 24);
        c.clear();
        assert_eq!(c.bytes_estimate(weigh), 0);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut c = LruCache::new(4);
        for i in 0..1000u32 {
            c.insert(i, i);
        }
        // Only the slab grows to capacity, never beyond.
        assert!(c.nodes.len() <= 4, "slab leaked: {}", c.nodes.len());
        assert_eq!(c.len(), 4);
        for i in 996..1000 {
            assert_eq!(c.get(&i), Some(&i));
        }
    }
}
