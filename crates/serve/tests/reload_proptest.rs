//! Property: a reload either commits the new epoch in full or leaves
//! the engine serving the old epoch untouched — no truncation point in
//! the published files can produce a mixed-epoch engine.
//!
//! The truncation models a crash mid-publication. With the atomic
//! `.tmp`-then-rename protocol a real crash can only lose whole files,
//! but the property is proved against the strictly larger space of
//! arbitrary prefixes: manifest truncated → reload fails, the old epoch
//! (and its cached answers) keep serving; artifact truncated → reload
//! commits the new epoch with that slot degraded, never half-installed.

use proptest::{prop_assert, prop_assert_eq, proptest};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, ServingEngine};
use rm_serve::registry::{
    ArtifactRegistry, Manifest, BPR_FILE, EMBEDDINGS_FILE, MANIFEST_FILE, MOST_READ_FILE,
};
use std::path::PathBuf;
use std::sync::OnceLock;

/// One trained artifact set, captured as bytes so every proptest case
/// can restore a pristine registry without retraining.
struct Pristine {
    train: Interactions,
    dir: PathBuf,
    user: UserIdx,
    manifest_e1: Vec<u8>,
    manifest_e2: Vec<u8>,
    files: Vec<(&'static str, Vec<u8>)>,
}

fn pristine() -> &'static Pristine {
    static FIXTURE: OnceLock<Pristine> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let h = Harness::generate(11, Preset::Tiny);
        let train = h.split.train.clone();
        let mut bpr = Bpr::new(BprConfig {
            factors: 4,
            epochs: 2,
            ..BprConfig::default()
        });
        bpr.fit(&train);
        let mut most_read = MostReadItems::new();
        most_read.fit(&train);
        let mut closest =
            ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
        closest.fit(&train);

        let dir =
            std::env::temp_dir().join(format!("rm-serve-reload-proptest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ArtifactRegistry::new(dir.clone());
        registry
            .save(
                &Manifest {
                    epoch: 1,
                    fields: SummaryFields::BEST,
                },
                bpr.model().expect("fitted"),
                &most_read,
                closest.store(),
                None,
                None,
            )
            .expect("save artifacts");

        let read = |file: &str| std::fs::read(registry.path_of(file)).expect("read artifact");
        let user = (0..train.n_users() as u32)
            .map(UserIdx)
            .find(|&u| !train.seen(u).is_empty())
            .expect("some user has a history");
        Pristine {
            user,
            manifest_e1: read(MANIFEST_FILE),
            manifest_e2: Manifest {
                epoch: 2,
                fields: SummaryFields::BEST,
            }
            .render()
            .into_bytes(),
            files: [BPR_FILE, MOST_READ_FILE, EMBEDDINGS_FILE]
                .into_iter()
                .map(|f| (f, read(f)))
                .collect(),
            train,
            dir,
        }
    })
}

proptest! {
    #[test]
    fn reload_never_serves_a_mixed_epoch(target in 0usize..4, cut in 0usize..1_000_000) {
        let px = pristine();
        let registry = ArtifactRegistry::new(px.dir.clone());
        // Restore the pristine epoch-1 registry.
        std::fs::write(registry.path_of(MANIFEST_FILE), &px.manifest_e1).unwrap();
        for (file, bytes) in &px.files {
            std::fs::write(registry.path_of(file), bytes).unwrap();
        }

        let mut engine = ServingEngine::load(
            &registry,
            &px.train,
            EngineConfig::builder().workers(1).build().unwrap(),
        ).unwrap();
        prop_assert_eq!(engine.epoch(), 1);
        prop_assert!(engine.degraded().is_empty());
        let before = engine.recommend(px.user, 5);

        // Epoch 2 is published, but a crash truncated one of the files.
        std::fs::write(registry.path_of(MANIFEST_FILE), &px.manifest_e2).unwrap();
        let (file, bytes): (&str, &[u8]) = if target == 0 {
            (MANIFEST_FILE, &px.manifest_e2)
        } else {
            let (f, b) = &px.files[target - 1];
            (f, b)
        };
        let keep = cut % (bytes.len() + 1);
        std::fs::write(registry.path_of(file), &bytes[..keep]).unwrap();

        match engine.reload(&registry) {
            // Commit: the new epoch in full, possibly with the truncated
            // slot degraded — and the old epoch's cache gone.
            Ok(()) => {
                prop_assert_eq!(engine.epoch(), 2);
                prop_assert_eq!(engine.cache_len(), 0);
                let recs = engine.recommend(px.user, 5);
                // The chain still serves k items even if a slot degraded.
                prop_assert_eq!(recs.len(), 5);
            }
            // Rollback: the old epoch is untouched, byte-identical
            // answers included.
            Err(_) => {
                prop_assert_eq!(engine.epoch(), 1);
                prop_assert!(engine.degraded().is_empty());
                prop_assert_eq!(engine.recommend(px.user, 5), before.clone());
            }
        }
    }
}
