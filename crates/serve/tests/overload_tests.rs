//! Overload-resilience suite: admission control, the brownout ladder,
//! and the Zipf load generator, all driven by a fake clock so every
//! decision (shed, level change, latency quantile) replays identically.

use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, EngineConfigBuilder, ServingEngine};
use rm_serve::loadgen::{self, ArrivalMode, LoadgenConfig};
use rm_serve::overload::{DegradationLevel, OverloadConfig};
use rm_serve::registry::{ArtifactRegistry, Manifest};
use rm_util::clock::{Clock, FakeClock};
use rm_util::RecError;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rm-serve-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    train: Interactions,
    registry: ArtifactRegistry,
}

fn train_fixture(tag: &str) -> Fixture {
    let h = Harness::generate(11, Preset::Tiny);
    let train = h.split.train.clone();
    let mut bpr = Bpr::new(BprConfig {
        factors: 4,
        epochs: 2,
        ..BprConfig::default()
    });
    bpr.fit(&train);
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&train);
    let registry = ArtifactRegistry::new(unique_dir(tag));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            None,
            None,
        )
        .expect("save artifacts");
    Fixture { train, registry }
}

fn engine_of(fx: &Fixture, config: EngineConfig) -> ServingEngine {
    ServingEngine::load(&fx.registry, &fx.train, config).expect("engine loads")
}

fn builder(clock: &Arc<FakeClock>) -> EngineConfigBuilder {
    EngineConfig::builder().workers(1).clock(clock.clone())
}

/// The simulated per-level service cost used by the deterministic load
/// experiments: each brownout step sheds real work, so each is cheaper.
fn simulated_costs() -> [Duration; DegradationLevel::COUNT] {
    [
        Duration::from_micros(2_000),
        Duration::from_micros(1_500),
        Duration::from_micros(1_000),
        Duration::from_micros(700),
        Duration::from_micros(500),
    ]
}

fn storm_overload() -> OverloadConfig {
    OverloadConfig {
        service_cost: Some(simulated_costs()),
        ..OverloadConfig::default()
    }
}

/// The canonical deterministic overload scenario: a calm 200 rps
/// baseline with a 10× open-loop burst in the second phase. Mirrors
/// `serve-bench --loadgen --smoke`, which gates `BENCH_serve.json`.
fn burst_schedule() -> LoadgenConfig {
    LoadgenConfig {
        requests: 400,
        k: 10,
        base_rps: 200.0,
        phases: vec![1.0, 10.0, 1.0, 1.0],
        phase_len: Duration::from_millis(250),
        mode: ArrivalMode::Open,
        ..LoadgenConfig::default()
    }
}

#[test]
fn overload_enabled_idle_engine_is_bit_identical_to_default() {
    let fx = train_fixture("idle-identical");
    let clock = Arc::new(FakeClock::new());
    let plain = engine_of(&fx, builder(&clock).build().expect("valid config"));
    let governed = engine_of(
        &fx,
        builder(&clock)
            .overload(OverloadConfig::default())
            .build()
            .expect("valid config"),
    );
    assert_eq!(governed.degradation_level(), DegradationLevel::Full);
    for u in 0..fx.train.n_users() as u32 {
        let user = UserIdx(u);
        assert_eq!(
            plain.recommend(user, 10),
            governed.recommend(user, 10),
            "user {u} diverged with an idle governor"
        );
        let (books_a, expl_a) = plain.recommend_explained(user, 5);
        let (books_b, expl_b) = governed.recommend_explained(user, 5);
        assert_eq!(books_a, books_b);
        assert_eq!(expl_a, expl_b);
    }
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn offer_and_serve_queued_round_trip() {
    let fx = train_fixture("queue-round-trip");
    let clock = Arc::new(FakeClock::new());
    let engine = engine_of(
        &fx,
        builder(&clock)
            .overload(storm_overload())
            .build()
            .expect("valid config"),
    );
    let user = UserIdx(0);
    engine.offer(user, 5).expect("idle queue admits");
    assert_eq!(engine.queue_len(), 1);
    let outcome = engine.serve_queued().expect("one queued request");
    assert_eq!(outcome.user, user);
    assert_eq!(outcome.level, DegradationLevel::Full);
    let books = outcome.result.expect("served");
    assert_eq!(books, engine.recommend(user, 5));
    // Simulated service cost advanced the fake clock.
    assert_eq!(outcome.sojourn, simulated_costs()[0]);
    assert!(engine.serve_queued().is_none(), "queue drained");
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn offer_without_governor_is_a_config_error() {
    let fx = train_fixture("no-governor");
    let clock = Arc::new(FakeClock::new());
    let engine = engine_of(&fx, builder(&clock).build().expect("valid config"));
    match engine.offer(UserIdx(0), 5) {
        Err(RecError::Config(_)) => {}
        other => panic!("expected Config error, got {other:?}"),
    }
    assert!(engine.serve_queued().is_none());
    // recommend_governed degrades to a plain recommend.
    let books = engine
        .recommend_governed(UserIdx(0), 5)
        .expect("plain path");
    assert_eq!(books, engine.recommend(UserIdx(0), 5));
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn queue_overflow_sheds_with_typed_error() {
    let fx = train_fixture("queue-overflow");
    let clock = Arc::new(FakeClock::new());
    let engine = engine_of(
        &fx,
        builder(&clock)
            .overload(OverloadConfig {
                queue_capacity: 2,
                ..storm_overload()
            })
            .build()
            .expect("valid config"),
    );
    engine.offer(UserIdx(0), 5).expect("first admitted");
    engine.offer(UserIdx(1), 5).expect("second admitted");
    match engine.offer(UserIdx(2), 5) {
        Err(RecError::Shed(msg)) => assert!(msg.contains("queue_full"), "{msg}"),
        other => panic!("expected Shed, got {other:?}"),
    }
    let m = engine.metrics();
    assert_eq!(m.shed_total(), 1);
    // Shed requests never count as served traffic.
    assert_eq!(m.requests, 0);
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn degraded_answers_never_pollute_the_cache() {
    let fx = train_fixture("degraded-cache");
    let clock = Arc::new(FakeClock::new());
    // step_down = step_up = 0 forces the ladder down on any queue delay.
    let engine = engine_of(
        &fx,
        builder(&clock)
            .cache_capacity(64)
            .overload(OverloadConfig {
                step_down: Duration::ZERO,
                step_up: Duration::ZERO,
                ..storm_overload()
            })
            .build()
            .expect("valid config"),
    );
    engine.offer(UserIdx(0), 5).expect("admitted");
    engine.offer(UserIdx(1), 5).expect("admitted");
    // Serving the first request costs 2 ms, so the second has queue
    // delay > 0 and the controller steps the ladder down.
    let first = engine.serve_queued().expect("first");
    assert_eq!(first.level, DegradationLevel::Full);
    let cached_after_full = engine.cache_len();
    assert_eq!(cached_after_full, 1, "full-level answers are cached");
    let second = engine.serve_queued().expect("second");
    assert!(
        second.level > DegradationLevel::Full,
        "ladder stepped down, got {:?}",
        second.level
    );
    assert!(second.result.is_ok());
    assert_eq!(
        engine.cache_len(),
        cached_after_full,
        "degraded answer must not be cached"
    );
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn open_loop_burst_sheds_degrades_and_recovers() {
    let fx = train_fixture("open-loop-burst");
    let clock = Arc::new(FakeClock::new());
    let engine = engine_of(
        &fx,
        builder(&clock)
            .overload(storm_overload())
            .build()
            .expect("valid config"),
    );
    let report = loadgen::run(&engine, &burst_schedule()).expect("loadgen runs");
    assert_eq!(report.requests, 400);
    assert_eq!(report.answered + report.shed, 400);
    // Every admitted request was answered: overload surfaced as
    // shedding and brownout, never as failures.
    assert_eq!(report.availability(), 1.0);
    assert!(report.shed > 0, "10x burst must shed: {report:?}");
    assert!(
        report.max_level > DegradationLevel::Full,
        "10x burst must step the ladder down"
    );
    assert!(report.slo_met(), "{}", report.render_summary());
    // After the burst drains, the hysteresis window walks back to Full.
    clock.sleep(Duration::from_secs(2));
    engine.offer(UserIdx(0), 5).expect("admitted");
    while engine.serve_queued().is_some() {}
    let m = engine.metrics();
    assert!(
        m.level_entries.iter().skip(1).any(|&e| e > 0),
        "ladder transitions recorded: {:?}",
        m.level_entries
    );
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn identical_load_schedules_produce_identical_reports() {
    let fx = train_fixture("replay");
    let run_once = || {
        let clock = Arc::new(FakeClock::new());
        let engine = engine_of(
            &fx,
            builder(&clock)
                .overload(storm_overload())
                .build()
                .expect("valid config"),
        );
        loadgen::run(&engine, &burst_schedule())
            .expect("loadgen runs")
            .render_json()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "fake-clock load runs must replay byte-identically");
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn shed_and_ladder_metrics_surface_in_prometheus() {
    let fx = train_fixture("prom-surface");
    let clock = Arc::new(FakeClock::new());
    let engine = engine_of(
        &fx,
        builder(&clock)
            .overload(storm_overload())
            .build()
            .expect("valid config"),
    );
    let _ = loadgen::run(&engine, &burst_schedule()).expect("loadgen runs");
    let text = engine.metrics_prometheus();
    let shed_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("rm_serve_shed_total"))
        .collect();
    assert_eq!(shed_lines.len(), 3, "{text}");
    assert!(
        shed_lines.iter().any(|l| !l.ends_with(" 0")),
        "some shed counter is non-zero: {shed_lines:?}"
    );
    assert!(text.contains("rm_serve_degradation_level"), "{text}");
    assert!(
        text.contains("rm_serve_degradation_entries_total{level=\"drop_expensive_sources\"}"),
        "{text}"
    );
    assert!(
        text.contains("rm_serve_degradation_residency_ns_total{level=\"full\"}"),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}
