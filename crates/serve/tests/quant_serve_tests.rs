//! Quantized serving-path tests: an engine with a valid quant artifact
//! serves from compact rows; any corruption or mismatch silently falls
//! back to exact f32 scoring — byte-identical answers to a quant-free
//! engine, availability untouched.

use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::quant::{QuantArtifact, QuantMode};
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, ServingEngine};
use rm_serve::registry::{ArtifactRegistry, Manifest, QUANT_FILE};
use std::path::PathBuf;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rm-serve-quant-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    train: Interactions,
    registry: ArtifactRegistry,
}

/// Trains the Tiny suite and publishes it with a quantized artifact
/// (pass `None` for a quant-free registry).
fn train_fixture(tag: &str, mode: Option<QuantMode>) -> Fixture {
    let h = Harness::generate(11, Preset::Tiny);
    let train = h.split.train.clone();
    let mut bpr = Bpr::new(BprConfig {
        factors: 4,
        epochs: 2,
        ..BprConfig::default()
    });
    bpr.fit(&train);
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&train);
    let quant = mode
        .map(|m| QuantArtifact::quantize(m, bpr.model().expect("fitted"), Some(closest.store())));
    let registry = ArtifactRegistry::new(unique_dir(tag));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            None,
            quant.as_ref(),
        )
        .expect("save artifacts");
    Fixture { train, registry }
}

fn users_with_history(train: &Interactions, n: usize) -> Vec<UserIdx> {
    (0..train.n_users() as u32)
        .map(UserIdx)
        .filter(|&u| !train.seen(u).is_empty())
        .take(n)
        .collect()
}

#[test]
fn quantized_engine_activates_and_serves() {
    for mode in [QuantMode::I8, QuantMode::F16] {
        let fx = train_fixture(&format!("active-{}", mode.label()), Some(mode));
        let engine =
            ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default()).expect("loads");
        assert!(engine.degraded().is_empty(), "{:?}", engine.degraded());
        assert!(engine.quant_cf_active(), "{:?}", engine.quant_notes());
        assert!(engine.quant_content_active(), "{:?}", engine.quant_notes());
        assert!(engine.quant_notes().is_empty());
        for user in users_with_history(&fx.train, 8) {
            let recs = engine.recommend(user, 5);
            assert_eq!(recs.len(), 5, "quantized path must serve k items");
            assert!(recs
                .iter()
                .all(|b| fx.train.seen(user).binary_search(b).is_err()));
        }
        let _ = std::fs::remove_dir_all(fx.registry.dir());
    }
}

#[test]
fn missing_quant_artifact_is_silent() {
    let fx = train_fixture("missing", None);
    let engine =
        ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default()).expect("loads");
    assert!(!engine.quant_cf_active());
    assert!(!engine.quant_content_active());
    assert!(engine.quant_notes().is_empty());
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

/// Corruption chaos: every prefix truncation and a byte flip of
/// `quant.rmodel` must leave the engine serving byte-identically to a
/// quant-free engine — full availability, nothing degraded, only an
/// operator note.
#[test]
fn corrupt_quant_artifact_falls_back_to_exact_f32() {
    let baseline_fx = train_fixture("fallback-baseline", None);
    let baseline = ServingEngine::load(
        &baseline_fx.registry,
        &baseline_fx.train,
        EngineConfig::default(),
    )
    .expect("loads");
    let users = users_with_history(&baseline_fx.train, 8);
    let expected: Vec<Vec<u32>> = users.iter().map(|&u| baseline.recommend(u, 5)).collect();

    let fx = train_fixture("fallback", Some(QuantMode::I8));
    let path = fx.registry.path_of(QUANT_FILE);
    let pristine = std::fs::read(&path).expect("quant artifact exists");
    let mut corruptions: Vec<Vec<u8>> = [0, 1, 8, 9, pristine.len() / 2, pristine.len() - 1]
        .iter()
        .map(|&keep| pristine[..keep].to_vec())
        .collect();
    let mut flipped = pristine.clone();
    flipped[pristine.len() / 2] ^= 0x40;
    corruptions.push(flipped);

    for bytes in &corruptions {
        std::fs::write(&path, bytes).expect("write corruption");
        let engine =
            ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default()).expect("loads");
        assert!(engine.degraded().is_empty(), "{:?}", engine.degraded());
        assert!(!engine.quant_cf_active());
        assert!(!engine.quant_content_active());
        assert_eq!(engine.quant_notes().len(), 1, "{:?}", engine.quant_notes());
        let got: Vec<Vec<u32>> = users.iter().map(|&u| engine.recommend(u, 5)).collect();
        assert_eq!(got, expected, "fallback answers must match the f32 path");
    }
    let _ = std::fs::remove_dir_all(fx.registry.dir());
    let _ = std::fs::remove_dir_all(baseline_fx.registry.dir());
}

/// A quant artifact whose shapes disagree with the installed models is
/// dropped per half with a note, never degrading a slot.
#[test]
fn mismatched_quant_artifact_drops_with_notes() {
    let fx = train_fixture("mismatch", None);
    // Quantize a *different* model: same catalogue, other factor count.
    let mut other = Bpr::new(BprConfig {
        factors: 6,
        epochs: 1,
        ..BprConfig::default()
    });
    other.fit(&fx.train);
    let bad = QuantArtifact::quantize(QuantMode::I8, other.model().expect("fitted"), None);
    std::fs::write(
        fx.registry.path_of(QUANT_FILE),
        rm_core::persist::PersistModel::to_bytes(&bad),
    )
    .expect("write mismatched artifact");

    let engine =
        ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default()).expect("loads");
    assert!(engine.degraded().is_empty(), "{:?}", engine.degraded());
    assert!(!engine.quant_cf_active());
    assert!(!engine.quant_content_active());
    assert_eq!(engine.quant_notes().len(), 1, "{:?}", engine.quant_notes());
    assert!(engine.quant_notes()[0].contains("cf sections dropped"));

    let user = users_with_history(&fx.train, 1)[0];
    assert_eq!(engine.recommend(user, 5).len(), 5);
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

/// Reload re-validates the quant artifact: scrubbing it from the
/// registry deactivates quantized scoring on the next epoch.
#[test]
fn reload_reinstalls_quant() {
    let fx = train_fixture("reload", Some(QuantMode::I8));
    let mut engine =
        ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default()).expect("loads");
    assert!(engine.quant_cf_active());

    std::fs::remove_file(fx.registry.path_of(QUANT_FILE)).expect("scrub quant");
    let manifest = Manifest {
        epoch: 2,
        fields: SummaryFields::BEST,
    };
    std::fs::write(
        fx.registry.path_of(rm_serve::registry::MANIFEST_FILE),
        manifest.render(),
    )
    .expect("bump epoch");
    engine.reload(&fx.registry).expect("reload");
    assert_eq!(engine.epoch(), 2);
    assert!(!engine.quant_cf_active());
    assert!(!engine.quant_content_active());
    assert!(engine.quant_notes().is_empty());
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}
