//! End-to-end serving-engine tests: train a tiny suite, persist it, then
//! exercise the engine against healthy, corrupted, and missing artifacts.

use rm_core::bpr::{Bpr, BprConfig, BprModel};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::{BookIdx, UserIdx};
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_embed::{EmbeddingStore, EncoderConfig};
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, EngineConfigBuilder, ModelSlot, ServingEngine};
use rm_serve::registry::{ArtifactRegistry, Manifest, BPR_FILE, MOST_READ_FILE};
use rm_sparse::DenseMatrix;
use rm_util::RecError;
use std::path::PathBuf;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rm-serve-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A trained-and-persisted Tiny-preset artifact set plus its training
/// interactions (which the engine rebuilds from the corpus, not disk).
struct Fixture {
    train: Interactions,
    registry: ArtifactRegistry,
}

fn train_fixture(tag: &str) -> Fixture {
    let h = Harness::generate(11, Preset::Tiny);
    let train = h.split.train.clone();
    let mut bpr = Bpr::new(BprConfig {
        factors: 4,
        epochs: 2,
        ..BprConfig::default()
    });
    bpr.fit(&train);
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&train);
    let registry = ArtifactRegistry::new(unique_dir(tag));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            None,
            None,
        )
        .expect("save artifacts");
    Fixture { train, registry }
}

/// First user with a non-empty training history.
fn user_with_history(train: &Interactions) -> UserIdx {
    (0..train.n_users() as u32)
        .map(UserIdx)
        .find(|&u| !train.seen(u).is_empty())
        .expect("some user has a history")
}

fn engine_of(fx: &Fixture, config: EngineConfig) -> ServingEngine {
    ServingEngine::load(&fx.registry, &fx.train, config).expect("engine loads")
}

#[test]
fn healthy_chain_serves_bpr() {
    let fx = train_fixture("healthy");
    let engine = engine_of(&fx, EngineConfig::default());
    assert!(engine.degraded().is_empty(), "{:?}", engine.degraded());
    assert!(ModelSlot::ALL.iter().all(|&s| engine.slot_loaded(s)));

    let user = user_with_history(&fx.train);
    let recs = engine.recommend(user, 5);
    assert_eq!(recs.len(), 5);
    // Recommendations never contain seen books.
    assert!(recs
        .iter()
        .all(|b| fx.train.seen(user).binary_search(b).is_err()));

    let m = engine.metrics();
    assert_eq!(m.requests, 1);
    assert_eq!(m.served[ModelSlot::Bpr.index()], 1);
    assert_eq!(m.fallbacks, [0; ModelSlot::COUNT]);
    assert_eq!(m.latency.count(), 1);
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

/// The FNV-1a 64 the codec uses, reimplemented to craft a
/// checksum-valid-but-length-mismatched artifact.
fn fnv64(bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[test]
fn every_decode_error_variant_falls_back_to_closest_items() {
    let fx = train_fixture("corrupt");
    type Corruption = (&'static str, fn(&mut Vec<u8>), &'static str);
    let corruptions: [Corruption; 4] = [
        ("truncated", |b| b.truncate(5), "input truncated"),
        ("bad-magic", |b| b[0] ^= 0xFF, "bad magic"),
        (
            "length-mismatch",
            |b| {
                // Drop the checksum, chop one f32 off the payload, then
                // re-checksum: the container is valid but the payload no
                // longer matches its declared dimensions.
                b.truncate(b.len() - 8 - 4);
                let sum = fnv64(b);
                b.extend_from_slice(&sum.to_le_bytes());
            },
            "length does not match",
        ),
        (
            "bad-checksum",
            |b| *b.last_mut().unwrap() ^= 0xFF,
            "checksum mismatch",
        ),
    ];

    let pristine = std::fs::read(fx.registry.path_of(BPR_FILE)).expect("read bpr artifact");
    for (name, corrupt, expected_msg) in corruptions {
        let mut bytes = pristine.clone();
        corrupt(&mut bytes);
        std::fs::write(fx.registry.path_of(BPR_FILE), &bytes).unwrap();

        let engine = engine_of(&fx, EngineConfig::default());
        assert_eq!(
            engine.degraded().len(),
            1,
            "{name}: {:?}",
            engine.degraded()
        );
        let (slot, reason) = &engine.degraded()[0];
        assert_eq!(*slot, ModelSlot::Bpr, "{name}");
        assert!(reason.contains(expected_msg), "{name}: {reason}");
        assert!(!engine.slot_loaded(ModelSlot::Bpr), "{name}");

        // Serving survives: the request falls through to Closest Items.
        let user = user_with_history(&fx.train);
        let recs = engine.recommend(user, 5);
        assert_eq!(recs.len(), 5, "{name}");
        let m = engine.metrics();
        assert_eq!(m.served[ModelSlot::ClosestItems.index()], 1, "{name}");
        assert_eq!(m.fallbacks[ModelSlot::Bpr.index()], 1, "{name}");
    }

    // WrongModel: a valid Most Read artifact parked under the BPR name
    // passes the checksum but carries the wrong tag.
    std::fs::copy(
        fx.registry.path_of(MOST_READ_FILE),
        fx.registry.path_of(BPR_FILE),
    )
    .unwrap();
    let engine = engine_of(&fx, EngineConfig::default());
    let (slot, reason) = &engine.degraded()[0];
    assert_eq!(*slot, ModelSlot::Bpr);
    assert!(reason.contains("tag mismatch"), "{reason}");
    assert!(!engine.recommend(user_with_history(&fx.train), 5).is_empty());
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn all_artifacts_missing_serves_random() {
    let fx = train_fixture("missing-all");
    for file in [
        BPR_FILE,
        MOST_READ_FILE,
        rm_serve::registry::EMBEDDINGS_FILE,
    ] {
        std::fs::remove_file(fx.registry.path_of(file)).unwrap();
    }
    let engine = engine_of(&fx, EngineConfig::default());
    assert_eq!(engine.degraded().len(), 3);
    assert!(engine
        .degraded()
        .iter()
        .all(|(_, reason)| reason.contains("missing")));

    let user = user_with_history(&fx.train);
    let recs = engine.recommend(user, 5);
    assert_eq!(recs.len(), 5);
    let m = engine.metrics();
    assert_eq!(m.served[ModelSlot::Random.index()], 1);
    for slot in [ModelSlot::Bpr, ModelSlot::ClosestItems, ModelSlot::MostRead] {
        assert_eq!(m.fallbacks[slot.index()], 1, "{slot:?}");
    }
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn cache_hits_are_byte_identical_to_cold_calls() {
    let fx = train_fixture("cache");
    let engine = engine_of(&fx, EngineConfig::default());
    let uncached = engine_of(
        &fx,
        EngineConfig::builder()
            .cache_capacity(0)
            .build()
            .expect("valid config"),
    );

    let user = user_with_history(&fx.train);
    let cold = engine.recommend(user, 10);
    assert_eq!(engine.cache_len(), 1);
    let warm = engine.recommend(user, 10);
    assert_eq!(warm, cold, "cache hit must replay the cold answer exactly");
    assert_eq!(engine.recommend(user, 10), cold);
    assert_eq!(
        uncached.recommend(user, 10),
        cold,
        "disabling the cache must not change answers"
    );

    let m = engine.metrics();
    assert_eq!(m.requests, 3);
    assert_eq!(m.cache_hits, 2);
    assert!((m.cache_hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    // Model work happened exactly once.
    assert_eq!(m.served[ModelSlot::Bpr.index()], 1);
    assert_eq!(uncached.metrics().cache_hits, 0);
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn cache_bytes_estimate_reflects_cached_answers() {
    let fx = train_fixture("cache-bytes");
    let engine = engine_of(&fx, EngineConfig::default());
    assert_eq!(engine.cache_bytes_estimate(), 0);
    let user = user_with_history(&fx.train);
    let _ = engine.recommend(user, 5);
    let est = engine.cache_bytes_estimate();
    assert!(
        est >= 20,
        "one cached 5-item answer weighs at least its payload: {est}"
    );
    assert_eq!(engine.metrics().cache_bytes_estimate, est);
    let text = engine.metrics_prometheus();
    assert!(
        text.contains(&format!("rm_serve_cache_bytes_estimate {est}")),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn reload_bumps_epoch_and_clears_cache() {
    let fx = train_fixture("reload");
    let mut engine = engine_of(&fx, EngineConfig::default());
    assert_eq!(engine.epoch(), 1);
    let user = user_with_history(&fx.train);
    let before = engine.recommend(user, 5);
    assert_eq!(engine.cache_len(), 1);

    // Retrain day: same artifacts, new epoch.
    let manifest_path = fx.registry.path_of(rm_serve::registry::MANIFEST_FILE);
    let bumped = Manifest {
        epoch: 2,
        fields: SummaryFields::BEST,
    };
    std::fs::write(&manifest_path, bumped.render()).unwrap();
    engine.reload(&fx.registry).expect("reload");

    assert_eq!(engine.epoch(), 2);
    assert_eq!(engine.cache_len(), 0, "reload must invalidate the cache");
    assert!(engine.degraded().is_empty());
    // Identical artifacts serve identical answers under the new epoch.
    assert_eq!(engine.recommend(user, 5), before);
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn batch_matches_single_calls_for_every_worker_count() {
    let fx = train_fixture("batch");
    let n_users = fx.train.n_users() as u32;
    // Every user, an out-of-range user, and duplicates.
    let mut users: Vec<UserIdx> = (0..n_users).map(UserIdx).collect();
    users.push(UserIdx(n_users + 7));
    users.push(UserIdx(0));

    let reference = engine_of(
        &fx,
        EngineConfig::builder()
            .cache_capacity(0)
            .workers(1)
            .build()
            .expect("valid config"),
    );
    let singles: Vec<Vec<u32>> = users.iter().map(|&u| reference.recommend(u, 8)).collect();

    for workers in [1usize, 4, 8] {
        for cache_capacity in [0usize, 4096] {
            let engine = engine_of(
                &fx,
                EngineConfig::builder()
                    .workers(workers)
                    .cache_capacity(cache_capacity)
                    .build()
                    .expect("valid config"),
            );
            let batch = engine.recommend_batch(&users, 8);
            assert_eq!(batch, singles, "workers={workers} cache={cache_capacity}");
            assert_eq!(engine.metrics().requests, users.len() as u64);
        }
    }
    let _ = std::fs::remove_dir_all(fx.registry.dir());
}

#[test]
fn empty_answers_fall_through_custom_chain() {
    // Hand-built two-user world: user 1 has no history, so Closest Items
    // (healthy!) returns nothing for them and the chain moves on.
    let train = Interactions::from_pairs(2, 3, &[(UserIdx(0), BookIdx(0))]);
    let bpr = BprModel {
        user_factors: DenseMatrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
        item_factors: DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5]),
    };
    let most_read = {
        let mut m = MostReadItems::new();
        m.fit(&train);
        m
    };
    let embeddings = EmbeddingStore::from_matrix(DenseMatrix::from_vec(
        3,
        2,
        vec![3.0, 4.0, 1.0, 0.0, 0.0, 2.0],
    ));
    let registry = ArtifactRegistry::new(unique_dir("fallthrough"));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            &bpr,
            &most_read,
            &embeddings,
            None,
            None,
        )
        .unwrap();

    let engine = ServingEngine::load(
        &registry,
        &train,
        EngineConfig::builder()
            .chain(vec![ModelSlot::ClosestItems, ModelSlot::MostRead])
            .build()
            .expect("valid config"),
    )
    .expect("engine loads");
    assert!(engine.degraded().is_empty());

    // History user: served by Closest Items.
    assert!(!engine.recommend(UserIdx(0), 2).is_empty());
    // Empty-history user: Closest Items yields nothing, Most Read steps in.
    let recs = engine.recommend(UserIdx(1), 2);
    assert_eq!(recs.len(), 2);
    let m = engine.metrics();
    assert_eq!(m.served[ModelSlot::ClosestItems.index()], 1);
    assert_eq!(m.served[ModelSlot::MostRead.index()], 1);
    assert_eq!(m.fallbacks[ModelSlot::ClosestItems.index()], 1);
    // BPR was never consulted: not in the chain.
    assert_eq!(m.served[ModelSlot::Bpr.index()], 0);
    assert_eq!(m.fallbacks[ModelSlot::Bpr.index()], 0);
    let _ = std::fs::remove_dir_all(registry.dir());
}

#[test]
fn builder_defaults_match_config_default() {
    let built = EngineConfig::builder().build().expect("defaults are valid");
    let default = EngineConfig::default();
    assert_eq!(built.chain, default.chain);
    assert_eq!(built.workers, default.workers);
    assert_eq!(built.cache_capacity, default.cache_capacity);
    assert_eq!(built.random_seed, default.random_seed);
    assert_eq!(built.slot_budget, default.slot_budget);
    assert_eq!(built.request_budget, default.request_budget);
    assert_eq!(built.pipeline.pool_size, default.pipeline.pool_size);
    assert!(built.pipeline.sources.is_none());
    assert!(built.pipeline.filters.is_empty());
}

#[test]
fn builder_rejects_nonsensical_configs() {
    let cases: [(EngineConfigBuilder, &str); 4] = [
        (EngineConfig::builder().workers(0), "workers"),
        (EngineConfig::builder().chain(Vec::new()), "chain"),
        (EngineConfig::builder().pool_size(0), "pool_size"),
        (
            EngineConfig::builder().pipeline_sources(Vec::new()),
            "sources",
        ),
    ];
    for (builder, what) in cases {
        match builder.build() {
            Err(RecError::Config(msg)) => {
                assert!(msg.contains(what), "{what}: unexpected message {msg}");
            }
            other => panic!("{what}: expected RecError::Config, got {other:?}"),
        }
    }
}

#[test]
fn builder_sets_pipeline_and_fault_knobs() {
    let config = EngineConfig::builder()
        .chain(vec![ModelSlot::MostRead, ModelSlot::Random])
        .workers(2)
        .cache_capacity(16)
        .random_seed(7)
        .slot_budget(std::time::Duration::from_millis(5))
        .request_budget(std::time::Duration::from_millis(50))
        .no_breaker()
        .pipeline_sources(vec![ModelSlot::MostRead])
        .pool_size(64)
        .build()
        .expect("valid config");
    assert_eq!(config.chain, vec![ModelSlot::MostRead, ModelSlot::Random]);
    assert_eq!(config.workers, 2);
    assert_eq!(config.cache_capacity, 16);
    assert_eq!(config.random_seed, 7);
    assert_eq!(
        config.slot_budget,
        Some(std::time::Duration::from_millis(5))
    );
    assert_eq!(
        config.request_budget,
        Some(std::time::Duration::from_millis(50))
    );
    assert!(config.breaker.is_none());
    assert_eq!(config.pipeline.sources, Some(vec![ModelSlot::MostRead]));
    assert_eq!(config.pipeline.pool_size, 64);
}
