//! Observability integration tests: the engine's structured trace and
//! its Prometheus exposition, driven end-to-end over real artifacts.

use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, ServingEngine};
use rm_serve::registry::{ArtifactRegistry, Manifest};
use rm_util::clock::{Clock, FakeClock};
use rm_util::trace::{Kind, Tracer};
use std::path::PathBuf;
use std::sync::Arc;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rm-serve-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    train: Interactions,
    registry: ArtifactRegistry,
}

fn train_fixture(tag: &str) -> Fixture {
    let h = Harness::generate(11, Preset::Tiny);
    let train = h.split.train.clone();
    let mut bpr = Bpr::new(BprConfig {
        factors: 4,
        epochs: 2,
        ..BprConfig::default()
    });
    bpr.fit(&train);
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&train);
    let registry = ArtifactRegistry::new(unique_dir(tag));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            None,
            None,
        )
        .expect("save artifacts");
    Fixture { train, registry }
}

fn user_with_history(train: &Interactions) -> UserIdx {
    (0..train.n_users() as u32)
        .map(UserIdx)
        .find(|&u| !train.seen(u).is_empty())
        .expect("some user has a history")
}

/// Single-worker engine with a fake clock and an enabled tracer.
fn traced_engine(fx: &Fixture, clock: Arc<FakeClock>) -> ServingEngine {
    let config = EngineConfig::builder()
        .workers(1)
        .clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .tracer(Arc::new(Tracer::enabled(
            4096,
            Arc::clone(&clock) as Arc<dyn Clock>,
        )))
        .build()
        .expect("valid config");
    ServingEngine::load(&fx.registry, &fx.train, config).expect("engine loads")
}

#[test]
fn serve_path_emits_spans_and_cache_events() {
    let fx = train_fixture("spans");
    let clock = Arc::new(FakeClock::new());
    let engine = traced_engine(&fx, clock);
    let user = user_with_history(&fx.train);

    let first = engine.recommend(user, 5);
    assert!(!first.is_empty());
    let events = engine.tracer().drain();
    let kinds: Vec<Kind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(events[0].name, "serve_chunk");
    assert_eq!(kinds[0], Kind::Enter);
    assert_eq!(kinds[kinds.len() - 1], Kind::Exit);
    assert!(
        events.iter().any(|e| e.name == "cache_lookup"),
        "no cache_lookup in {events:?}"
    );
    assert!(
        events.iter().any(|e| e.name == "slot_call"
            && e.fields
                .iter()
                .any(|(k, v)| *k == "outcome" && *v == rm_util::trace::Value::Str("ok".into()))),
        "no successful slot_call in {events:?}"
    );

    // A repeat of the same request is answered from the cache: the trace
    // shows the hit and no slot is called.
    assert_eq!(engine.recommend(user, 5), first);
    let events = engine.tracer().drain();
    let cache = events
        .iter()
        .find(|e| e.name == "cache_lookup")
        .expect("cache_lookup traced");
    assert!(
        cache
            .fields
            .iter()
            .any(|(k, v)| *k == "hits" && *v == rm_util::trace::Value::U64(1)),
        "cache hit not traced: {cache:?}"
    );
    assert!(events.iter().all(|e| e.name != "slot_call"));
}

#[test]
fn trace_is_deterministic_and_jsonl_parseable_under_fake_clock() {
    let fx = train_fixture("determinism");
    let run = || {
        let clock = Arc::new(FakeClock::new());
        let engine = traced_engine(&fx, Arc::clone(&clock));
        let users: Vec<UserIdx> = (0..8u32).map(UserIdx).collect();
        for chunk in [&users[..4], &users[4..]] {
            let _ = engine.recommend_batch(chunk, 5);
            clock.advance(std::time::Duration::from_millis(7));
        }
        engine.tracer().drain_jsonl()
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical runs must trace identically");

    // Every line is one flat JSON object with the fixed envelope keys
    // and monotonically increasing seq numbers.
    let mut last_seq: Option<u64> = None;
    for line in a.lines() {
        assert!(line.starts_with("{\"seq\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        for key in ["\"at_ns\":", "\"kind\":\"", "\"name\":\""] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        let seq: u64 = line["{\"seq\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("numeric seq");
        assert!(last_seq.is_none_or(|p| seq > p), "seq not increasing");
        last_seq = Some(seq);
    }
}

#[test]
fn span_timings_measure_the_fake_clock() {
    let fx = train_fixture("timing");
    let clock = Arc::new(FakeClock::new());
    // Injected per-slot latency is the only thing that advances a fake
    // clock inside the chain, so use the slot budget path: none here —
    // instead advance manually between requests and check `at_ns`.
    let engine = traced_engine(&fx, Arc::clone(&clock));
    let user = user_with_history(&fx.train);
    let _ = engine.recommend(user, 5);
    clock.advance(std::time::Duration::from_millis(3));
    let _ = engine.recommend(user, 5);
    let events = engine.tracer().drain();
    let enters: Vec<_> = events
        .iter()
        .filter(|e| e.name == "serve_chunk" && e.kind == Kind::Enter)
        .collect();
    assert_eq!(enters.len(), 2);
    assert_eq!(enters[0].at, std::time::Duration::ZERO);
    assert_eq!(enters[1].at, std::time::Duration::from_millis(3));
}

#[test]
fn disabled_tracer_serves_identically_and_records_nothing() {
    let fx = train_fixture("disabled");
    let clock = Arc::new(FakeClock::new());
    let traced = traced_engine(&fx, Arc::clone(&clock));
    let silent = ServingEngine::load(
        &fx.registry,
        &fx.train,
        EngineConfig::builder()
            .workers(1)
            .clock(Arc::new(FakeClock::new()) as Arc<dyn Clock>)
            .build()
            .expect("valid config"),
    )
    .expect("engine loads");
    let users: Vec<UserIdx> = (0..6u32).map(UserIdx).collect();
    assert_eq!(
        traced.recommend_batch(&users, 5),
        silent.recommend_batch(&users, 5),
        "tracing must not change answers"
    );
    assert!(!silent.tracer().is_enabled());
    assert!(silent.tracer().is_empty());
    assert_eq!(silent.tracer().drain_jsonl(), "");
}

#[test]
fn engine_prometheus_exposition_matches_snapshot() {
    let fx = train_fixture("prom");
    let clock = Arc::new(FakeClock::new());
    let engine = traced_engine(&fx, Arc::clone(&clock));
    let users: Vec<UserIdx> = (0..10u32).map(UserIdx).collect();
    let _ = engine.recommend_batch(&users, 5);
    let _ = engine.recommend_batch(&users, 5); // all cache hits
    clock.advance(std::time::Duration::from_secs(2));

    let snapshot = engine.metrics();
    let text = engine.metrics_prometheus();
    let value = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.strip_prefix(name).is_some_and(|r| r.starts_with(' ')))
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(value("rm_serve_requests_total"), snapshot.requests as f64);
    assert_eq!(
        value("rm_serve_cache_hits_total"),
        snapshot.cache_hits as f64
    );
    assert_eq!(value("rm_serve_cache_hits_total"), 10.0);
    assert!((value("rm_serve_qps") - snapshot.qps()).abs() < 1e-9);
    assert!((value("rm_serve_qps") - 10.0).abs() < 1e-9, "20 req / 2 s");
    // Breakers are on by default, so the live state gauge is exposed,
    // and every slot reads healthy.
    for slot in ["bpr", "closest_items", "most_read", "random"] {
        assert_eq!(
            value(&format!("rm_serve_breaker_state{{slot=\"{slot}\"}}")),
            0.0,
            "slot {slot} should be closed"
        );
    }
    assert_eq!(
        value("rm_serve_request_latency_seconds_count"),
        snapshot.latency.count() as f64
    );
}

#[cfg(feature = "testing")]
mod chaos {
    use super::*;
    use rm_serve::breaker::BreakerConfig;
    use rm_serve::engine::ModelSlot;
    use rm_serve::fault::{CallWindow, FaultPlan};
    use rm_util::trace::Value;

    #[test]
    fn breaker_transitions_are_traced() {
        let fx = train_fixture("breaker-trace");
        let clock = Arc::new(FakeClock::new());
        let config = EngineConfig::builder()
            .workers(1)
            .breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: std::time::Duration::from_millis(50),
            })
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .tracer(Arc::new(Tracer::enabled(
                4096,
                Arc::clone(&clock) as Arc<dyn Clock>,
            )))
            .build()
            .expect("valid config");
        let mut engine =
            ServingEngine::load(&fx.registry, &fx.train, config).expect("engine loads");
        engine.inject_faults(FaultPlan::none().error_in(ModelSlot::Bpr, CallWindow::first(2)));
        let user = user_with_history(&fx.train);
        let _ = engine.recommend(user, 5);
        let _ = engine.recommend(user, 7);
        let events = engine.tracer().drain();
        let transition = events
            .iter()
            .find(|e| e.name == "breaker_transition")
            .expect("breaker transition traced");
        assert!(transition
            .fields
            .contains(&(("slot", Value::Str("bpr".into())))));
        assert!(transition
            .fields
            .contains(&(("to", Value::Str("open".into())))));
        // The error outcomes are traced too.
        assert!(events.iter().any(|e| e.name == "slot_call"
            && e.fields
                .contains(&(("outcome", Value::Str("injected_error".into()))))));
    }
}
