//! Chaos suite: drive the serving engine through injected panics,
//! errors, latency, corrupt artifacts, and broken reloads, and assert it
//! degrades — never aborts — with the fault counters telling the story.
//!
//! Compiled only with the `testing` feature
//! (`cargo test -p rm-serve --features testing`).
#![cfg(feature = "testing")]

use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::breaker::{BreakerConfig, BreakerState};
use rm_serve::engine::{EngineConfig, EngineConfigBuilder, ModelSlot, ServingEngine};
use rm_serve::fault::{CallWindow, FaultPlan};
use rm_serve::registry::{ArtifactRegistry, Manifest, MANIFEST_FILE};
use rm_util::clock::{Backoff, Clock, FakeClock};
use std::path::PathBuf;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Injected panics are expected noise here: silence their reports so a
/// green chaos run has a readable log, while real panics still print.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rm-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A trained Tiny-preset model set plus the registry it was saved into.
struct Fixture {
    train: Interactions,
    registry: ArtifactRegistry,
    manifest: Manifest,
    bpr: Bpr,
    most_read: MostReadItems,
    closest: ClosestItems,
}

impl Fixture {
    fn train(tag: &str) -> Self {
        let h = Harness::generate(11, Preset::Tiny);
        let train = h.split.train.clone();
        let mut bpr = Bpr::new(BprConfig {
            factors: 4,
            epochs: 2,
            ..BprConfig::default()
        });
        bpr.fit(&train);
        let mut most_read = MostReadItems::new();
        most_read.fit(&train);
        let mut closest =
            ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
        closest.fit(&train);
        let fx = Self {
            train,
            registry: ArtifactRegistry::new(unique_dir(tag)),
            manifest: Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr,
            most_read,
            closest,
        };
        fx.save();
        fx
    }

    fn save(&self) {
        self.registry
            .save(
                &self.manifest,
                self.bpr.model().expect("fitted"),
                &self.most_read,
                self.closest.store(),
                None,
                None,
            )
            .expect("save artifacts");
    }

    fn save_with_faults(&self, plan: &FaultPlan) {
        self.registry
            .save_with_faults(
                &self.manifest,
                self.bpr.model().expect("fitted"),
                &self.most_read,
                self.closest.store(),
                None,
                None,
                plan,
            )
            .expect("save artifacts with faults");
    }

    fn user(&self) -> UserIdx {
        (0..self.train.n_users() as u32)
            .map(UserIdx)
            .find(|&u| !self.train.seen(u).is_empty())
            .expect("some user has a history")
    }

    fn cleanup(&self) {
        let _ = std::fs::remove_dir_all(self.registry.dir());
    }
}

/// Single-threaded, uncached engine driven by a fake clock — the
/// deterministic chaos base configuration.
fn chaos_builder(clock: &Arc<FakeClock>) -> EngineConfigBuilder {
    EngineConfig::builder()
        .workers(1)
        .cache_capacity(0)
        .clock(clock.clone())
}

fn chaos_config(clock: &Arc<FakeClock>) -> EngineConfig {
    chaos_builder(clock).build().expect("valid config")
}

#[test]
fn bpr_panic_storm_keeps_availability_at_one() {
    silence_injected_panics();
    let fx = Fixture::train("panic-storm");
    let clock = Arc::new(FakeClock::new());
    let plan = FaultPlan::none().panic_in(ModelSlot::Bpr, CallWindow::always());
    let engine =
        ServingEngine::load_with_faults(&fx.registry, &fx.train, chaos_config(&clock), plan)
            .expect("engine loads");

    let user = fx.user();
    for _ in 0..200 {
        assert_eq!(engine.recommend(user, 5).len(), 5, "every request answered");
    }

    let m = engine.metrics();
    let bpr = ModelSlot::Bpr.index();
    assert_eq!(m.requests, 200);
    assert_eq!(m.worker_panics, 0, "panics must stay isolated in-slot");
    // The breaker cut the storm at its threshold; everything after was
    // skipped without even attempting the slot.
    assert_eq!(m.panics[bpr], 5);
    assert_eq!(m.breaker_opened[bpr], 1);
    assert_eq!(m.breaker_skips[bpr], 195);
    assert_eq!(
        engine.breaker_states().expect("breakers on")[bpr],
        BreakerState::Open
    );
    // Every single request was served by a fallback slot.
    let fallback_served: u64 = [
        ModelSlot::ClosestItems,
        ModelSlot::MostRead,
        ModelSlot::Random,
    ]
    .iter()
    .map(|s| m.served[s.index()])
    .sum();
    assert_eq!(fallback_served, 200);
    assert!(
        m.availability() >= 0.99,
        "availability {} under a full BPR panic storm",
        m.availability()
    );
    fx.cleanup();
}

#[test]
fn batch_path_survives_panicking_slot_on_every_worker() {
    silence_injected_panics();
    let fx = Fixture::train("batch-panics");
    let clock = Arc::new(FakeClock::new());
    let plan = FaultPlan::none().panic_in(ModelSlot::Bpr, CallWindow::always());
    let engine = ServingEngine::load_with_faults(
        &fx.registry,
        &fx.train,
        EngineConfig::builder()
            .workers(4)
            .cache_capacity(0)
            .clock(clock.clone())
            .build()
            .expect("valid config"),
        plan,
    )
    .expect("engine loads");

    let users: Vec<UserIdx> = (0..fx.train.n_users() as u32).map(UserIdx).collect();
    let answers = engine.recommend_batch(&users, 5);
    assert_eq!(answers.len(), users.len());
    assert!(
        answers.iter().all(|a| a.len() == 5),
        "known users all answered despite the panicking slot"
    );
    let m = engine.metrics();
    assert_eq!(m.worker_panics, 0);
    assert_eq!(m.requests, users.len() as u64);
    assert!((m.availability() - 1.0).abs() < 1e-12);
    fx.cleanup();
}

#[test]
fn breaker_recovers_through_a_half_open_probe() {
    silence_injected_panics();
    let fx = Fixture::train("breaker-recovery");
    let clock = Arc::new(FakeClock::new());
    // Exactly the first five calls fail — the default threshold.
    let plan = FaultPlan::none().error_in(ModelSlot::Bpr, CallWindow::first(5));
    let engine =
        ServingEngine::load_with_faults(&fx.registry, &fx.train, chaos_config(&clock), plan)
            .expect("engine loads");
    let user = fx.user();
    let bpr = ModelSlot::Bpr.index();

    for _ in 0..5 {
        assert_eq!(engine.recommend(user, 5).len(), 5);
    }
    assert_eq!(engine.metrics().breaker_opened[bpr], 1);
    assert_eq!(
        engine.breaker_states().expect("breakers on")[bpr],
        BreakerState::Open
    );

    // Cooldown still running: the slot is skipped, not attempted.
    engine.recommend(user, 5);
    assert_eq!(engine.fault_injector().calls(ModelSlot::Bpr), 5);
    assert_eq!(engine.metrics().breaker_skips[bpr], 1);

    // Cooldown elapses: one probe is admitted, succeeds, closes.
    clock.advance(BreakerConfig::default().cooldown);
    engine.recommend(user, 5);
    let m = engine.metrics();
    assert_eq!(m.breaker_half_open[bpr], 1);
    assert_eq!(m.breaker_closed[bpr], 1);
    assert_eq!(m.served[bpr], 1, "the probe itself was served by BPR");
    assert_eq!(
        engine.breaker_states().expect("breakers on")[bpr],
        BreakerState::Closed
    );

    engine.recommend(user, 5);
    assert_eq!(engine.metrics().served[bpr], 2, "slot is healthy again");
    fx.cleanup();
}

#[test]
fn failed_probe_reopens_with_a_fresh_cooldown() {
    silence_injected_panics();
    let fx = Fixture::train("probe-fails");
    let clock = Arc::new(FakeClock::new());
    // Five failures open the breaker; the sixth call — the probe — fails
    // too, re-opening it; the seventh heals.
    let plan = FaultPlan::none().error_in(ModelSlot::Bpr, CallWindow::first(6));
    let engine =
        ServingEngine::load_with_faults(&fx.registry, &fx.train, chaos_config(&clock), plan)
            .expect("engine loads");
    let user = fx.user();
    let bpr = ModelSlot::Bpr.index();
    let cooldown = BreakerConfig::default().cooldown;

    for _ in 0..5 {
        engine.recommend(user, 5);
    }
    clock.advance(cooldown);
    engine.recommend(user, 5); // failed probe
    let m = engine.metrics();
    assert_eq!(m.breaker_half_open[bpr], 1);
    assert_eq!(m.breaker_opened[bpr], 2, "failed probe re-opened");
    assert_eq!(
        engine.breaker_states().expect("breakers on")[bpr],
        BreakerState::Open
    );

    engine.recommend(user, 5); // fresh cooldown: still skipped
    assert_eq!(engine.fault_injector().calls(ModelSlot::Bpr), 6);

    clock.advance(cooldown);
    engine.recommend(user, 5); // healthy probe
    let m = engine.metrics();
    assert_eq!(m.breaker_closed[bpr], 1);
    assert_eq!(m.served[bpr], 1);
    fx.cleanup();
}

#[test]
fn slot_budget_cuts_off_slow_calls_and_trips_the_breaker() {
    silence_injected_panics();
    let fx = Fixture::train("slow-slot");
    let clock = Arc::new(FakeClock::new());
    let plan = FaultPlan::none().latency(ModelSlot::Bpr, Duration::from_millis(20));
    let engine = ServingEngine::load_with_faults(
        &fx.registry,
        &fx.train,
        chaos_builder(&clock)
            .slot_budget(Duration::from_millis(10))
            .breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(1),
            })
            .build()
            .expect("valid config"),
        plan,
    )
    .expect("engine loads");
    let user = fx.user();
    let bpr = ModelSlot::Bpr.index();

    for _ in 0..3 {
        assert_eq!(
            engine.recommend(user, 5).len(),
            5,
            "slow slot degrades, request still served"
        );
    }
    let m = engine.metrics();
    // Two timeouts trip the breaker; the third request skips the slot.
    assert_eq!(m.timeouts[bpr], 2);
    assert_eq!(m.breaker_opened[bpr], 1);
    assert_eq!(m.breaker_skips[bpr], 1);
    assert_eq!(m.served[ModelSlot::ClosestItems.index()], 3);
    assert!((m.availability() - 1.0).abs() < 1e-12);
    fx.cleanup();
}

#[test]
fn request_deadline_stops_the_chain_walk() {
    silence_injected_panics();
    let fx = Fixture::train("deadline");
    let clock = Arc::new(FakeClock::new());
    // Both leading slots stall past the whole-request budget and then
    // panic, so the walk reaches Most Read only after the deadline.
    let plan = FaultPlan::none()
        .latency(ModelSlot::Bpr, Duration::from_millis(20))
        .panic_in(ModelSlot::Bpr, CallWindow::always())
        .latency(ModelSlot::ClosestItems, Duration::from_millis(20))
        .panic_in(ModelSlot::ClosestItems, CallWindow::always());
    let engine = ServingEngine::load_with_faults(
        &fx.registry,
        &fx.train,
        chaos_builder(&clock)
            .request_budget(Duration::from_millis(30))
            .no_breaker()
            .build()
            .expect("valid config"),
        plan,
    )
    .expect("engine loads");

    let recs = engine.recommend(fx.user(), 5);
    assert!(recs.is_empty(), "deadline expiry answers empty");
    let m = engine.metrics();
    assert_eq!(m.deadline_skips, 1);
    assert_eq!(m.panics[ModelSlot::Bpr.index()], 1);
    assert_eq!(m.panics[ModelSlot::ClosestItems.index()], 1);
    assert_eq!(m.served, [0; ModelSlot::COUNT]);
    assert_eq!(m.availability(), 0.0);
    fx.cleanup();
}

#[test]
fn corrupt_on_save_degrades_exactly_that_slot() {
    silence_injected_panics();
    let fx = Fixture::train("corrupt-save");
    let plan = FaultPlan::none().corrupt_on_save(ModelSlot::Bpr);
    fx.save_with_faults(&plan);

    let engine = ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default())
        .expect("load degrades, never fails");
    assert_eq!(engine.degraded().len(), 1, "{:?}", engine.degraded());
    assert_eq!(engine.degraded()[0].0, ModelSlot::Bpr);
    assert!(!engine.slot_loaded(ModelSlot::Bpr));

    let recs = engine.recommend(fx.user(), 5);
    assert_eq!(recs.len(), 5);
    assert_eq!(engine.metrics().served[ModelSlot::ClosestItems.index()], 1);
    fx.cleanup();
}

#[test]
fn reload_with_retry_keeps_serving_the_old_epoch_on_exhaustion() {
    silence_injected_panics();
    let mut fx = Fixture::train("reload-retry");
    let clock = Arc::new(FakeClock::new());
    let mut engine = ServingEngine::load(
        &fx.registry,
        &fx.train,
        EngineConfig::builder()
            .workers(1)
            .clock(clock.clone())
            .build()
            .expect("valid config"),
    )
    .expect("engine loads");
    let user = fx.user();
    let before = engine.recommend(user, 5);
    assert_eq!(engine.epoch(), 1);

    // The registry loses its manifest: every reload attempt fails.
    std::fs::remove_file(fx.registry.path_of(MANIFEST_FILE)).expect("remove manifest");
    let backoff = Backoff::default();
    engine
        .reload_with_retry(&fx.registry, &backoff)
        .expect_err("no manifest, no reload");
    // Three inter-attempt sleeps, each the deterministic jittered delay.
    let expected: Duration = (0..backoff.attempts - 1).map(|a| backoff.delay(a)).sum();
    assert_eq!(clock.now(), expected, "backoff schedule is deterministic");
    // The old epoch is untouched and still serving identical answers.
    assert_eq!(engine.epoch(), 1);
    assert_eq!(engine.recommend(user, 5), before);

    // The trainer publishes epoch 2: the next retry succeeds first try.
    fx.manifest.epoch = 2;
    fx.save();
    let attempts = engine
        .reload_with_retry(&fx.registry, &backoff)
        .expect("registry healthy again");
    assert_eq!(attempts, 1);
    assert_eq!(engine.epoch(), 2);
    assert_eq!(
        engine.recommend(user, 5),
        before,
        "same artifacts, same answers"
    );
    fx.cleanup();
}

/// The full storm: BPR panics on every call, Closest Items drags, and a
/// 10x open-loop burst hammers the admission queue — availability must
/// hold at 1.0 with a bounded p99, the excess surfacing as shedding and
/// brownout rather than failures or unbounded queueing.
#[test]
fn overload_storm_under_panic_storm_holds_availability() {
    use rm_serve::loadgen::{self, ArrivalMode, LoadgenConfig};
    use rm_serve::overload::{DegradationLevel, OverloadConfig};

    silence_injected_panics();
    let fx = Fixture::train("overload-storm");
    let clock = Arc::new(FakeClock::new());
    let overload = OverloadConfig {
        service_cost: Some([
            Duration::from_micros(2_000),
            Duration::from_micros(1_500),
            Duration::from_micros(1_000),
            Duration::from_micros(700),
            Duration::from_micros(500),
        ]),
        ..OverloadConfig::default()
    };
    let engine = ServingEngine::load_with_faults(
        &fx.registry,
        &fx.train,
        chaos_builder(&clock)
            .overload(overload)
            .build()
            .expect("valid config"),
        FaultPlan::overload_storm(),
    )
    .expect("engine loads");

    let schedule = LoadgenConfig {
        requests: 400,
        k: 10,
        base_rps: 200.0,
        phases: vec![1.0, 10.0, 1.0, 1.0],
        phase_len: Duration::from_millis(250),
        mode: ArrivalMode::Open,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&engine, &schedule).expect("loadgen runs");
    assert_eq!(report.requests, 400);
    assert_eq!(report.answered + report.shed, 400);
    assert_eq!(
        report.availability(),
        1.0,
        "every admitted request answered: {}",
        report.render_summary()
    );
    assert!(report.shed > 0, "the burst must shed");
    assert!(
        report.max_level > DegradationLevel::Full,
        "the ladder must step down under the storm"
    );
    assert!(
        report.p99() <= schedule.slo.p99_limit,
        "p99 stays bounded: {}",
        report.render_summary()
    );
    // The panic storm registered: BPR fell through on served requests.
    let m = engine.metrics();
    assert!(m.panics[ModelSlot::Bpr.index()] > 0);
    fx.cleanup();
}
